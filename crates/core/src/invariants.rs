//! Quiescent structural invariant checking for the concurrent files.
//!
//! Run when no operations are in flight (the stress tests quiesce first).
//! On top of the Fagin-79 invariants shared with the sequential file
//! (directory/commonbits/refcount/depthcount consistency — see
//! [`ceh_sequential::FileSnapshot::check_invariants`]), the concurrent
//! structure adds the `next`-chain properties the §2.3/§2.5 correctness
//! arguments rest on:
//!
//! 1. **Chain totality**: starting at the bucket for pseudokey `0…0`
//!    (directory entry 0) and following `next` links visits every bucket
//!    exactly once and ends at the all-ones bucket. This is the "for as
//!    long as any two buckets remain in the hashfile, the ordering imposed
//!    on them by reachability through next links remains the same"
//!    property.
//! 2. **Chain order**: buckets appear in strictly increasing *bit-reversed
//!    commonbits* order (treating the low-bit-first pattern as a binary
//!    fraction). Splits insert the "1" half immediately after the "0"
//!    half, and merges splice one element out, so the list is always
//!    sorted this way. Together with totality this implies the §2.3
//!    property that "between any two partner buckets, there is a path
//!    from the '0' partner to the '1' partner".
//! 3. **No tombstones at rest**: buckets marked deleted (Solution 2) are
//!    unreachable and deallocated once garbage collection has run.
//! 4. **No leaks**: every allocated page in the store is referenced by
//!    the directory.

use std::collections::BTreeSet;

use ceh_sequential::FileSnapshot;
use ceh_types::bits::mask;
use ceh_types::{Error, PageId, Result};

use crate::common::FileCore;

/// Capture a [`FileSnapshot`] of a concurrent file's current structure.
/// Quiescent use only.
pub fn snapshot_core(core: &FileCore) -> Result<FileSnapshot> {
    let entries = core.dir().entries_snapshot();
    FileSnapshot::capture(
        core.store(),
        &entries,
        core.dir().depth(),
        core.dir().depthcount(),
        core.config().bucket_capacity,
    )
}

/// Check every structural invariant of a quiescent concurrent file.
pub fn check_concurrent_file(core: &FileCore) -> Result<()> {
    let snap = snapshot_core(core)?;
    // The sequential invariants (1-7 in ceh-sequential's docs).
    snap.check_invariants(core.hasher())?;

    // Record count agrees with the maintained len.
    if snap.total_records() != core.len() {
        return Err(Error::Corrupt(format!(
            "len() is {} but the structure holds {} records",
            core.len(),
            snap.total_records()
        )));
    }

    // No tombstones reachable at rest.
    for (&p, b) in &snap.buckets {
        if b.is_deleted() {
            return Err(Error::Corrupt(format!(
                "{p} is a reachable tombstone at quiescence"
            )));
        }
    }

    check_chain(&snap)?;

    // Leak check: every allocated page is a directory-referenced bucket.
    let reachable: BTreeSet<PageId> = snap.buckets.keys().copied().collect();
    for p in core.store().allocated_page_ids() {
        if !reachable.contains(&p) {
            return Err(Error::Corrupt(format!(
                "{p} is allocated but unreachable (leak)"
            )));
        }
    }

    // All locks released.
    if core.locks().total_granted() != 0 {
        return Err(Error::Corrupt(format!(
            "{} locks still granted at quiescence",
            core.locks().total_granted()
        )));
    }
    Ok(())
}

/// Invariants 1 and 2: the global `next` chain.
fn check_chain(snap: &FileSnapshot) -> Result<()> {
    if snap.entries.is_empty() {
        return Err(Error::Corrupt("empty directory".into()));
    }
    let head = snap.entries[0];
    let mut visited = BTreeSet::new();
    let mut page = head;
    let mut prev_revkey: Option<u64> = None;
    loop {
        if !visited.insert(page) {
            return Err(Error::Corrupt(format!(
                "next chain revisits {page} (cycle)"
            )));
        }
        let b = snap
            .buckets
            .get(&page)
            .ok_or_else(|| Error::Corrupt(format!("chain reaches non-directory bucket {page}")))?;
        // Chain order: bit-reversed commonbits strictly increase. A
        // commonbits value occupies the low `localdepth` bits, so
        // `reverse_bits` places bit 1 at the top — exactly the binary
        // fraction 0.c₁c₂…  the split order sorts by.
        let revkey = b.commonbits.reverse_bits();
        if let Some(prev) = prev_revkey {
            if revkey <= prev {
                return Err(Error::Corrupt(format!(
                    "chain order violated at {page} (cb {:b}/{}): bit-reversed key \
                     {revkey:#x} not above predecessor {prev:#x}",
                    b.commonbits, b.localdepth
                )));
            }
        }
        prev_revkey = Some(revkey);
        if b.next.is_null() {
            // Must be the all-ones bucket (or the single depth-0 bucket).
            if b.localdepth > 0 && b.commonbits != mask(b.localdepth) {
                return Err(Error::Corrupt(format!(
                    "chain ends at {page} with commonbits {:b}, localdepth {} (not all-ones)",
                    b.commonbits, b.localdepth
                )));
            }
            break;
        }
        if !snap.buckets.contains_key(&b.next) {
            return Err(Error::Corrupt(format!(
                "{page}.next -> {} not in directory",
                b.next
            )));
        }
        page = b.next;
    }
    if visited.len() != snap.bucket_count() {
        return Err(Error::Corrupt(format!(
            "chain visits {} buckets but the directory references {}",
            visited.len(),
            snap.bucket_count()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solution1::Solution1;
    use crate::traits::ConcurrentHashFile;
    use ceh_types::{HashFileConfig, Key, Value};

    #[test]
    fn fresh_file_passes() {
        let f = Solution1::new(HashFileConfig::tiny()).unwrap();
        check_concurrent_file(f.core()).unwrap();
    }

    #[test]
    fn populated_file_passes_and_chain_is_total() {
        let f = Solution1::new(HashFileConfig::tiny()).unwrap();
        for k in 0..100u64 {
            f.insert(Key(k), Value(k)).unwrap();
        }
        let snap = snapshot_core(f.core()).unwrap();
        assert!(snap.bucket_count() > 10);
        check_concurrent_file(f.core()).unwrap();
    }

    #[test]
    fn detects_broken_chain() {
        let f = Solution1::new(HashFileConfig::tiny()).unwrap();
        for k in 0..40u64 {
            f.insert(Key(k), Value(k)).unwrap();
        }
        // Sabotage: cut one bucket's next link.
        let snap = snapshot_core(f.core()).unwrap();
        let head = snap.entries[0];
        let mut b = snap.buckets[&head].clone();
        assert!(!b.next.is_null());
        b.next = ceh_types::PageId::NULL;
        let mut buf = f.core().new_buf();
        f.core().putbucket(head, &b, &mut buf).unwrap();
        assert!(check_concurrent_file(f.core()).is_err());
    }

    #[test]
    fn detects_reachable_tombstone() {
        let f = Solution1::new(HashFileConfig::tiny()).unwrap();
        for k in 0..10u64 {
            f.insert(Key(k), Value(k)).unwrap();
        }
        let snap = snapshot_core(f.core()).unwrap();
        let (&p, b) = snap.buckets.iter().next().unwrap();
        let mut b = b.clone();
        b.mark_deleted();
        let mut buf = f.core().new_buf();
        f.core().putbucket(p, &b, &mut buf).unwrap();
        assert!(check_concurrent_file(f.core()).is_err());
    }

    #[test]
    fn detects_page_leak() {
        let f = Solution1::new(HashFileConfig::tiny()).unwrap();
        f.insert(Key(0), Value(0)).unwrap();
        let _leaked = f.core().store().alloc().unwrap();
        let err = check_concurrent_file(f.core()).unwrap_err();
        assert!(err.to_string().contains("leak"), "{err}");
    }
}
