//! **Solution 2** — the optimistic protocol of §2.4, Figures 8–9.
//!
//! "The recognized problem with top-down protocols is the need to hold a
//! lock on the bottleneck of the structure while determining if
//! restructuring will be required. This is avoided in the next protocol.
//! The idea is for updating processes to act like readers during their
//! search for the right bucket."
//!
//! Differences from Solution 1:
//!
//! * updaters take only ρ on the directory while searching and *convert*
//!   to α when the directory will actually change (the queue-bypassing
//!   conversion in `ceh-locks` exists for exactly this step);
//! * updaters can land on the **wrong bucket** — including one that was
//!   *merged away*: merges leave the "1" partner's page as a tombstone
//!   (marked deleted via `commonbits`, `next` pointing at the survivor),
//!   so stale directory entries still lead somewhere useful;
//! * deleters whose target is the "1" partner must release and re-lock in
//!   next-link order, then re-validate everything that could have changed
//!   in the window (the label-A checks of Figure 9) — partner no longer
//!   linked, bucket refilled, key moved by a split, pair already merged —
//!   and retry the whole operation if validation fails;
//! * tombstone deallocation and directory halving happen in a separate
//!   garbage-collection phase under ξ-locks, after all other locks are
//!   released.

use ceh_locks::{LockId, OwnerId};
use ceh_types::bits::{mask, partner_bit};
use ceh_types::bucket::Bucket;
use ceh_types::{
    DeleteOutcome, Error, HashFileConfig, InsertOutcome, Key, ManagerId, PageId, Result, Value,
};

use crate::common::{try_or_release, FileCore};
use crate::traits::ConcurrentHashFile;

/// When tombstones are deallocated and the directory halved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcStrategy {
    /// The paper's placement: each deleter runs its own GC phase at the
    /// end of its merge (Figure 9's final ξ-locked block).
    Inline,
    /// Extension: deleters hand garbage to a dedicated collector thread,
    /// which batches up to `batch` pages under one directory ξ-lock. The
    /// deleter returns sooner; tombstones linger a little longer (still
    /// perfectly usable as recovery paths). The A4 ablation measures the
    /// trade.
    Background {
        /// Pages collected per ξ-locked pass.
        batch: usize,
    },
}

/// Tuning knobs for [`Solution2`].
#[derive(Debug, Clone)]
pub struct Solution2Options {
    /// Upper bound on whole-operation restarts (Figure 9's `delete (z)`
    /// recursion). The paper notes "lockout is possible for all
    /// processes"; a bound turns a pathological livelock into an error
    /// instead of a hang.
    pub max_retries: usize,
    /// Garbage-collection placement.
    pub gc: GcStrategy,
}

impl Default for Solution2Options {
    fn default() -> Self {
        Solution2Options {
            max_retries: 10_000,
            gc: GcStrategy::Inline,
        }
    }
}

/// Messages to the background collector.
enum GcMsg {
    Garbage(PageId),
    /// Collect everything queued so far, then signal.
    Flush(std::sync::mpsc::SyncSender<()>),
    Stop,
}

/// The Solution-2 concurrent extendible hash file.
///
/// ```
/// use std::sync::Arc;
/// use ceh_core::{ConcurrentHashFile, Solution2};
/// use ceh_types::{HashFileConfig, Key, Value};
///
/// let file = Arc::new(Solution2::new(HashFileConfig::default())?);
/// let writers: Vec<_> = (0..4u64)
///     .map(|t| {
///         let file = Arc::clone(&file);
///         std::thread::spawn(move || {
///             for i in 0..100 {
///                 file.insert(Key(t * 100 + i), Value(i)).unwrap();
///             }
///         })
///     })
///     .collect();
/// for w in writers {
///     w.join().unwrap();
/// }
/// assert_eq!(file.len(), 400);
/// assert_eq!(file.find(Key(205))?, Some(Value(5)));
/// ceh_core::invariants::check_concurrent_file(file.core())?;
/// # Ok::<(), ceh_types::Error>(())
/// ```
pub struct Solution2 {
    core: std::sync::Arc<FileCore>,
    opts: Solution2Options,
    /// Present when `gc` is [`GcStrategy::Background`].
    gc_tx: Option<std::sync::mpsc::Sender<GcMsg>>,
    gc_thread: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Solution2 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Solution2")
            .field("core", &self.core)
            .finish()
    }
}

impl Drop for Solution2 {
    fn drop(&mut self) {
        if let Some(tx) = self.gc_tx.take() {
            let _ = tx.send(GcMsg::Stop);
        }
        if let Some(h) = self.gc_thread.take() {
            let _ = h.join();
        }
    }
}

impl Solution2 {
    /// Create a file with default options.
    pub fn new(cfg: HashFileConfig) -> Result<Self> {
        Ok(Self::assemble(
            FileCore::new(cfg)?,
            Solution2Options::default(),
        ))
    }

    /// Create a file with explicit options.
    pub fn with_options(cfg: HashFileConfig, opts: Solution2Options) -> Result<Self> {
        Ok(Self::assemble(FileCore::new(cfg)?, opts))
    }

    /// Create a file over a prebuilt core (tests inject substrates).
    pub fn from_core(core: FileCore) -> Self {
        Self::assemble(core, Solution2Options::default())
    }

    /// Create a file over a prebuilt core with explicit options.
    pub fn from_core_with_options(core: FileCore, opts: Solution2Options) -> Self {
        Self::assemble(core, opts)
    }

    fn assemble(core: FileCore, opts: Solution2Options) -> Self {
        let core = std::sync::Arc::new(core);
        let (gc_tx, gc_thread) = match opts.gc {
            GcStrategy::Inline => (None, None),
            GcStrategy::Background { batch } => {
                let (tx, rx) = std::sync::mpsc::channel::<GcMsg>();
                let core2 = std::sync::Arc::clone(&core);
                let handle = std::thread::Builder::new()
                    .name("ceh-gc".into())
                    .spawn(move || Self::collector_loop(&core2, rx, batch.max(1)))
                    .expect("spawn gc collector");
                (Some(tx), Some(handle))
            }
        };
        Solution2 {
            core,
            opts,
            gc_tx,
            gc_thread,
        }
    }

    /// The background collector: drain garbage page ids, reclaiming up to
    /// `batch` per ξ-locked pass (one directory lock amortized over the
    /// whole batch — the point of the strategy).
    fn collector_loop(core: &FileCore, rx: std::sync::mpsc::Receiver<GcMsg>, batch: usize) {
        let mut queue: Vec<PageId> = Vec::new();
        let mut flushes: Vec<std::sync::mpsc::SyncSender<()>> = Vec::new();
        loop {
            // Block for the first message, then opportunistically drain.
            let mut stopping = false;
            match rx.recv() {
                Ok(GcMsg::Garbage(p)) => queue.push(p),
                Ok(GcMsg::Flush(done)) => flushes.push(done),
                Ok(GcMsg::Stop) | Err(_) => stopping = true,
            }
            loop {
                match rx.try_recv() {
                    Ok(GcMsg::Garbage(p)) => queue.push(p),
                    Ok(GcMsg::Flush(done)) => flushes.push(done),
                    Ok(GcMsg::Stop) => {
                        stopping = true;
                        break;
                    }
                    Err(_) => break,
                }
            }
            while queue.len() >= batch || (!queue.is_empty() && (stopping || !flushes.is_empty())) {
                let take = queue.len().min(batch);
                let pass: Vec<PageId> = queue.drain(..take).collect();
                Self::gc_pass(core, &pass);
            }
            for done in flushes.drain(..) {
                let _ = done.send(());
            }
            if stopping {
                // Final drain: everything queued must be reclaimed.
                if !queue.is_empty() {
                    Self::gc_pass(core, &queue);
                }
                return;
            }
        }
    }

    /// One ξ-locked garbage-collection pass over `pages` (the Figure-9
    /// epilogue, amortized).
    fn gc_pass(core: &FileCore, pages: &[PageId]) {
        let owner = core.locks().new_owner();
        core.xi_lock(owner, LockId::Directory);
        for &page in pages {
            core.xi_lock(owner, LockId::Page(page));
            if core.dir().depthcount() == 0 {
                core.dir().halve();
                core.stats().halvings();
            }
            core.dealloc_page(page).expect("background GC double-free");
            core.un_xi_lock(owner, LockId::Page(page));
        }
        if core.dir().depthcount() == 0 && core.dir().depth() > 1 {
            core.dir().halve();
            core.stats().halvings();
        }
        core.un_xi_lock(owner, LockId::Directory);
        core.stats().gc_phases();
    }

    /// Wait until every piece of garbage handed to the background
    /// collector so far has been reclaimed (and any pending directory
    /// halving applied). No-op under [`GcStrategy::Inline`]. Call before
    /// structural checks.
    pub fn flush_gc(&self) {
        if let Some(tx) = &self.gc_tx {
            let (done_tx, done_rx) = std::sync::mpsc::sync_channel(1);
            if tx.send(GcMsg::Flush(done_tx)).is_ok() {
                let _ = done_rx.recv();
            }
        }
    }

    /// The shared core.
    pub fn core(&self) -> &FileCore {
        &self.core
    }

    /// Hand-over-hand walk to the bucket owning `pk`, locking each bucket
    /// with `mode` — the `/* WRONG BUCKET */` loops that open Figures 8
    /// and 9. Returns the final (page, bucket); the lock on that page is
    /// *held*. Tombstones are walked through like any wrong bucket: their
    /// `next` is the recovery path.
    fn walk_to_owner(
        &self,
        owner: OwnerId,
        mode: ceh_locks::LockMode,
        mut oldpage: PageId,
        pk: ceh_types::Pseudokey,
        buf: &mut ceh_storage::PageBuf,
    ) -> Result<(PageId, Bucket)> {
        let core = &self.core;
        core.locks().lock(owner, LockId::Page(oldpage), mode);
        let mut current = try_or_release!(core, owner, core.getbucket(oldpage, buf));
        let mut recovered = false;
        while !current.owns(pk) {
            /* WRONG BUCKET */
            recovered = true;
            core.stats().chain_hops();
            let newpage = current.next;
            if newpage.is_null() {
                core.locks().release_all(owner);
                return Err(Error::Corrupt(format!(
                    "walk for {pk:?}: wrong bucket {oldpage} has no next link"
                )));
            }
            core.locks().lock(owner, LockId::Page(newpage), mode);
            current = try_or_release!(core, owner, core.getbucket(newpage, buf));
            core.locks().unlock(owner, LockId::Page(oldpage), mode);
            oldpage = newpage;
        }
        if recovered {
            core.stats().wrong_bucket_recoveries();
        }
        Ok((oldpage, current))
    }

    /// Figure 8, the insertion algorithm.
    fn insert_impl(&self, key: Key, value: Value) -> Result<InsertOutcome> {
        let core = &self.core;
        let _op = core.op_span("insert", key.0);
        let cap = core.config().bucket_capacity;
        let pk = (core.hasher())(key);
        let mut buf = core.new_buf();

        for _ in 0..self.opts.max_retries {
            let owner = core.locks().new_owner();
            core.rho_lock(owner, LockId::Directory);
            let (_depth, start) = core.dir().lookup(pk);
            let (oldpage, mut current) =
                self.walk_to_owner(owner, ceh_locks::LockMode::Alpha, start, pk, &mut buf)?;

            if current.search(key).is_some() {
                /* IS Z ALREADY THERE? */
                core.un_rho_lock(owner, LockId::Directory);
                core.un_alpha_lock(owner, LockId::Page(oldpage));
                core.stats().inserts_duplicate();
                return Ok(InsertOutcome::AlreadyPresent);
            }

            if current.count() != cap {
                core.un_rho_lock(owner, LockId::Directory);
                current.add(ceh_types::Record { key, value });
                try_or_release!(core, owner, core.putbucket(oldpage, &current, &mut buf));
                core.un_alpha_lock(owner, LockId::Page(oldpage));
                core.len_inc();
                core.stats().inserts();
                return Ok(InsertOutcome::Inserted);
            }

            /* CURRENT IS FULL - DIRECTORY WILL BE AFFECTED */
            let split_span = core.trace_begin("split", oldpage.0, 0);
            // ρ → α conversion: checked against granted locks only (the
            // §2.5 deadlock-freedom argument; see ceh-locks docs).
            core.alpha_lock(owner, LockId::Directory);
            if current.localdepth == core.dir().depth() {
                try_or_release!(core, owner, core.dir().double());
                core.stats().doublings();
            }
            // One logged transaction per split (see Solution 1).
            let txn = try_or_release!(core, owner, core.begin_txn());
            let newpage = try_or_release!(core, owner, core.alloc_page());
            let (half1, half2, done) = current.split(
                key,
                value,
                cap,
                core.hasher(),
                oldpage,
                ManagerId::NONE,
                newpage,
                ManagerId::NONE,
            );
            try_or_release!(core, owner, core.putbucket(newpage, &half2, &mut buf));
            try_or_release!(core, owner, core.putbucket(oldpage, &half1, &mut buf));
            try_or_release!(core, owner, txn.commit());
            core.dir().update_one_side(newpage, half1.localdepth, pk);
            if half1.localdepth == core.dir().depth() {
                core.dir().add_depthcount(2);
            }
            core.stats().splits();
            core.trace_end(split_span, "split", oldpage.0, newpage.0);
            core.un_alpha_lock(owner, LockId::Page(oldpage));
            core.un_alpha_lock(owner, LockId::Directory);
            core.un_rho_lock(owner, LockId::Directory);
            if done {
                core.len_inc();
                core.stats().inserts();
                return Ok(InsertOutcome::Inserted);
            }
            core.stats().insert_retries();
        }
        Err(Error::RetriesExhausted {
            op: "solution2 insert",
        })
    }

    /// Figure 9, the deletion algorithm.
    fn delete_impl(&self, key: Key) -> Result<DeleteOutcome> {
        let core = &self.core;
        let _op = core.op_span("delete", key.0);
        let threshold = core.config().merge_threshold;
        let cap = core.config().bucket_capacity;
        let pk = (core.hasher())(key);
        let mut buf = core.new_buf();

        'retry: for attempt in 0..self.opts.max_retries {
            // DEVIATION: Figure 9's label-A path re-runs `delete (z)`
            // wholesale, but when the cause is persistent (the "0"
            // partner split deeper, so "the local depths do not match"),
            // the retry re-encounters the same state forever. §2.5's
            // prose says the deleter "goes back to simply trying to
            // remove its key" — which is what we do after a few retries:
            // give up on merging for this operation and take the plain
            // removal path, which only ever locks in directory→bucket
            // walk order and is therefore deadlock-safe.
            let allow_merge = attempt < 3;
            let owner = core.locks().new_owner();
            core.rho_lock(owner, LockId::Directory);
            let depth_at_lookup = core.dir().depth();
            let selectedbits = pk.low_bits(depth_at_lookup);
            let start = core.dir().index(selectedbits);
            let (oldpage, mut current) =
                self.walk_to_owner(owner, ceh_locks::LockMode::Xi, start, pk, &mut buf)?;

            let too_empty =
                allow_merge && current.count() <= threshold + 1 && current.localdepth > 1;
            if !too_empty {
                core.un_rho_lock(owner, LockId::Directory);
                let outcome = if current.remove(key) {
                    try_or_release!(core, owner, core.putbucket(oldpage, &current, &mut buf));
                    core.len_dec();
                    core.stats().deletes();
                    DeleteOutcome::Deleted
                } else {
                    core.stats().deletes_miss();
                    DeleteOutcome::NotFound
                };
                core.un_xi_lock(owner, LockId::Page(oldpage));
                return Ok(outcome);
            }

            /* IF EVERYTHING STAYS THE SAME - TRY TO MERGE */
            if current.search(key).is_none() {
                /* Z NOT THERE */
                core.un_xi_lock(owner, LockId::Page(oldpage));
                core.un_rho_lock(owner, LockId::Directory);
                core.stats().deletes_miss();
                return Ok(DeleteOutcome::NotFound);
            }

            // Deliberate fault injection for `ceh-check`'s self-test: the
            // `check-inject` feature disables Figure 9's label-A
            // re-validation below, recreating exactly the stale-partner
            // race the paper's checklist exists to close. Never enabled in
            // normal builds; the schedule explorer must catch it.
            let skip_label_a = cfg!(feature = "check-inject");
            let m = partner_bit(current.localdepth);
            let (brother, newpage, merged_page, garbage_page);
            if pk.0 & m != m {
                /* Z IN FIRST OF PAIR */
                let np = current.next;
                if np.is_null() {
                    // Defensive (see Solution 1): treat as unmergeable.
                    return self.remove_without_merge(owner, key, oldpage, current, buf);
                }
                core.xi_lock(owner, LockId::Page(np));
                brother = try_or_release!(core, owner, core.getbucket(np, &mut buf));
                newpage = np;
                garbage_page = np;
                merged_page = oldpage;
            } else {
                /* Z IN SECOND OF PAIR */
                let np = core.dir().index(selectedbits & !m);
                core.un_xi_lock(owner, LockId::Page(oldpage));
                core.xi_lock(owner, LockId::Page(np));
                brother = try_or_release!(core, owner, core.getbucket(np, &mut buf));
                if !skip_label_a && (brother.next != oldpage || brother.is_deleted()) {
                    /* A: OLDPAGE AND NEWPAGE ARE NOT MERGABLE PARTNERS */
                    // The stale directory entry led somewhere that is no
                    // longer (or never was) the live "0" partner.
                    // Locking oldpage from here would risk deadlock;
                    // restart instead (Figure 9's `delete (z); return;`).
                    core.un_xi_lock(owner, LockId::Page(np));
                    core.un_rho_lock(owner, LockId::Directory);
                    core.stats().delete_retries();
                    continue 'retry;
                }
                core.xi_lock(owner, LockId::Page(oldpage));
                current = try_or_release!(core, owner, core.getbucket(oldpage, &mut buf));
                if !skip_label_a && !current.owns(pk) {
                    /* Z no longer belongs in oldpage - while waiting to
                    re-lock oldpage it may have filled up and split,
                    moving z */
                    core.un_xi_lock(owner, LockId::Page(oldpage));
                    core.un_xi_lock(owner, LockId::Page(np));
                    core.un_rho_lock(owner, LockId::Directory);
                    core.stats().delete_retries();
                    continue 'retry;
                }
                newpage = np;
                garbage_page = oldpage;
                merged_page = np;
            }

            // Figure 9's combined re-validation: "Either it is not
            // possible to merge because of localdepths or something
            // happened while waiting to re-lock oldpage - more data
            // inserted into oldpage so it is no longer empty and maybe
            // then z deleted".
            let still_mergeable = current.localdepth == brother.localdepth
                && current.count() <= threshold + 1
                && current.search(key).is_some()
                && current.count() - 1 + brother.count() <= cap;
            if !still_mergeable {
                core.un_xi_lock(owner, LockId::Page(newpage));
                return self.remove_without_merge(owner, key, oldpage, current, buf);
            }

            /* MERGE */
            let merge_span = core.trace_begin("merge", oldpage.0, 0);
            core.alpha_lock(owner, LockId::Directory); // ρ → α conversion
            let old_ld = brother.localdepth;
            if old_ld == core.dir().depth() {
                core.dir().add_depthcount(-2);
            }
            let mut survivor = brother.clone();
            survivor.localdepth -= 1;
            survivor.commonbits &= mask(survivor.localdepth);
            if garbage_page == oldpage {
                // z's bucket is the "1" partner: splice it out of the
                // chain (brother -> next = current -> next).
                survivor.next = current.next;
                survivor.next_mgr = current.next_mgr;
            }
            current.remove(key);
            survivor.records.extend(current.records.iter().copied());
            survivor.version = survivor.version.max(current.version) + 1;

            // The tombstone: "marking the old partner as 'deleted' (we
            // use the commonbits field for this), setting its next field
            // to point to the merged bucket".
            let mut tombstone = Bucket::new(0, 0);
            tombstone.mark_deleted();
            tombstone.localdepth = old_ld;
            tombstone.next = merged_page;
            tombstone.version = survivor.version;

            // Survivor + tombstone are one logged transaction: recovery
            // never sees a merged survivor without its tombstone (or
            // vice versa).
            let txn = try_or_release!(core, owner, core.begin_txn());
            try_or_release!(
                core,
                owner,
                core.putbucket(merged_page, &survivor, &mut buf)
            );
            try_or_release!(
                core,
                owner,
                core.putbucket(garbage_page, &tombstone, &mut buf)
            );
            try_or_release!(core, owner, txn.commit());
            core.dir().update_one_side(merged_page, old_ld, pk);
            core.stats().merges();
            core.trace_end(merge_span, "merge", merged_page.0, garbage_page.0);
            core.un_xi_lock(owner, LockId::Page(oldpage));
            core.un_xi_lock(owner, LockId::Page(newpage));
            core.un_alpha_lock(owner, LockId::Directory);
            core.un_rho_lock(owner, LockId::Directory);
            core.len_dec();
            core.stats().deletes();

            // Garbage-collection phase: "Deleted buckets and discarded
            // halves of the directory are actually deallocated only after
            // ensuring that no process needs them anymore" — the ξ-locks
            // are that assurance (see module docs for why).
            match (&self.opts.gc, &self.gc_tx) {
                (GcStrategy::Background { .. }, Some(tx)) => {
                    // Extension: hand the tombstone to the collector; it
                    // runs the same ξ-locked phase, batched.
                    let _ = tx.send(GcMsg::Garbage(garbage_page));
                }
                _ => {
                    core.xi_lock(owner, LockId::Directory);
                    core.xi_lock(owner, LockId::Page(garbage_page));
                    if core.dir().depthcount() == 0 {
                        core.dir().halve();
                        core.stats().halvings();
                    }
                    try_or_release!(core, owner, core.dealloc_page(garbage_page));
                    core.un_xi_lock(owner, LockId::Page(garbage_page));
                    core.un_xi_lock(owner, LockId::Directory);
                    core.stats().gc_phases();
                }
            }
            return Ok(DeleteOutcome::Deleted);
        }
        Err(Error::RetriesExhausted {
            op: "solution2 delete",
        })
    }

    /// The "just remove it" tail shared by the unmergeable paths. Holds:
    /// ρ(directory), ξ(oldpage). Releases everything.
    fn remove_without_merge(
        &self,
        owner: OwnerId,
        key: Key,
        oldpage: PageId,
        mut current: Bucket,
        mut buf: ceh_storage::PageBuf,
    ) -> Result<DeleteOutcome> {
        let core = &self.core;
        core.un_rho_lock(owner, LockId::Directory);
        let outcome = if current.remove(key) {
            try_or_release!(core, owner, core.putbucket(oldpage, &current, &mut buf));
            core.len_dec();
            core.stats().deletes();
            DeleteOutcome::Deleted
        } else {
            core.stats().deletes_miss();
            DeleteOutcome::NotFound
        };
        core.un_xi_lock(owner, LockId::Page(oldpage));
        Ok(outcome)
    }
}

impl ConcurrentHashFile for Solution2 {
    fn find(&self, key: Key) -> Result<Option<Value>> {
        // "The procedure for the find operation is the same as before."
        let t = self.core.hist_invoke(ceh_obs::HistKind::Find, key, 0);
        let r = self.core.find_impl(key, false);
        self.core.hist_ret(t, crate::traits::hist_find_result(&r));
        r
    }

    fn insert(&self, key: Key, value: Value) -> Result<InsertOutcome> {
        let t = self
            .core
            .hist_invoke(ceh_obs::HistKind::Insert, key, value.0);
        let r = self.insert_impl(key, value);
        self.core.hist_ret(t, crate::traits::hist_insert_result(&r));
        r
    }

    fn delete(&self, key: Key) -> Result<DeleteOutcome> {
        let t = self.core.hist_invoke(ceh_obs::HistKind::Delete, key, 0);
        let r = self.delete_impl(key);
        self.core.hist_ret(t, crate::traits::hist_delete_result(&r));
        r
    }

    fn len(&self) -> usize {
        self.core.len()
    }

    fn name(&self) -> &'static str {
        "solution2"
    }

    fn set_io_latency_ns(&self, ns: u64) {
        self.core.store().set_io_latency_ns(ns);
    }

    fn metrics(&self) -> ceh_obs::MetricsHandle {
        self.core.metrics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invariants::check_concurrent_file;

    fn file() -> Solution2 {
        Solution2::new(HashFileConfig::tiny()).unwrap()
    }

    #[test]
    fn single_thread_crud() {
        let f = file();
        assert_eq!(
            f.insert(Key(1), Value(10)).unwrap(),
            InsertOutcome::Inserted
        );
        assert_eq!(
            f.insert(Key(1), Value(20)).unwrap(),
            InsertOutcome::AlreadyPresent
        );
        assert_eq!(f.find(Key(1)).unwrap(), Some(Value(10)));
        assert_eq!(f.delete(Key(1)).unwrap(), DeleteOutcome::Deleted);
        assert_eq!(f.delete(Key(1)).unwrap(), DeleteOutcome::NotFound);
        assert_eq!(f.core().locks().total_granted(), 0);
    }

    #[test]
    fn grow_and_shrink_preserves_structure() {
        let f = file();
        for k in 0..300u64 {
            f.insert(Key(k), Value(k)).unwrap();
        }
        check_concurrent_file(f.core()).unwrap();
        for k in 0..300u64 {
            assert_eq!(f.find(Key(k)).unwrap(), Some(Value(k)), "key {k}");
        }
        for k in 0..300u64 {
            assert_eq!(f.delete(Key(k)).unwrap(), DeleteOutcome::Deleted, "key {k}");
        }
        assert!(f.is_empty());
        check_concurrent_file(f.core()).unwrap();
        assert_eq!(f.core().locks().total_granted(), 0);
    }

    #[test]
    fn tombstones_are_collected() {
        let f = file();
        for k in 0..100u64 {
            f.insert(Key(k), Value(k)).unwrap();
        }
        let allocated_peak = f.core().store().allocated_pages();
        for k in 0..100u64 {
            f.delete(Key(k)).unwrap();
        }
        // Merges ran, so tombstones were created and must all be gone.
        let s = f.core().stats().snapshot();
        assert!(s.merges > 0);
        assert_eq!(s.gc_phases, s.merges, "every merge runs one GC phase");
        assert!(f.core().store().allocated_pages() < allocated_peak);
        check_concurrent_file(f.core()).unwrap();
    }

    #[test]
    fn interleaved_insert_delete_storms() {
        let f = file();
        for round in 0..5u64 {
            for k in 0..80u64 {
                f.insert(Key(k * 7 + round), Value(k)).unwrap();
            }
            for k in 0..80u64 {
                f.delete(Key(k * 7 + round)).unwrap();
            }
            check_concurrent_file(f.core()).unwrap();
        }
    }

    #[test]
    fn background_gc_collects_everything() {
        let f = Solution2::with_options(
            HashFileConfig::tiny(),
            Solution2Options {
                max_retries: 10_000,
                gc: GcStrategy::Background { batch: 8 },
            },
        )
        .unwrap();
        for k in 0..200u64 {
            f.insert(Key(k), Value(k)).unwrap();
        }
        for k in 0..200u64 {
            assert_eq!(f.delete(Key(k)).unwrap(), DeleteOutcome::Deleted);
        }
        let s_before = f.core().stats().snapshot();
        assert!(s_before.merges > 0);
        f.flush_gc();
        check_concurrent_file(f.core()).unwrap(); // no tombstones, no leaks
        assert!(f.is_empty());
    }

    #[test]
    fn background_gc_under_concurrency() {
        let f = std::sync::Arc::new(
            Solution2::with_options(
                HashFileConfig::tiny(),
                Solution2Options {
                    max_retries: 10_000,
                    gc: GcStrategy::Background { batch: 4 },
                },
            )
            .unwrap(),
        );
        let handles: Vec<_> = (0..6u64)
            .map(|t| {
                let f = std::sync::Arc::clone(&f);
                std::thread::spawn(move || {
                    for i in 0..400u64 {
                        let k = (i % 50) * 6 + t;
                        if i % 2 == 0 {
                            f.insert(Key(k), Value(i)).unwrap();
                        } else {
                            f.delete(Key(k)).unwrap();
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        f.flush_gc();
        check_concurrent_file(f.core()).unwrap();
    }

    #[test]
    fn drop_drains_the_collector() {
        // Dropping a background-GC file must reclaim queued garbage (the
        // store would otherwise leak and a later recovery would see
        // tombstones).
        let store;
        {
            let core = FileCore::new(HashFileConfig::tiny()).unwrap();
            store = std::sync::Arc::clone(core.store());
            let f = Solution2::from_core_with_options(
                core,
                Solution2Options {
                    max_retries: 10_000,
                    gc: GcStrategy::Background { batch: 64 },
                },
            );
            for k in 0..100u64 {
                f.insert(Key(k), Value(k)).unwrap();
            }
            for k in 0..100u64 {
                f.delete(Key(k)).unwrap();
            }
            // No flush: drop must handle the backlog.
        }
        // Every surviving page decodes as a live (non-tombstone) bucket.
        let mut buf = ceh_storage::PageBuf::zeroed(store.page_size());
        for p in store.allocated_page_ids() {
            store.read(p, &mut buf).unwrap();
            let b = ceh_types::bucket::Bucket::decode(&buf).unwrap();
            assert!(
                !b.is_deleted(),
                "{p} is an uncollected tombstone after drop"
            );
        }
    }

    #[test]
    fn directory_full_releases_locks() {
        let cfg = HashFileConfig::tiny()
            .with_bucket_capacity(1)
            .with_max_depth(2);
        let f = Solution2::new(cfg).unwrap();
        let mut got_err = false;
        for k in 0..64u64 {
            match f.insert(Key(k), Value(k)) {
                Ok(_) => {}
                Err(Error::DirectoryFull { .. }) => {
                    got_err = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(got_err);
        assert_eq!(f.core().locks().total_granted(), 0);
    }
}
