//! The common interface over the three concurrent implementations.

use ceh_types::{DeleteOutcome, InsertOutcome, Key, Result, Value};

/// A hash file safe for concurrent `find`/`insert`/`delete` from many
/// threads.
///
/// Implemented by [`crate::Solution1`], [`crate::Solution2`], and
/// [`crate::GlobalLockFile`]; the benchmark harness and the stress tests
/// are generic over this trait so every experiment runs identically
/// against all three.
pub trait ConcurrentHashFile: Send + Sync {
    /// Look up a key.
    fn find(&self, key: Key) -> Result<Option<Value>>;

    /// Insert a key (add-if-absent; see [`InsertOutcome`]).
    fn insert(&self, key: Key, value: Value) -> Result<InsertOutcome>;

    /// Delete a key.
    fn delete(&self, key: Key) -> Result<DeleteOutcome>;

    /// Number of records. Exact at quiescence; may lag in-flight
    /// operations.
    fn len(&self) -> usize;

    /// Is the file empty (same caveat as [`ConcurrentHashFile::len`])?
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Short name for reports ("solution1", "solution2", "global-lock").
    fn name(&self) -> &'static str;

    /// Benchmark-harness hook: change the simulated page-I/O latency at
    /// runtime (preload cheap, then measure with I/O charged). No-op for
    /// implementations without a simulated store.
    fn set_io_latency_ns(&self, _ns: u64) {}

    /// The metrics handle this file reports through, for collecting a
    /// [`ceh_obs::RunReport`] of the run. The default returns a fresh
    /// empty registry (a no-op sink): implementations that wire their
    /// layers to one handle override this with the real one.
    fn metrics(&self) -> ceh_obs::MetricsHandle {
        ceh_obs::MetricsHandle::default()
    }
}

/// Map a `find` outcome onto its history-log result (errors record
/// [`ceh_obs::HistResult::Unknown`]: the checker treats them as
/// effect-unknown).
pub(crate) fn hist_find_result(r: &Result<Option<Value>>) -> ceh_obs::HistResult {
    match r {
        Ok(v) => ceh_obs::HistResult::Found(v.map(|v| v.0)),
        Err(_) => ceh_obs::HistResult::Unknown,
    }
}

/// Map an `insert` outcome onto its history-log result.
pub(crate) fn hist_insert_result(r: &Result<InsertOutcome>) -> ceh_obs::HistResult {
    match r {
        Ok(o) => ceh_obs::HistResult::Inserted(*o == InsertOutcome::Inserted),
        Err(_) => ceh_obs::HistResult::Unknown,
    }
}

/// Map a `delete` outcome onto its history-log result.
pub(crate) fn hist_delete_result(r: &Result<DeleteOutcome>) -> ceh_obs::HistResult {
    match r {
        Ok(o) => ceh_obs::HistResult::Deleted(*o == DeleteOutcome::Deleted),
        Err(_) => ceh_obs::HistResult::Unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // A trivial impl to pin the object-safety of the trait (the harness
    // passes `&dyn ConcurrentHashFile` around).
    struct Null;
    impl ConcurrentHashFile for Null {
        fn find(&self, _: Key) -> Result<Option<Value>> {
            Ok(None)
        }
        fn insert(&self, _: Key, _: Value) -> Result<InsertOutcome> {
            Ok(InsertOutcome::Inserted)
        }
        fn delete(&self, _: Key) -> Result<DeleteOutcome> {
            Ok(DeleteOutcome::NotFound)
        }
        fn len(&self) -> usize {
            0
        }
        fn name(&self) -> &'static str {
            "null"
        }
    }

    #[test]
    fn trait_is_object_safe() {
        let f: &dyn ConcurrentHashFile = &Null;
        assert_eq!(f.name(), "null");
        assert!(f.is_empty());
        assert_eq!(f.find(Key(1)).unwrap(), None);
    }
}
