//! State and helpers shared by both concurrent solutions.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use ceh_locks::shadow::{self, TrackedAtomicUsize};
use ceh_locks::{LockId, LockManager, LockManagerConfig, LockMode, OwnerId};
use ceh_obs::MetricsHandle;
use ceh_storage::{
    DiskHandle, DurableConfig, DurableStore, DurableTxn, PageBuf, PageStore, PageStoreConfig,
    RecoveryReport,
};
use ceh_types::bucket::Bucket;
use ceh_types::{hash_key, Error, HashFileConfig, Key, PageId, Pseudokey, Result, Value};

use crate::directory::Directory;
use crate::stats::OpStats;

/// Propagate an error out of a protocol function after dropping every
/// lock the operation holds. Mid-protocol failures (page store exhausted,
/// directory at max depth) must not leave locks behind.
macro_rules! try_or_release {
    ($core:expr, $owner:expr, $e:expr) => {
        match $e {
            Ok(v) => v,
            Err(err) => {
                $core.locks().release_all($owner);
                return Err(err);
            }
        }
    };
}
pub(crate) use try_or_release;

/// The shared-state core of a concurrent extendible hash file: the page
/// store (disk), lock manager, directory, configuration, and counters.
///
/// Solution 1 and Solution 2 are thin protocol layers over this; both
/// expose it via `core()` so tests and the invariant checker can inspect
/// structure without duplicating plumbing.
pub struct FileCore {
    store: Arc<PageStore>,
    /// The durability layer, when this file is crash-consistent: every
    /// mutation funnels through it ([`FileCore::alloc_page`],
    /// [`FileCore::dealloc_page`], [`FileCore::putbucket`]), and the
    /// restructuring sections bracket themselves with
    /// [`FileCore::begin_txn`]. `None` = the volatile simulation
    /// (`store` is then the only storage).
    wal: Option<Arc<DurableStore>>,
    locks: Arc<LockManager>,
    dir: Directory,
    cfg: HashFileConfig,
    hasher: fn(Key) -> Pseudokey,
    stats: OpStats,
    metrics: MetricsHandle,
    len: TrackedAtomicUsize,
}

impl std::fmt::Debug for FileCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileCore")
            .field("dir", &self.dir)
            .field("len", &self.len())
            .finish()
    }
}

impl FileCore {
    /// Build a core with its own page store and lock manager. The
    /// configured `io_latency_ns` is applied to every page read/write —
    /// the paper's buckets live on disk, and the protocols' value shows
    /// when I/O, not lock-manager software overhead, is the unit of cost.
    ///
    /// One [`MetricsHandle`] is threaded through every layer it builds,
    /// so the file's lock, storage, and operation metrics land in one
    /// registry, retrievable as a coherent [`ceh_obs::RunReport`] via
    /// [`FileCore::metrics`].
    pub fn new(cfg: HashFileConfig) -> Result<Self> {
        let metrics = MetricsHandle::new();
        let store = PageStore::new_shared_with_metrics(
            PageStoreConfig {
                page_size: Bucket::page_size_for(cfg.bucket_capacity),
                io_latency_ns: cfg.io_latency_ns,
                ..Default::default()
            },
            &metrics,
        );
        let locks = Arc::new(LockManager::with_metrics(
            LockManagerConfig::default(),
            &metrics,
        ));
        Self::with_parts_metrics(cfg, store, locks, hash_key, &metrics)
    }

    /// Build a core over caller-supplied substrates (tests inject the
    /// identity pseudokey function and watchdog-armed lock managers).
    /// The core's own counters get a fresh private registry; construct
    /// the substrates with [`MetricsHandle`]-aware constructors and use
    /// [`FileCore::with_parts_metrics`] for one correlated registry.
    pub fn with_parts(
        cfg: HashFileConfig,
        store: Arc<PageStore>,
        locks: Arc<LockManager>,
        hasher: fn(Key) -> Pseudokey,
    ) -> Result<Self> {
        Self::with_parts_metrics(cfg, store, locks, hasher, &MetricsHandle::default())
    }

    /// [`FileCore::with_parts`] with the core's operation counters (and
    /// tracer) registered in `metrics`' registry. Pass the same handle
    /// the store and lock manager were built with to get one coherent
    /// run report.
    pub fn with_parts_metrics(
        cfg: HashFileConfig,
        store: Arc<PageStore>,
        locks: Arc<LockManager>,
        hasher: fn(Key) -> Pseudokey,
        metrics: &MetricsHandle,
    ) -> Result<Self> {
        cfg.validate()?;
        if Bucket::capacity_for(store.page_size()) < cfg.bucket_capacity {
            return Err(Error::Config(format!(
                "page size {} holds only {} records, config wants {}",
                store.page_size(),
                Bucket::capacity_for(store.page_size()),
                cfg.bucket_capacity
            )));
        }
        let root = store.alloc()?;
        let bucket = Bucket::new(0, 0);
        let mut buf = PageBuf::zeroed(store.page_size());
        bucket.encode(&mut buf)?;
        store.write(root, &buf)?;
        let dir = Directory::new(cfg.max_depth, root)?;
        Ok(FileCore {
            store,
            wal: None,
            locks,
            dir,
            cfg,
            hasher,
            stats: OpStats::with_handle(metrics),
            metrics: metrics.clone(),
            len: TrackedAtomicUsize::new(0, "core.len"),
        })
    }

    /// Build a **crash-consistent** core over a durable store: the root
    /// bucket's creation is logged, and every later mutation funnels
    /// through the WAL. The volatile read path (`store()`) is the
    /// durable store's cache, so readers cost the same as ever.
    pub fn with_durable_metrics(
        cfg: HashFileConfig,
        wal: Arc<DurableStore>,
        locks: Arc<LockManager>,
        hasher: fn(Key) -> Pseudokey,
        metrics: &MetricsHandle,
    ) -> Result<Self> {
        cfg.validate()?;
        if Bucket::capacity_for(wal.page_size()) < cfg.bucket_capacity {
            return Err(Error::Config(format!(
                "page size {} holds only {} records, config wants {}",
                wal.page_size(),
                Bucket::capacity_for(wal.page_size()),
                cfg.bucket_capacity
            )));
        }
        let txn = wal.begin_txn()?;
        let root = wal.alloc()?;
        let bucket = Bucket::new(0, 0);
        let mut buf = PageBuf::zeroed(wal.page_size());
        bucket.encode(&mut buf)?;
        wal.write(root, &buf)?;
        txn.commit()?;
        let dir = Directory::new(cfg.max_depth, root)?;
        Ok(FileCore {
            store: Arc::clone(wal.cache()),
            wal: Some(wal),
            locks,
            dir,
            cfg,
            hasher,
            stats: OpStats::with_handle(metrics),
            metrics: metrics.clone(),
            len: TrackedAtomicUsize::new(0, "core.len"),
        })
    }

    /// Crash-recover a core from a durable medium: replay the WAL
    /// ([`DurableStore::recover`]), sweep bucket-level garbage
    /// (tombstones and debris that decode as junk) with **logged**
    /// deallocations, then rebuild the directory from the surviving
    /// buckets' `commonbits`/local depths (the same scan as
    /// [`FileCore::recover`]).
    pub fn recover_durable_metrics(
        cfg: HashFileConfig,
        disk: &DiskHandle,
        dcfg: DurableConfig,
        locks: Arc<LockManager>,
        hasher: fn(Key) -> Pseudokey,
        metrics: &MetricsHandle,
    ) -> Result<(Self, RecoveryReport)> {
        let (wal, report) = DurableStore::recover(disk, dcfg, metrics)?;
        // Bucket-level garbage pass, durably: a page that decodes as a
        // live bucket stays; everything else (tombstones, poison,
        // uncommitted-alloc zero pages) is deallocated *through the
        // log* so the medium converges with the recovered structure.
        let mut buf = PageBuf::zeroed(wal.page_size());
        for p in wal.allocated_page_ids() {
            wal.read(p, &mut buf)?;
            let garbage = match Bucket::decode(&buf) {
                Ok(b) => b.is_deleted(),
                Err(_) => true,
            };
            if garbage {
                wal.dealloc(p)?;
            }
        }
        if wal.allocated_page_ids().is_empty() {
            // Nothing recoverable (a crash before the first commit):
            // initialize fresh, through the log.
            let core = Self::with_durable_metrics(cfg, wal, locks, hasher, metrics)?;
            return Ok((core, report));
        }
        let mut core =
            Self::recover_with_metrics(cfg, Arc::clone(wal.cache()), locks, hasher, metrics)?;
        core.wal = Some(wal);
        Ok((core, report))
    }

    /// Rebuild a core from an existing (typically file-backed) store by
    /// scanning its pages — the concurrent-file recovery path. Reuses the
    /// sequential recovery scan (see
    /// [`ceh_sequential::SequentialHashFile::recover`]), then installs
    /// the rebuilt layout into the concurrent directory.
    pub fn recover(
        cfg: HashFileConfig,
        store: Arc<PageStore>,
        locks: Arc<LockManager>,
        hasher: fn(Key) -> Pseudokey,
    ) -> Result<Self> {
        Self::recover_with_metrics(cfg, store, locks, hasher, &MetricsHandle::default())
    }

    /// [`FileCore::recover`] with the core's counters registered in
    /// `metrics`' registry.
    pub fn recover_with_metrics(
        cfg: HashFileConfig,
        store: Arc<PageStore>,
        locks: Arc<LockManager>,
        hasher: fn(Key) -> Pseudokey,
        metrics: &MetricsHandle,
    ) -> Result<Self> {
        let recovered =
            ceh_sequential::SequentialHashFile::recover(cfg.clone(), Arc::clone(&store), hasher)?;
        let snap = recovered.snapshot()?;
        let dir = Directory::restore(cfg.max_depth, &snap.entries, snap.depthcount)?;
        let len = recovered.len();
        drop(recovered);
        Ok(FileCore {
            store,
            wal: None,
            locks,
            dir,
            cfg,
            hasher,
            stats: OpStats::with_handle(metrics),
            metrics: metrics.clone(),
            len: TrackedAtomicUsize::new(len, "core.len"),
        })
    }

    /// The directory.
    pub fn dir(&self) -> &Directory {
        &self.dir
    }

    /// The page store (the volatile cache when durable).
    pub fn store(&self) -> &Arc<PageStore> {
        &self.store
    }

    /// The durability layer, when this file is crash-consistent.
    pub fn wal(&self) -> Option<&Arc<DurableStore>> {
        self.wal.as_ref()
    }

    /// Allocate a page — logged when durable (`allocbucket`).
    pub fn alloc_page(&self) -> Result<PageId> {
        match &self.wal {
            Some(w) => w.alloc(),
            None => self.store.alloc(),
        }
    }

    /// Deallocate a page — logged when durable (`deallocbucket`).
    pub fn dealloc_page(&self, page: PageId) -> Result<()> {
        match &self.wal {
            Some(w) => w.dealloc(page),
            None => self.store.dealloc(page),
        }
    }

    /// Open a logged transaction bracketing a multi-page restructuring
    /// (split, merge, GC). A no-op guard in volatile mode, so callers
    /// bracket unconditionally; see [`DurableTxn`].
    pub fn begin_txn(&self) -> Result<DurableTxn> {
        match &self.wal {
            Some(w) => w.begin_txn(),
            None => Ok(DurableTxn::noop()),
        }
    }

    /// The lock manager.
    pub fn locks(&self) -> &Arc<LockManager> {
        &self.locks
    }

    /// The configuration.
    pub fn config(&self) -> &HashFileConfig {
        &self.cfg
    }

    /// Operation counters.
    pub fn stats(&self) -> &OpStats {
        &self.stats
    }

    /// The metrics handle this core (and, when built via
    /// [`FileCore::new`] or the `_metrics` constructors with a shared
    /// handle, its store and lock manager) reports through.
    pub fn metrics(&self) -> MetricsHandle {
        self.metrics.clone()
    }

    /// Open a `core.<event>` span under the calling thread's ambient
    /// [`ceh_obs::TraceCtx`] (a fresh trace root when standalone; the
    /// distributed envelope's context when a slave installed one).
    /// No-op returning the sentinel while the tracer is disabled.
    #[inline]
    pub(crate) fn trace_begin(&self, event: &'static str, a: u64, b: u64) -> ceh_obs::TraceCtx {
        self.metrics
            .trace_begin(ceh_obs::TraceCtx::current(), "core", event, a, b)
    }

    /// Close a span opened by [`FileCore::trace_begin`].
    #[inline]
    pub(crate) fn trace_end(&self, ctx: ceh_obs::TraceCtx, event: &'static str, a: u64, b: u64) {
        self.metrics.trace_end(ctx, "core", event, a, b);
    }

    /// Open an operation span (`core.find` / `core.insert` /
    /// `core.delete`) and install it as the thread's ambient context,
    /// so lock waits and structural child spans nest beneath it. The
    /// span closes when the guard drops — on every return path,
    /// including errors. While the tracer is disabled the only cost is
    /// one relaxed atomic load.
    #[inline]
    pub(crate) fn op_span(&self, event: &'static str, a: u64) -> OpSpan<'_> {
        if !self.metrics.tracer().is_enabled() {
            return OpSpan {
                core: self,
                ctx: ceh_obs::TraceCtx::NONE,
                event,
                _scope: None,
            };
        }
        let ctx = self
            .metrics
            .trace_begin(ceh_obs::TraceCtx::current(), "core", event, a, 0);
        OpSpan {
            core: self,
            ctx,
            event,
            _scope: Some(ctx.scope()),
        }
    }

    /// Record an operation's invoke edge in the shared history log
    /// (no-op — one relaxed load — unless the log is enabled; see
    /// [`ceh_obs::HistoryLog`]).
    #[inline]
    pub(crate) fn hist_invoke(
        &self,
        kind: ceh_obs::HistKind,
        key: Key,
        value: u64,
    ) -> ceh_obs::HistToken {
        self.metrics.history().invoke(kind, key.0, value)
    }

    /// Record an operation's return edge (pair of [`FileCore::hist_invoke`]).
    #[inline]
    pub(crate) fn hist_ret(&self, token: ceh_obs::HistToken, result: ceh_obs::HistResult) {
        self.metrics.history().ret(token, result);
    }

    /// The pseudokey function in use.
    pub fn hasher(&self) -> fn(Key) -> Pseudokey {
        self.hasher
    }

    /// Record count (exact at quiescence).
    pub fn len(&self) -> usize {
        // ceh-lint: allow(relaxed-ordering) — statistics counter, exact only at quiescence
        self.len.load(Ordering::Relaxed)
    }

    /// Is the file empty (quiescent)?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub(crate) fn len_inc(&self) {
        self.len.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn len_dec(&self) {
        self.len.fetch_sub(1, Ordering::Relaxed);
    }

    /// Fresh page buffer.
    pub fn new_buf(&self) -> PageBuf {
        PageBuf::zeroed(self.store.page_size())
    }

    /// `getbucket(page, buffer)`: read and decode. Announced to the race
    /// detector as a page-granular acquire read (the page store
    /// serializes the physical I/O; the ρ/α protocol is what keeps the
    /// *contents* coherent, and that is what the shadow access models).
    #[track_caller]
    pub fn getbucket(&self, page: PageId, buf: &mut PageBuf) -> Result<Bucket> {
        shadow::page_read(page.0);
        self.store.read(page, buf)?;
        Bucket::decode(buf)
    }

    /// `putbucket(page, buffer)`: encode and write — through the WAL
    /// when durable (redo record first, then the cache). Announced to
    /// the race detector as a page-granular release write.
    #[track_caller]
    pub fn putbucket(&self, page: PageId, bucket: &Bucket, buf: &mut PageBuf) -> Result<()> {
        bucket.encode(buf)?;
        shadow::page_write(page.0);
        match &self.wal {
            Some(w) => w.write(page, buf),
            None => self.store.write(page, buf),
        }
    }

    /// Lock-manager shorthands keeping the transliterations readable:
    /// `rho_lock(owner, LockId::Directory)` reads like the figure's
    /// `RhoLock (directory)`.
    #[inline]
    // ceh-lint: allow(unpaired-lock) — delegating shorthand; pairing is the caller's obligation
    pub(crate) fn rho_lock(&self, o: OwnerId, id: LockId) {
        self.locks.lock(o, id, LockMode::Rho);
    }

    #[inline]
    pub(crate) fn un_rho_lock(&self, o: OwnerId, id: LockId) {
        self.locks.unlock(o, id, LockMode::Rho);
    }

    #[inline]
    // ceh-lint: allow(unpaired-lock) — delegating shorthand; pairing is the caller's obligation
    pub(crate) fn alpha_lock(&self, o: OwnerId, id: LockId) {
        self.locks.lock(o, id, LockMode::Alpha);
    }

    #[inline]
    pub(crate) fn un_alpha_lock(&self, o: OwnerId, id: LockId) {
        self.locks.unlock(o, id, LockMode::Alpha);
    }

    #[inline]
    // ceh-lint: allow(unpaired-lock) — delegating shorthand; pairing is the caller's obligation
    pub(crate) fn xi_lock(&self, o: OwnerId, id: LockId) {
        self.locks.lock(o, id, LockMode::Xi);
    }

    #[inline]
    pub(crate) fn un_xi_lock(&self, o: OwnerId, id: LockId) {
        self.locks.unlock(o, id, LockMode::Xi);
    }

    /// The find algorithm of Figure 5, shared verbatim by both solutions
    /// ("The procedure for the find operation is the same as before",
    /// §2.4). With `hold_directory` set, runs the "more pessimistic
    /// approach" §2.2 mentions and rejects — the reader keeps its ρ-lock
    /// on the directory until it holds the right bucket — which is the A1
    /// ablation baseline.
    pub(crate) fn find_impl(&self, key: Key, hold_directory: bool) -> Result<Option<Value>> {
        let _op = self.op_span("find", key.0);
        let owner = self.locks.new_owner();
        let pk = (self.hasher)(key);
        let mut buf = self.new_buf();

        self.rho_lock(owner, LockId::Directory);
        let (_depth, mut oldpage) = self.dir.lookup(pk);
        self.rho_lock(owner, LockId::Page(oldpage));
        if !hold_directory {
            self.un_rho_lock(owner, LockId::Directory);
        }
        let mut current = self.getbucket(oldpage, &mut buf)?;
        let mut recovered = false;
        let mut recovery = ceh_obs::TraceCtx::NONE;
        let mut hops = 0u64;
        while !current.owns(pk) {
            /* WRONG BUCKET */
            if !recovered {
                recovery = self.trace_begin("find.recover", oldpage.0, 0);
            }
            recovered = true;
            hops += 1;
            self.stats.chain_hops();
            let newpage = current.next;
            if newpage.is_null() {
                // Structurally impossible under the protocols; if it
                // happens the structure is corrupt and silence would be
                // worse than an error.
                self.un_rho_lock(owner, LockId::Page(oldpage));
                if hold_directory {
                    self.un_rho_lock(owner, LockId::Directory);
                }
                return Err(Error::Corrupt(format!(
                    "find({key:?}): wrong bucket {oldpage} has no next link"
                )));
            }
            self.rho_lock(owner, LockId::Page(newpage));
            current = self.getbucket(newpage, &mut buf)?;
            self.un_rho_lock(owner, LockId::Page(oldpage));
            oldpage = newpage;
        }
        if recovered {
            self.stats.wrong_bucket_recoveries();
            self.trace_end(recovery, "find.recover", oldpage.0, hops);
        }
        if hold_directory {
            self.un_rho_lock(owner, LockId::Directory);
        }
        let found = current.search(key);
        self.un_rho_lock(owner, LockId::Page(oldpage));
        match found {
            Some(_) => self.stats.finds_hit(),
            None => self.stats.finds_miss(),
        }
        Ok(found)
    }
}

/// Guard for one operation's `core.*` span: closes the span and
/// restores the previous ambient context when dropped (see
/// [`FileCore::op_span`]).
pub(crate) struct OpSpan<'a> {
    core: &'a FileCore,
    ctx: ceh_obs::TraceCtx,
    event: &'static str,
    _scope: Option<ceh_obs::CtxScope>,
}

impl Drop for OpSpan<'_> {
    fn drop(&mut self) {
        self.core
            .metrics
            .trace_end(self.ctx, "core", self.event, 0, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_initializes_with_one_empty_bucket() {
        let core = FileCore::new(HashFileConfig::tiny()).unwrap();
        assert_eq!(core.dir().depth(), 0);
        assert_eq!(core.dir().depthcount(), 1);
        assert!(core.is_empty());
        let mut buf = core.new_buf();
        let root = core.dir().index(0);
        let b = core.getbucket(root, &mut buf).unwrap();
        assert_eq!(b.localdepth, 0);
        assert_eq!(b.count(), 0);
    }

    #[test]
    fn find_on_empty_file_misses() {
        let core = FileCore::new(HashFileConfig::tiny()).unwrap();
        assert_eq!(core.find_impl(Key(42), false).unwrap(), None);
        assert_eq!(core.find_impl(Key(42), true).unwrap(), None);
        let s = core.stats().snapshot();
        assert_eq!(s.finds_miss, 2);
        assert_eq!(core.locks().total_granted(), 0, "find released everything");
    }

    #[test]
    fn rejects_capacity_beyond_page() {
        let store = PageStore::new_shared(PageStoreConfig {
            page_size: 128,
            ..Default::default()
        });
        let locks = Arc::new(LockManager::default());
        let cfg = HashFileConfig::tiny().with_bucket_capacity(1000);
        assert!(FileCore::with_parts(cfg, store, locks, hash_key).is_err());
    }
}
