//! The naive baseline: one readers-writer lock around the sequential file.
//!
//! This is the comparator every concurrency protocol is implicitly
//! measured against — finds share a read lock, any update excludes
//! everything. The benchmark suite (E1/E2) shows where the paper's
//! protocols buy their complexity back.

use parking_lot::RwLock;

use ceh_sequential::SequentialHashFile;
use ceh_types::{DeleteOutcome, HashFileConfig, InsertOutcome, Key, Result, Value};

use crate::traits::ConcurrentHashFile;

/// A sequential extendible hash file behind one `RwLock`.
pub struct GlobalLockFile {
    file: RwLock<SequentialHashFile>,
}

impl GlobalLockFile {
    /// Create the file.
    pub fn new(cfg: HashFileConfig) -> Result<Self> {
        Ok(GlobalLockFile {
            file: RwLock::new(SequentialHashFile::new(cfg)?),
        })
    }

    /// Run a closure over the inner file (tests: snapshots, invariants).
    pub fn with_inner<T>(&self, f: impl FnOnce(&SequentialHashFile) -> T) -> T {
        f(&self.file.read())
    }
}

impl ConcurrentHashFile for GlobalLockFile {
    fn find(&self, key: Key) -> Result<Option<Value>> {
        self.file.read().find(key)
    }

    fn insert(&self, key: Key, value: Value) -> Result<InsertOutcome> {
        self.file.write().insert(key, value)
    }

    fn delete(&self, key: Key) -> Result<DeleteOutcome> {
        self.file.write().delete(key)
    }

    fn len(&self) -> usize {
        self.file.read().len()
    }

    fn name(&self) -> &'static str {
        "global-lock"
    }

    fn set_io_latency_ns(&self, ns: u64) {
        self.file.read().store().set_io_latency_ns(ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn crud_through_the_trait() {
        let f = GlobalLockFile::new(HashFileConfig::tiny()).unwrap();
        assert_eq!(
            f.insert(Key(5), Value(50)).unwrap(),
            InsertOutcome::Inserted
        );
        assert_eq!(f.find(Key(5)).unwrap(), Some(Value(50)));
        assert_eq!(f.delete(Key(5)).unwrap(), DeleteOutcome::Deleted);
        assert!(f.is_empty());
    }

    #[test]
    fn concurrent_use_is_safe() {
        let f = Arc::new(GlobalLockFile::new(HashFileConfig::tiny()).unwrap());
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let f = Arc::clone(&f);
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        let k = t * 1000 + i;
                        f.insert(Key(k), Value(k)).unwrap();
                        assert_eq!(f.find(Key(k)).unwrap(), Some(Value(k)));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(f.len(), 800);
        f.with_inner(|inner| inner.check_invariants()).unwrap();
    }
}
