//! The shared directory, readable under ρ while writers hold α.
//!
//! ceh-lint: allow-file(relaxed-ordering) — entry words are independent
//! page-id cells published/consumed via the Acquire/Release `depth`
//! handshake described below, or mutated only under the α/ξ directory
//! lock (§2.3); per-cell ordering adds nothing.
//!
//! ρ and α are *compatible*, so the directory must tolerate being read
//! while an inserter doubles it or redirects entries. The paper's argument
//! (§2.3) is that doubling appears atomic "because of the choice to use
//! the least significant bits of the pseudokey": the new top half is
//! copied *before* `depth` is incremented, and every entry a reader can
//! see under the old depth is still valid. In Rust that concurrent
//! read/write pattern requires atomics:
//!
//! * entries are `AtomicU64` page ids in an array pre-sized to
//!   `1 << max_depth` (the paper declares `int directory[1<<maxdepth]`);
//! * `depth` is an `AtomicU32`; doubling stores the copied entries with
//!   `Release` ordering *then* publishes the new depth, and readers load
//!   `depth` with `Acquire` — the exact memory-ordering shape of the
//!   paper's "it is the act of incrementing depth that makes the new
//!   directory entries visible";
//! * individual entry redirects are single atomic stores: a racing reader
//!   sees the old or the new pointer, and both lead to the right bucket
//!   via `next`-link recovery.
//!
//! Mutating methods require the caller to hold the appropriate directory
//! lock (α for double/update, ξ for halve); that is the protocol's
//! responsibility, not this struct's.

use std::sync::atomic::Ordering;

use ceh_locks::shadow::{TrackedAtomicU32, TrackedAtomicU64};
use ceh_types::{Error, PageId, Pseudokey, Result};

/// Atomic u64 array entry. `u64::MAX` (== `PageId::NULL`) marks entries
/// that have never been written (beyond the current depth). Tracked so
/// `ceh check race` observes every directory-entry access.
type Entry = TrackedAtomicU64;

/// The concurrently-readable directory.
pub struct Directory {
    entries: Box<[Entry]>,
    depth: TrackedAtomicU32,
    /// Number of buckets with `localdepth == depth` (§2.2). Mutated only
    /// under α or ξ on the directory; atomic so quiescent checkers can
    /// read it without locks.
    depthcount: TrackedAtomicU32,
    max_depth: u32,
}

impl std::fmt::Debug for Directory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Directory")
            .field("depth", &self.depth())
            .field("depthcount", &self.depthcount())
            .field("max_depth", &self.max_depth)
            .finish()
    }
}

impl Directory {
    /// Hard cap on `max_depth` for the concurrent directory: the entry
    /// array is pre-allocated, and 2^26 entries is already 512 MiB.
    pub const MAX_SUPPORTED_DEPTH: u32 = 26;

    /// Create a depth-0 directory whose single entry points at `root`.
    pub fn new(max_depth: u32, root: PageId) -> Result<Self> {
        if max_depth == 0 || max_depth > Self::MAX_SUPPORTED_DEPTH {
            return Err(Error::Config(format!(
                "concurrent directory max_depth must be in 1..={}, got {max_depth}",
                Self::MAX_SUPPORTED_DEPTH
            )));
        }
        let entries: Box<[Entry]> = (0..1usize << max_depth)
            .map(|_| Entry::new(PageId::NULL.0, "dir.entry"))
            .collect();
        entries[0].store(root.0, Ordering::Relaxed);
        Ok(Directory {
            entries,
            depth: TrackedAtomicU32::new(0, "dir.depth"),
            depthcount: TrackedAtomicU32::new(1, "dir.depthcount"),
            max_depth,
        })
    }

    /// Restore a directory from recovered state (see
    /// [`crate::FileCore::recover`]): `entries` must be exactly
    /// `2^depth` page ids.
    pub fn restore(max_depth: u32, entries: &[PageId], depthcount: u32) -> Result<Self> {
        if entries.is_empty() {
            return Err(Error::Corrupt("restore: empty directory".into()));
        }
        let depth = entries.len().trailing_zeros();
        if entries.len() != 1usize << depth {
            return Err(Error::Corrupt(format!(
                "restore: {} entries is not a power of two",
                entries.len()
            )));
        }
        if depth > max_depth {
            return Err(Error::DirectoryFull { max_depth });
        }
        let dir = Self::new(max_depth, entries[0])?;
        for (i, p) in entries.iter().enumerate() {
            dir.entries[i].store(p.0, Ordering::Relaxed);
        }
        dir.depth.store(depth, Ordering::Release);
        dir.depthcount.store(depthcount, Ordering::Relaxed);
        Ok(dir)
    }

    /// The configured maximum depth.
    pub fn max_depth(&self) -> u32 {
        self.max_depth
    }

    /// Current depth (`Acquire`: pairs with the `Release` publish in
    /// [`Directory::double`]).
    #[inline]
    pub fn depth(&self) -> u32 {
        self.depth.load(Ordering::Acquire)
    }

    /// Current depthcount.
    #[inline]
    pub fn depthcount(&self) -> u32 {
        self.depthcount.load(Ordering::Relaxed)
    }

    /// Adjust depthcount by `delta` (caller holds α or ξ).
    pub fn add_depthcount(&self, delta: i32) {
        if delta >= 0 {
            self.depthcount.fetch_add(delta as u32, Ordering::Relaxed);
        } else {
            self.depthcount
                .fetch_sub((-delta) as u32, Ordering::Relaxed);
        }
    }

    /// `indexdirectory(bits)`: the entry for the given low bits.
    #[inline]
    pub fn index(&self, bits: u64) -> PageId {
        PageId(self.entries[bits as usize].load(Ordering::Acquire))
    }

    /// Read depth and index in one step: `indexdirectory(pseudokey &
    /// mask(depth))`, the opening move of every figure.
    #[inline]
    pub fn lookup(&self, pk: Pseudokey) -> (u32, PageId) {
        let d = self.depth();
        (d, self.index(pk.low_bits(d)))
    }

    /// `doubledirectory()`: copy the bottom half into the top half, then
    /// publish the new depth. Caller holds α (Solution 1 holds it from
    /// the start; Solution 2 converts its ρ). Zeroes `depthcount` (§2.2).
    ///
    /// Readers may run concurrently under ρ: they either see the old
    /// depth (old entries, all valid) or the new depth (entries published
    /// by the `Release`/`Acquire` pair).
    pub fn double(&self) -> Result<()> {
        let d = self.depth.load(Ordering::Relaxed); // only writers race us, and α excludes them
        if d >= self.max_depth {
            return Err(Error::DirectoryFull {
                max_depth: self.max_depth,
            });
        }
        let half = 1usize << d;
        for i in 0..half {
            let v = self.entries[i].load(Ordering::Relaxed);
            self.entries[i + half].store(v, Ordering::Relaxed);
        }
        // "It is the act of incrementing depth that makes the new
        // directory entries visible."
        self.depth.store(d + 1, Ordering::Release);
        self.depthcount.store(0, Ordering::Relaxed);
        Ok(())
    }

    /// `halvedirectory()`: drop the top half (depth decrement only — the
    /// discarded entries stay in the array, invisible beyond the new
    /// depth) and recompute `depthcount` by "comparing corresponding
    /// entries in the top and bottom halves for pointers which differ"
    /// (§2.2). Cascades while the recount is zero. Caller holds ξ — no
    /// concurrent access of any kind.
    pub fn halve(&self) {
        loop {
            let d = self.depth.load(Ordering::Relaxed);
            debug_assert!(d >= 1, "halving a depth-0 directory");
            // The halves need not be bit-identical here: Figure 7/9 halve
            // *instead of* redirecting the just-merged pair's entries, so
            // the top-half entry for that pair still points at the
            // garbage bucket. Merges always survive on the "0" partner
            // (bottom half), which is exactly why discarding the top half
            // is correct. Every *other* pair is identical because
            // depthcount == 0.
            self.depth.store(d - 1, Ordering::Release);
            let new_d = d - 1;
            if new_d == 0 {
                self.depthcount.store(1, Ordering::Relaxed);
                return;
            }
            let quarter = 1usize << (new_d - 1);
            let mut count = 0u32;
            for i in 0..quarter {
                if self.entries[i].load(Ordering::Relaxed)
                    != self.entries[i + quarter].load(Ordering::Relaxed)
                {
                    count += 2;
                }
            }
            self.depthcount.store(count, Ordering::Relaxed);
            if count != 0 || new_d <= 1 {
                return;
            }
        }
    }

    /// `updatedirectory(page, d, pseudokey)` with the semantics both
    /// Figure 6 and Figure 7 need: redirect the **"1"-partner group at
    /// depth `d`** — every entry whose low `d` bits are
    /// `(pseudokey's low d-1 bits) | partner_bit(d)` — to `page`.
    ///
    /// Splits create the new bucket on the "1" side (its entries must
    /// point at `newpage`); merges survive on the "0" side (the
    /// tombstone's "1"-side entries must point at `merged`). One
    /// operation serves both, which is why the paper can pass a single
    /// `(page, localdepth, pseudokey)` triple from either call site.
    ///
    /// Caller holds α; concurrent ρ readers see each entry flip
    /// atomically and recover through `next` links if they read the old
    /// value.
    pub fn update_one_side(&self, page: PageId, d: u32, pk: Pseudokey) {
        debug_assert!(d >= 1);
        let depth = self.depth.load(Ordering::Relaxed); // stable under our α
        let pattern = pk.low_bits(d - 1) | ceh_types::partner_bit(d);
        let step = 1u64 << d;
        let size = 1u64 << depth;
        let mut i = pattern;
        while i < size {
            self.entries[i as usize].store(page.0, Ordering::Release);
            i += step;
        }
    }

    /// Snapshot the live entries (quiescent use: invariant checker,
    /// figure rendering).
    pub fn entries_snapshot(&self) -> Vec<PageId> {
        let d = self.depth();
        (0..1usize << d)
            .map(|i| PageId(self.entries[i].load(Ordering::Relaxed)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_directory_is_depth_zero() {
        let d = Directory::new(4, PageId(7)).unwrap();
        assert_eq!(d.depth(), 0);
        assert_eq!(d.depthcount(), 1);
        assert_eq!(d.index(0), PageId(7));
        assert_eq!(d.entries_snapshot(), vec![PageId(7)]);
    }

    #[test]
    fn rejects_bad_max_depth() {
        assert!(Directory::new(0, PageId(0)).is_err());
        assert!(Directory::new(27, PageId(0)).is_err());
    }

    #[test]
    fn double_copies_bottom_half() {
        let d = Directory::new(4, PageId(1)).unwrap();
        d.double().unwrap();
        assert_eq!(d.depth(), 1);
        assert_eq!(d.entries_snapshot(), vec![PageId(1), PageId(1)]);
        assert_eq!(d.depthcount(), 0, "doubling zeroes depthcount");
    }

    #[test]
    fn double_refuses_past_max() {
        let d = Directory::new(2, PageId(1)).unwrap();
        d.double().unwrap();
        d.double().unwrap();
        assert_eq!(
            d.double().unwrap_err(),
            Error::DirectoryFull { max_depth: 2 }
        );
    }

    #[test]
    fn update_one_side_redirects_the_partner_group() {
        let d = Directory::new(4, PageId(1)).unwrap();
        d.double().unwrap();
        d.double().unwrap(); // depth 2: entries 00,01,10,11 all -> p1
                             // Split the bucket holding …0 (localdepth 1): the new "1" partner
                             // (pattern 1 at depth 1) goes to p2.
        d.update_one_side(PageId(2), 1, Pseudokey(0b0));
        assert_eq!(
            d.entries_snapshot(),
            vec![PageId(1), PageId(2), PageId(1), PageId(2)],
            "entries 01 and 11 redirected"
        );
        // Now split p2 (localdepth 2, commonbits 01): new "1" partner
        // (pattern 11 at depth 2) goes to p3.
        d.update_one_side(PageId(3), 2, Pseudokey(0b01));
        assert_eq!(
            d.entries_snapshot(),
            vec![PageId(1), PageId(2), PageId(1), PageId(3)]
        );
    }

    #[test]
    fn halve_recounts_depthcount() {
        let d = Directory::new(4, PageId(1)).unwrap();
        d.double().unwrap(); // depth 1
        d.update_one_side(PageId(2), 1, Pseudokey(0)); // [p1, p2]
        d.add_depthcount(2); // both at depth 1
        d.double().unwrap(); // depth 2: [p1, p2, p1, p2], depthcount 0
                             // Merge nothing — just halve (legal: halves are identical).
        d.halve();
        assert_eq!(d.depth(), 1);
        assert_eq!(d.entries_snapshot(), vec![PageId(1), PageId(2)]);
        assert_eq!(d.depthcount(), 2, "recount finds both depth-1 buckets");
    }

    #[test]
    fn lookup_reads_depth_and_entry_together() {
        let d = Directory::new(4, PageId(1)).unwrap();
        d.double().unwrap();
        d.update_one_side(PageId(2), 1, Pseudokey(0));
        assert_eq!(d.lookup(Pseudokey(0b10)), (1, PageId(1)));
        assert_eq!(d.lookup(Pseudokey(0b11)), (1, PageId(2)));
    }

    #[test]
    fn concurrent_readers_during_doubling_see_valid_entries() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let d = Arc::new(Directory::new(12, PageId(1)).unwrap());
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let d = Arc::clone(&d);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut checks = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let (depth, page) = d.lookup(Pseudokey(0xABCD_EF01));
                        assert!(
                            !page.is_null(),
                            "reader saw unpublished entry at depth {depth}"
                        );
                        checks += 1;
                    }
                    checks
                })
            })
            .collect();
        for _ in 0..12 {
            d.double().unwrap();
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            assert!(r.join().unwrap() > 0);
        }
    }
}
