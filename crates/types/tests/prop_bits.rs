//! Property tests for the bit algebra every implementation relies on.

use ceh_types::bits::{are_partners, mask, partner_bit, partner_commonbits};
use ceh_types::{hash_key, Key, Pseudokey};
use proptest::prelude::*;

proptest! {
    /// mask(d) has exactly d low bits set.
    #[test]
    fn mask_popcount(d in 0u32..=64) {
        prop_assert_eq!(mask(d).count_ones(), d);
        // And it is a suffix mask: adding one gives a power of two (or 0 at 64).
        prop_assert_eq!(mask(d).wrapping_add(1).count_ones() <= 1, true);
    }

    /// Masks are monotone: deeper masks contain shallower ones.
    #[test]
    fn mask_monotone(d in 0u32..64) {
        prop_assert_eq!(mask(d) & mask(d + 1), mask(d));
    }

    /// A pseudokey always matches exactly one of a bucket and its partner
    /// when it matches their shared prefix.
    #[test]
    fn pseudokey_matches_exactly_one_partner(pk in any::<u64>(), d in 1u32..=32) {
        let pk = Pseudokey(pk);
        let cb = pk.0 & mask(d); // the bucket pk belongs to at localdepth d
        let partner = partner_commonbits(cb, d);
        prop_assert!(pk.matches(cb, d));
        prop_assert!(!pk.matches(partner, d));
    }

    /// Partnering is an involution and satisfies the paper's definition.
    #[test]
    fn partnering_involution(cb in any::<u64>(), d in 1u32..=64) {
        let cb = cb & mask(d);
        let p = partner_commonbits(cb, d);
        prop_assert_eq!(partner_commonbits(p, d), cb);
        prop_assert!(are_partners(cb, p, d));
        // They differ only at the partner bit.
        prop_assert_eq!(cb ^ p, partner_bit(d));
    }

    /// in_first_of_pair agrees with commonbits arithmetic: the "0" partner
    /// is the one whose partner bit is clear.
    #[test]
    fn first_of_pair_agrees_with_partner_bit(pk in any::<u64>(), d in 1u32..=64) {
        let pk = Pseudokey(pk);
        prop_assert_eq!(pk.in_first_of_pair(d), pk.0 & partner_bit(d) == 0);
    }

    /// The hash is a function (deterministic) and splits keys that differ.
    /// (splitmix64's finalizer is bijective, so distinct keys give distinct
    /// pseudokeys — stronger than hash-quality, but worth pinning since
    /// bucket search uses keys, not pseudokeys, for equality.)
    #[test]
    fn hash_injective_on_samples(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(hash_key(Key(a)) == hash_key(Key(b)), a == b);
    }
}
