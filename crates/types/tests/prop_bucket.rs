//! Property tests for the bucket page codec.

use ceh_types::bucket::Bucket;
use ceh_types::{ManagerId, PageId, Record};
use proptest::prelude::*;

fn arb_bucket(max_records: usize) -> impl Strategy<Value = Bucket> {
    (
        0u32..=32,
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u32>(),
        any::<u32>(),
        any::<u64>(),
        proptest::collection::vec((any::<u64>(), any::<u64>()), 0..=max_records),
    )
        .prop_map(|(ld, cb_seed, next, prev, nm, pm, version, recs)| {
            let mut b = Bucket::new(ld, cb_seed & ceh_types::mask(ld));
            b.next = PageId(next);
            b.prev = PageId(prev);
            b.next_mgr = ManagerId(nm);
            b.prev_mgr = ManagerId(pm);
            b.version = version;
            // Deduplicate keys: buckets never hold duplicates.
            let mut seen = std::collections::HashSet::new();
            for (k, v) in recs {
                if seen.insert(k) {
                    b.records.push(Record::new(k, v));
                }
            }
            b
        })
}

proptest! {
    /// Every bucket the system can produce survives the page codec intact.
    #[test]
    fn roundtrip(b in arb_bucket(20)) {
        let mut page = vec![0u8; Bucket::page_size_for(20)];
        b.encode(&mut page).unwrap();
        prop_assert_eq!(Bucket::decode(&page).unwrap(), b);
    }

    /// Decoding arbitrary bytes either fails cleanly or yields a bucket
    /// that re-encodes (no panics, no nonsense states).
    #[test]
    fn decode_is_total(bytes in proptest::collection::vec(any::<u8>(), 56..512)) {
        // Clean decode failure is fine; a successful decode must yield a
        // bucket that fits the page it came from.
        if let Ok(b) = Bucket::decode(&bytes) {
            let mut page = vec![0u8; bytes.len()];
            b.encode(&mut page).unwrap();
        }
    }

    /// add/remove/search behave like a set keyed by Key.
    #[test]
    fn bucket_is_a_keyed_set(ops in proptest::collection::vec((any::<u8>(), 0u64..16), 1..100)) {
        use std::collections::HashMap;
        let mut model: HashMap<u64, u64> = HashMap::new();
        let mut b = Bucket::new(0, 0);
        for (op, k) in ops {
            match op % 3 {
                0 => {
                    if let std::collections::hash_map::Entry::Vacant(e) = model.entry(k) {
                        e.insert(k * 10);
                        b.add(Record::new(k, k * 10));
                    }
                }
                1 => {
                    let removed = b.remove(ceh_types::Key(k));
                    prop_assert_eq!(removed, model.remove(&k).is_some());
                }
                _ => {
                    let got = b.search(ceh_types::Key(k)).map(|v| v.0);
                    prop_assert_eq!(got, model.get(&k).copied());
                }
            }
            prop_assert_eq!(b.count(), model.len());
        }
    }
}
