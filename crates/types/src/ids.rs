//! Identifiers for pages and distributed managers.

use core::fmt;

use serde::{Deserialize, Serialize};

/// The address of a bucket's disk page within a page store.
///
/// The paper's listings pass around `int` disk page addresses
/// (`oldpage`, `newpage`, `merged`, `garbage`); this is their typed
/// equivalent. [`PageId::NULL`] plays the role of a nil `next` pointer.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PageId(pub u64);

impl PageId {
    /// The nil page address (end of a `next` chain, unset `prev`).
    pub const NULL: PageId = PageId(u64::MAX);

    /// Is this the nil address?
    #[inline]
    pub const fn is_null(self) -> bool {
        self.0 == u64::MAX
    }
}

impl fmt::Debug for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "PageId(NULL)")
        } else {
            write!(f, "PageId({})", self.0)
        }
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "∅")
        } else {
            write!(f, "p{}", self.0)
        }
    }
}

/// Identifies a manager process in the distributed solution (§3).
///
/// "Each link represents a pair consisting of a long-lived identifier for a
/// manager port and a bucket address that is meaningful to that manager."
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ManagerId(pub u32);

impl ManagerId {
    /// Sentinel for "no manager" (unset `nextmgr`/`prevmgr`).
    pub const NONE: ManagerId = ManagerId(u32::MAX);

    /// Is this the sentinel?
    #[inline]
    pub const fn is_none(self) -> bool {
        self.0 == u32::MAX
    }
}

impl fmt::Display for ManagerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mgr{}", self.0)
    }
}

/// A (manager, page) pair: the distributed structure's full bucket link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BucketLink {
    /// Which bucket manager owns the page.
    pub manager: ManagerId,
    /// The page address within that manager's store.
    pub page: PageId,
}

impl BucketLink {
    /// The nil link.
    pub const NULL: BucketLink = BucketLink {
        manager: ManagerId::NONE,
        page: PageId::NULL,
    };

    /// Is this the nil link?
    #[inline]
    pub const fn is_null(self) -> bool {
        self.page.is_null()
    }

    /// Construct a link.
    #[inline]
    pub const fn new(manager: ManagerId, page: PageId) -> Self {
        BucketLink { manager, page }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_page_id_roundtrips() {
        assert!(PageId::NULL.is_null());
        assert!(!PageId(0).is_null());
        assert_eq!(format!("{}", PageId(3)), "p3");
        assert_eq!(format!("{}", PageId::NULL), "∅");
    }

    #[test]
    fn null_bucket_link() {
        assert!(BucketLink::NULL.is_null());
        assert!(!BucketLink::new(ManagerId(0), PageId(1)).is_null());
    }
}
