//! The bucket: contents of one disk page.
//!
//! Figure 3 (centralized concurrent) gives a bucket `localdepth`,
//! `commonbits`, `count`, `next`, and the records; Figure 10 (distributed)
//! adds `prev` links, manager ids for `next`/`prev`, and a `version`
//! number. One struct carries all of them — the sequential and centralized
//! solutions simply leave the distributed fields at their sentinels, which
//! keeps a single page codec for the whole workspace.
//!
//! Serialization is a fixed little-endian layout so a bucket is exactly one
//! page (see [`Bucket::capacity_for`]), and decoding is defensive: a page
//! of garbage (e.g. poison bytes from a freed page) fails with
//! [`Error::Corrupt`] rather than yielding a bucket.

use crate::bits::mask;
use crate::error::{Error, Result};
use crate::ids::{ManagerId, PageId};
use crate::key::{Key, Pseudokey, Record, Value};

/// Magic tag at the start of every encoded bucket page.
const MAGIC: u32 = 0xE111_5EC4;

/// Byte size of the encoded bucket header.
pub const BUCKET_HEADER_BYTES: usize = 56;

/// Byte size of one encoded record.
pub const RECORD_BYTES: usize = 16;

/// The `commonbits` sentinel marking a deleted bucket.
///
/// Solution 2 "mark[s] the old partner as 'deleted' (we use the commonbits
/// field for this)" (§2.4). Real commonbits are at most `mask(max_depth)`
/// and `max_depth ≤ 32`, so `u64::MAX` can never be a legitimate value.
pub const DELETED: u64 = u64::MAX;

/// A bucket, as held in a process's private buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bucket {
    /// Number of low pseudokey bits shared by every record here.
    pub localdepth: u32,
    /// The shared low-bit pattern itself (or [`DELETED`]).
    pub commonbits: u64,
    /// Link to the bucket that split off from this one most recently
    /// (Figure 3); the recovery path for concurrent searches.
    pub next: PageId,
    /// Manager owning `next` (distributed only; [`ManagerId::NONE`] otherwise).
    pub next_mgr: ManagerId,
    /// Link to the bucket this one originally split off from (Figure 10);
    /// locates the "0" partner without consulting the directory.
    pub prev: PageId,
    /// Manager owning `prev` (distributed only).
    pub prev_mgr: ManagerId,
    /// Increases with each update that causes a directory update (§3);
    /// orders asynchronous directory-copy updates.
    pub version: u64,
    /// The records; `count` in the paper is `records.len()` here.
    pub records: Vec<Record>,
}

impl Bucket {
    /// An empty bucket with the given identity.
    pub fn new(localdepth: u32, commonbits: u64) -> Self {
        debug_assert_eq!(
            commonbits & !mask(localdepth),
            0,
            "commonbits wider than localdepth"
        );
        Bucket {
            localdepth,
            commonbits,
            next: PageId::NULL,
            next_mgr: ManagerId::NONE,
            prev: PageId::NULL,
            prev_mgr: ManagerId::NONE,
            version: 0,
            records: Vec::new(),
        }
    }

    /// How many records fit in a page of `page_size` bytes.
    pub const fn capacity_for(page_size: usize) -> usize {
        (page_size - BUCKET_HEADER_BYTES) / RECORD_BYTES
    }

    /// The page size needed to hold `capacity` records.
    pub const fn page_size_for(capacity: usize) -> usize {
        BUCKET_HEADER_BYTES + capacity * RECORD_BYTES
    }

    /// Number of records (the paper's `count` field).
    #[inline]
    pub fn count(&self) -> usize {
        self.records.len()
    }

    /// Has this bucket been marked deleted (Solution 2 / distributed)?
    #[inline]
    pub fn is_deleted(&self) -> bool {
        self.commonbits == DELETED
    }

    /// Mark the bucket deleted (§2.4: "we use the commonbits field for
    /// this").
    pub fn mark_deleted(&mut self) {
        self.commonbits = DELETED;
    }

    /// Does `pk` belong in this bucket? The wrong-bucket test:
    /// `(mask(localdepth) & pseudokey) == commonbits`. Always false for a
    /// deleted bucket, which is exactly how Solution 2 routes searches
    /// away from merged buckets and onto their `next` recovery path.
    #[inline]
    pub fn owns(&self, pk: Pseudokey) -> bool {
        !self.is_deleted() && pk.matches(self.commonbits, self.localdepth)
    }

    /// The §2.1 *alternative* wrong-bucket test: instead of storing a
    /// `commonbits` field, "one could reapply the hash function to any
    /// key stored in the bucket and use this for comparison with the
    /// target pseudokey as long as the possibility of an empty bucket is
    /// taken care of". An empty bucket gives no evidence either way; the
    /// conservative answer is "wrong bucket" (forcing a `next` chase),
    /// which is safe because recovery terminates at the right bucket
    /// regardless. The A2 ablation measures what this saves (8 bytes per
    /// bucket) against what it costs (a hash per hop + spurious chases
    /// through empty buckets).
    pub fn owns_by_rehash(&self, pk: Pseudokey, hasher: fn(Key) -> Pseudokey) -> bool {
        if self.is_deleted() {
            return false;
        }
        match self.records.first() {
            Some(r) => {
                let resident = hasher(r.key);
                resident.low_bits(self.localdepth) == pk.low_bits(self.localdepth)
            }
            None => false, // empty bucket: cannot prove ownership
        }
    }

    /// The paper's `search(current, z)`: linear scan for the key.
    pub fn search(&self, key: Key) -> Option<Value> {
        self.records.iter().find(|r| r.key == key).map(|r| r.value)
    }

    /// The paper's `add(current, z)`. Caller checks fullness first, as the
    /// listings do; adding past capacity is a protocol bug, so this only
    /// debug-asserts against a caller-supplied capacity in the codec.
    pub fn add(&mut self, record: Record) {
        debug_assert!(self.search(record.key).is_none(), "add of a present key");
        self.records.push(record);
    }

    /// The paper's `remove(z, current)`: delete by key, reporting whether
    /// anything was removed.
    pub fn remove(&mut self, key: Key) -> bool {
        match self.records.iter().position(|r| r.key == key) {
            Some(i) => {
                self.records.swap_remove(i);
                true
            }
            None => false,
        }
    }

    /// The paper's `split(current, half1, half2, z, newpage)`.
    ///
    /// Distributes this bucket's records between two buckets of
    /// `localdepth + 1` by the new pseudokey bit, threads the `next`
    /// chain — "the next link of the original bucket is reassigned to
    /// point to the newly created bucket. The new bucket gets the
    /// original bucket's old next pointer" (§2.1, Figure 4) — sets the
    /// new half's `prev` to the splitting bucket (Figure 10), and tries
    /// to place the new record in its half. Returns `(half1, half2,
    /// done)`; `done` is false when the record's half had no room (the
    /// caller retries, possibly splitting again: `if (!done) insert(z)`).
    ///
    /// `oldpage`/`old_mgr` identify the splitting bucket (for the new
    /// half's `prev` link); `newpage`/`new_mgr` the freshly allocated one.
    #[allow(clippy::too_many_arguments)]
    pub fn split(
        &self,
        key: Key,
        value: Value,
        capacity: usize,
        hasher: fn(Key) -> Pseudokey,
        oldpage: PageId,
        old_mgr: ManagerId,
        newpage: PageId,
        new_mgr: ManagerId,
    ) -> (Bucket, Bucket, bool) {
        debug_assert!(!self.is_deleted());
        let d = self.localdepth + 1;
        let bit = crate::bits::partner_bit(d);
        let mut half1 = Bucket::new(d, self.commonbits);
        let mut half2 = Bucket::new(d, self.commonbits | bit);
        for r in &self.records {
            if hasher(r.key).0 & bit == 0 {
                half1.records.push(*r);
            } else {
                half2.records.push(*r);
            }
        }
        half1.next = newpage;
        half1.next_mgr = new_mgr;
        half2.next = self.next;
        half2.next_mgr = self.next_mgr;
        half1.prev = self.prev;
        half1.prev_mgr = self.prev_mgr;
        half2.prev = oldpage;
        half2.prev_mgr = old_mgr;
        // "Each bucket contains a version number that increases with each
        // update that causes a directory update" (§3) — a split is one.
        half1.version = self.version + 1;
        half2.version = self.version + 1;

        let pk = hasher(key);
        let target = if pk.0 & bit == 0 {
            &mut half1
        } else {
            &mut half2
        };
        let done = if target.records.len() < capacity {
            target.add(Record { key, value });
            true
        } else {
            false
        };
        (half1, half2, done)
    }

    /// Encode into a page buffer. Fails if the records overflow the page.
    pub fn encode(&self, page: &mut [u8]) -> Result<()> {
        if self.records.len() > Self::capacity_for(page.len()) {
            return Err(Error::Corrupt(format!(
                "bucket with {} records does not fit a {}-byte page",
                self.records.len(),
                page.len()
            )));
        }
        page[0..4].copy_from_slice(&MAGIC.to_le_bytes());
        page[4..8].copy_from_slice(&self.localdepth.to_le_bytes());
        page[8..16].copy_from_slice(&self.commonbits.to_le_bytes());
        page[16..20].copy_from_slice(&(self.records.len() as u32).to_le_bytes());
        page[20..24].copy_from_slice(&self.next_mgr.0.to_le_bytes());
        page[24..32].copy_from_slice(&self.next.0.to_le_bytes());
        page[32..36].copy_from_slice(&self.prev_mgr.0.to_le_bytes());
        page[36..40].copy_from_slice(&0u32.to_le_bytes()); // reserved
        page[40..48].copy_from_slice(&self.prev.0.to_le_bytes());
        page[48..56].copy_from_slice(&self.version.to_le_bytes());
        let mut off = BUCKET_HEADER_BYTES;
        for r in &self.records {
            page[off..off + 8].copy_from_slice(&r.key.0.to_le_bytes());
            page[off + 8..off + 16].copy_from_slice(&r.value.0.to_le_bytes());
            off += RECORD_BYTES;
        }
        Ok(())
    }

    /// Decode from a page buffer, validating the header.
    pub fn decode(page: &[u8]) -> Result<Bucket> {
        if page.len() < BUCKET_HEADER_BYTES {
            return Err(Error::Corrupt(format!(
                "page of {} bytes is too small",
                page.len()
            )));
        }
        let magic = u32::from_le_bytes(page[0..4].try_into().expect("slice len"));
        if magic != MAGIC {
            return Err(Error::Corrupt(format!("bad magic {magic:#010x}")));
        }
        let localdepth = u32::from_le_bytes(page[4..8].try_into().expect("slice len"));
        let commonbits = u64::from_le_bytes(page[8..16].try_into().expect("slice len"));
        let count = u32::from_le_bytes(page[16..20].try_into().expect("slice len")) as usize;
        if localdepth > 64 {
            return Err(Error::Corrupt(format!(
                "localdepth {localdepth} out of range"
            )));
        }
        if count > Self::capacity_for(page.len()) {
            return Err(Error::Corrupt(format!(
                "count {count} exceeds page capacity"
            )));
        }
        let next_mgr = ManagerId(u32::from_le_bytes(
            page[20..24].try_into().expect("slice len"),
        ));
        let next = PageId(u64::from_le_bytes(
            page[24..32].try_into().expect("slice len"),
        ));
        let prev_mgr = ManagerId(u32::from_le_bytes(
            page[32..36].try_into().expect("slice len"),
        ));
        let prev = PageId(u64::from_le_bytes(
            page[40..48].try_into().expect("slice len"),
        ));
        let version = u64::from_le_bytes(page[48..56].try_into().expect("slice len"));
        let mut records = Vec::with_capacity(count);
        let mut off = BUCKET_HEADER_BYTES;
        for _ in 0..count {
            let key = u64::from_le_bytes(page[off..off + 8].try_into().expect("slice len"));
            let value = u64::from_le_bytes(page[off + 8..off + 16].try_into().expect("slice len"));
            records.push(Record {
                key: Key(key),
                value: Value(value),
            });
            off += RECORD_BYTES;
        }
        Ok(Bucket {
            localdepth,
            commonbits,
            next,
            next_mgr,
            prev,
            prev_mgr,
            version,
            records,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Bucket {
        let mut b = Bucket::new(3, 0b101);
        b.next = PageId(9);
        b.prev = PageId(4);
        b.next_mgr = ManagerId(2);
        b.prev_mgr = ManagerId(1);
        b.version = 7;
        b.add(Record::new(100, 1));
        b.add(Record::new(200, 2));
        b
    }

    #[test]
    fn encode_decode_roundtrip() {
        let b = sample();
        let mut page = vec![0u8; 256];
        b.encode(&mut page).unwrap();
        assert_eq!(Bucket::decode(&page).unwrap(), b);
    }

    #[test]
    fn capacity_math() {
        assert_eq!(Bucket::capacity_for(4096), (4096 - 56) / 16);
        assert_eq!(Bucket::page_size_for(2), 56 + 32);
        // page_size_for and capacity_for are inverses (up to slack).
        for cap in [1usize, 2, 8, 250] {
            assert_eq!(Bucket::capacity_for(Bucket::page_size_for(cap)), cap);
        }
    }

    #[test]
    fn overflow_encode_fails() {
        let mut b = Bucket::new(0, 0);
        for i in 0..10 {
            b.add(Record::new(i, i));
        }
        let mut page = vec![0u8; Bucket::page_size_for(9)];
        assert!(matches!(b.encode(&mut page), Err(Error::Corrupt(_))));
    }

    #[test]
    fn poison_page_fails_decode() {
        let page = vec![0xDEu8; 256];
        assert!(matches!(Bucket::decode(&page), Err(Error::Corrupt(_))));
    }

    #[test]
    fn zero_page_fails_decode() {
        let page = vec![0u8; 256];
        assert!(matches!(Bucket::decode(&page), Err(Error::Corrupt(_))));
    }

    #[test]
    fn search_add_remove() {
        let mut b = sample();
        assert_eq!(b.search(Key(100)), Some(Value(1)));
        assert_eq!(b.search(Key(999)), None);
        assert!(b.remove(Key(100)));
        assert!(!b.remove(Key(100)));
        assert_eq!(b.count(), 1);
    }

    #[test]
    fn deleted_marker() {
        let mut b = sample();
        assert!(!b.is_deleted());
        assert!(b.owns(Pseudokey(0b10101)));
        b.mark_deleted();
        assert!(b.is_deleted());
        assert!(!b.owns(Pseudokey(0b10101)), "deleted bucket owns nothing");
        // Deleted-ness survives the codec.
        let mut page = vec![0u8; 256];
        b.encode(&mut page).unwrap();
        assert!(Bucket::decode(&page).unwrap().is_deleted());
    }

    #[test]
    fn owns_by_rehash_agrees_with_commonbits_when_nonempty() {
        use crate::key::hash_key;
        let key = Key(42);
        let pk = hash_key(key);
        let ld = 5;
        let mut b = Bucket::new(ld, pk.low_bits(ld));
        b.add(Record {
            key,
            value: Value(0),
        });
        // For any probe pseudokey, the two tests agree while the bucket
        // holds a resident witness.
        for probe in [
            pk,
            Pseudokey(pk.0 ^ 1),
            Pseudokey(0),
            Pseudokey(u64::MAX - 1),
        ] {
            assert_eq!(
                b.owns(probe),
                b.owns_by_rehash(probe, hash_key),
                "probe {probe:?}"
            );
        }
        // Empty bucket: rehash test is conservatively negative.
        let empty = Bucket::new(ld, pk.low_bits(ld));
        assert!(empty.owns(pk));
        assert!(!empty.owns_by_rehash(pk, hash_key));
    }

    #[test]
    fn owns_respects_localdepth() {
        let b = Bucket::new(2, 0b01);
        assert!(b.owns(Pseudokey(0b1101)));
        assert!(!b.owns(Pseudokey(0b1111)));
        assert!(!b.owns(Pseudokey(0b1100)));
    }
}
