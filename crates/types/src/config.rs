//! Configuration shared by all hash-file implementations.

use serde::{Deserialize, Serialize};

/// Tuning parameters for an extendible hash file.
///
/// The paper fixes two structural constants: `numentries` (bucket capacity,
/// "maximum number of keys per bucket") and `maxdepth` (the directory is
/// declared `int directory[1<<maxdepth]`). Everything else here controls the
/// simulation substrate, not the algorithms.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HashFileConfig {
    /// Maximum number of records per bucket (the paper's `numentries`).
    ///
    /// Small values force frequent splits/merges and are what the
    /// concurrency torture tests use; realistic values are derived from the
    /// page size (a 4 KiB page holds ~250 records).
    pub bucket_capacity: usize,
    /// Maximum directory depth; the directory array is pre-sized to
    /// `1 << max_depth` entries, matching `int directory[1<<maxdepth]`.
    pub max_depth: u32,
    /// Merge policy: a delete attempts a merge when, after removing the
    /// key, the bucket would hold at most this many records. The paper's
    /// "simplest interpretation" of *too empty* is that the only record in
    /// the bucket is the one being deleted — i.e. `merge_threshold == 0`
    /// records remaining. Larger thresholds are an extension (see
    /// DESIGN.md) exercised by the ablation benches.
    pub merge_threshold: usize,
    /// Simulated per-page-I/O latency in nanoseconds (0 = none). Applied by
    /// the page store on each `getbucket`/`putbucket` to approximate the
    /// paper's disk-resident buckets.
    pub io_latency_ns: u64,
}

impl Default for HashFileConfig {
    fn default() -> Self {
        HashFileConfig {
            bucket_capacity: 64,
            max_depth: 20,
            merge_threshold: 0,
            io_latency_ns: 0,
        }
    }
}

impl HashFileConfig {
    /// A configuration with tiny buckets and a shallow directory, used by
    /// tests that need to force splits, merges, doubling and halving with
    /// few keys (like the paper's Figure 2 walk-through).
    pub fn tiny() -> Self {
        // max_depth 16, not smaller: with capacity-2 buckets even a few
        // hundred hashed keys are likely to contain three sharing 10+ low
        // pseudokey bits (birthday bound), which legitimately needs a deep
        // directory.
        HashFileConfig {
            bucket_capacity: 2,
            max_depth: 16,
            merge_threshold: 0,
            io_latency_ns: 0,
        }
    }

    /// A configuration sized like a real index page (4 KiB pages).
    pub fn realistic() -> Self {
        HashFileConfig {
            bucket_capacity: 250,
            max_depth: 22,
            merge_threshold: 0,
            io_latency_ns: 0,
        }
    }

    /// Set the bucket capacity (builder style).
    pub fn with_bucket_capacity(mut self, cap: usize) -> Self {
        self.bucket_capacity = cap;
        self
    }

    /// Set the maximum directory depth (builder style).
    pub fn with_max_depth(mut self, d: u32) -> Self {
        self.max_depth = d;
        self
    }

    /// Set the merge threshold (builder style).
    pub fn with_merge_threshold(mut self, t: usize) -> Self {
        self.merge_threshold = t;
        self
    }

    /// Set the simulated I/O latency (builder style).
    pub fn with_io_latency_ns(mut self, ns: u64) -> Self {
        self.io_latency_ns = ns;
        self
    }

    /// Validate the configuration, returning a descriptive error for
    /// nonsensical combinations.
    pub fn validate(&self) -> crate::Result<()> {
        if self.bucket_capacity == 0 {
            return Err(crate::Error::Config(
                "bucket_capacity must be at least 1".into(),
            ));
        }
        if self.max_depth == 0 || self.max_depth > 32 {
            return Err(crate::Error::Config(format!(
                "max_depth must be in 1..=32, got {}",
                self.max_depth
            )));
        }
        if self.merge_threshold >= self.bucket_capacity {
            return Err(crate::Error::Config(format!(
                "merge_threshold ({}) must be below bucket_capacity ({})",
                self.merge_threshold, self.bucket_capacity
            )));
        }
        Ok(())
    }
}

/// Client-side retry tuning for the distributed hash file.
///
/// A request that gets no reply within `timeout` is retried — against
/// the *next* directory manager (round-robin failover) — with
/// exponential backoff between attempts: the k-th retry waits
/// `min(base_backoff << k, max_backoff)`. Retries reuse the original
/// request id, so a directory manager that already executed the lost
/// reply's operation returns the recorded outcome instead of applying
/// it twice.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts (first try included). At least 1.
    pub attempts: u32,
    /// Per-attempt reply timeout in milliseconds.
    pub timeout_ms: u64,
    /// Backoff before the first retry, in milliseconds (doubles each
    /// retry).
    pub base_backoff_ms: u64,
    /// Upper bound on a single backoff, in milliseconds.
    pub max_backoff_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 1,
            timeout_ms: 60_000,
            base_backoff_ms: 1,
            max_backoff_ms: 100,
        }
    }
}

impl RetryPolicy {
    /// A policy suited to lossy-network runs: several attempts, short
    /// per-attempt timeouts, millisecond backoff.
    pub fn aggressive() -> Self {
        RetryPolicy {
            attempts: 10,
            timeout_ms: 500,
            base_backoff_ms: 1,
            max_backoff_ms: 50,
        }
    }

    /// Set the attempt budget (builder style).
    pub fn with_attempts(mut self, attempts: u32) -> Self {
        self.attempts = attempts;
        self
    }

    /// Set the per-attempt timeout (builder style).
    pub fn with_timeout_ms(mut self, ms: u64) -> Self {
        self.timeout_ms = ms;
        self
    }

    /// Backoff before the k-th retry (k counted from 0), capped.
    pub fn backoff_ms(&self, retry: u32) -> u64 {
        self.base_backoff_ms
            .saturating_mul(1u64.checked_shl(retry).unwrap_or(u64::MAX))
            .min(self.max_backoff_ms)
    }

    /// Validate the policy.
    pub fn validate(&self) -> crate::Result<()> {
        if self.attempts == 0 {
            return Err(crate::Error::Config(
                "retry attempts must be at least 1".into(),
            ));
        }
        if self.timeout_ms == 0 {
            return Err(crate::Error::Config(
                "retry timeout_ms must be nonzero".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_policy_validates_and_backs_off() {
        RetryPolicy::default().validate().unwrap();
        RetryPolicy::aggressive().validate().unwrap();
        assert!(RetryPolicy::default().with_attempts(0).validate().is_err());
        assert!(RetryPolicy {
            timeout_ms: 0,
            ..Default::default()
        }
        .validate()
        .is_err());

        let p = RetryPolicy {
            base_backoff_ms: 2,
            max_backoff_ms: 9,
            ..Default::default()
        };
        assert_eq!(p.backoff_ms(0), 2);
        assert_eq!(p.backoff_ms(1), 4);
        assert_eq!(p.backoff_ms(2), 8);
        assert_eq!(p.backoff_ms(3), 9, "capped");
        assert_eq!(p.backoff_ms(80), 9, "shift overflow saturates to the cap");
    }

    #[test]
    fn default_validates() {
        HashFileConfig::default().validate().unwrap();
        HashFileConfig::tiny().validate().unwrap();
        HashFileConfig::realistic().validate().unwrap();
    }

    #[test]
    fn rejects_zero_capacity() {
        let err = HashFileConfig::default()
            .with_bucket_capacity(0)
            .validate()
            .unwrap_err();
        assert!(err.to_string().contains("bucket_capacity"));
    }

    #[test]
    fn rejects_silly_depths() {
        assert!(HashFileConfig::default()
            .with_max_depth(0)
            .validate()
            .is_err());
        assert!(HashFileConfig::default()
            .with_max_depth(33)
            .validate()
            .is_err());
        assert!(HashFileConfig::default()
            .with_max_depth(32)
            .validate()
            .is_ok());
    }

    #[test]
    fn rejects_merge_threshold_at_capacity() {
        let cfg = HashFileConfig::default()
            .with_bucket_capacity(4)
            .with_merge_threshold(4);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn builder_chain() {
        let cfg = HashFileConfig::default()
            .with_bucket_capacity(8)
            .with_max_depth(12)
            .with_merge_threshold(2)
            .with_io_latency_ns(100);
        assert_eq!(cfg.bucket_capacity, 8);
        assert_eq!(cfg.max_depth, 12);
        assert_eq!(cfg.merge_threshold, 2);
        assert_eq!(cfg.io_latency_ns, 100);
    }
}
