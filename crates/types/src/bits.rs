//! The bit algebra of extendible hashing.
//!
//! Everything in Figures 5–9 is phrased in terms of `mask(depth)` — the
//! low-`depth`-bits mask — and single-bit partner tests. Centralizing them
//! here keeps the three implementations (sequential, Solution 1,
//! Solution 2) and the distributed bucket managers in exact agreement.

/// A low-bits mask: `mask(d)` has the low `d` bits set.
///
/// `mask(0) == 0` (a directory of depth 0 has a single entry, index 0) and
/// `mask(64)` is all ones. Depths above 64 are a programming error.
#[inline]
pub const fn mask(depth: u32) -> u64 {
    debug_assert!(depth <= 64);
    if depth == 0 {
        0
    } else if depth >= 64 {
        u64::MAX
    } else {
        (1u64 << depth) - 1
    }
}

/// A typed wrapper for a `mask(depth)` value, carrying its depth.
///
/// Useful where code wants to pass "the mask currently in effect" around
/// without losing track of which depth produced it (the `m` local of the
/// paper's listings).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mask {
    depth: u32,
    bits: u64,
}

impl Mask {
    /// The mask for the given depth.
    #[inline]
    pub const fn of_depth(depth: u32) -> Self {
        Mask {
            depth,
            bits: mask(depth),
        }
    }

    /// The depth this mask selects.
    #[inline]
    pub const fn depth(self) -> u32 {
        self.depth
    }

    /// The raw bit pattern.
    #[inline]
    pub const fn bits(self) -> u64 {
        self.bits
    }

    /// Apply the mask to a value.
    #[inline]
    pub const fn select(self, v: u64) -> u64 {
        v & self.bits
    }
}

/// The bit that distinguishes two partner buckets of the given localdepth:
/// bit number `localdepth` in the paper's 1-indexed numbering, i.e.
/// `1 << (localdepth - 1)`.
///
/// "Two buckets are defined as partners with respect to bit position *d* if
/// their commonbits match in bits *d−1* to 1 and differ at bit *d*" (§2.2).
#[inline]
pub const fn partner_bit(localdepth: u32) -> u64 {
    debug_assert!(localdepth >= 1 && localdepth <= 64);
    1u64 << (localdepth - 1)
}

/// The commonbits of the partner of a bucket with the given `commonbits`
/// and `localdepth`: flip the partner bit.
#[inline]
pub const fn partner_commonbits(commonbits: u64, localdepth: u32) -> u64 {
    commonbits ^ partner_bit(localdepth)
}

/// Are two buckets partners with respect to bit position `d`?
///
/// True iff their commonbits agree on bits `d-1..1` and differ at bit `d`.
#[inline]
pub const fn are_partners(commonbits_a: u64, commonbits_b: u64, d: u32) -> bool {
    let low = mask(d - 1);
    let bit = partner_bit(d);
    (commonbits_a & low) == (commonbits_b & low) && (commonbits_a & bit) != (commonbits_b & bit)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_edges() {
        assert_eq!(mask(0), 0);
        assert_eq!(mask(1), 0b1);
        assert_eq!(mask(3), 0b111);
        assert_eq!(mask(63), u64::MAX >> 1);
        assert_eq!(mask(64), u64::MAX);
    }

    #[test]
    fn mask_struct_roundtrip() {
        let m = Mask::of_depth(5);
        assert_eq!(m.depth(), 5);
        assert_eq!(m.bits(), 0b11111);
        assert_eq!(m.select(0b1010_1010), 0b0_1010);
    }

    #[test]
    fn partner_bit_is_one_indexed() {
        assert_eq!(partner_bit(1), 0b1);
        assert_eq!(partner_bit(2), 0b10);
        assert_eq!(partner_bit(4), 0b1000);
    }

    #[test]
    fn partner_commonbits_flips_top_local_bit() {
        // Bucket "01" at localdepth 2 partners with "11".
        assert_eq!(partner_commonbits(0b01, 2), 0b11);
        assert_eq!(partner_commonbits(0b11, 2), 0b01);
        // Bucket "0" at localdepth 1 partners with "1".
        assert_eq!(partner_commonbits(0b0, 1), 0b1);
    }

    #[test]
    fn are_partners_per_paper_definition() {
        // "10" and "00" differ at bit 2, agree at bit 1 → partners wrt 2.
        assert!(are_partners(0b10, 0b00, 2));
        // "10" and "01" differ at bit 1 too → not partners wrt 2.
        assert!(!are_partners(0b10, 0b01, 2));
        // A bucket is never its own partner.
        assert!(!are_partners(0b10, 0b10, 2));
    }

    #[test]
    fn partnering_is_symmetric_and_involutive() {
        for d in 1..=16u32 {
            for cb in [0u64, 1, 0b1010, 0xFFFF, 0xDEAD] {
                let cb = cb & mask(d);
                let p = partner_commonbits(cb, d);
                assert!(are_partners(cb, p, d));
                assert_eq!(partner_commonbits(p, d), cb);
            }
        }
    }
}
