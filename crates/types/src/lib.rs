//! # ceh-types
//!
//! Shared vocabulary types for the `ellis-eh` workspace — a reproduction of
//! Carla Schlatter Ellis, *Extendible Hashing for Concurrent Operations and
//! Distributed Data* (PODS 1983).
//!
//! This crate holds the types every other crate agrees on:
//!
//! * [`Key`] / [`Value`] / [`Record`] — what the hash file stores.
//! * [`Pseudokey`] and [`hash_key`] — the paper's "very long pseudokey"
//!   produced by hashing a key. The **least significant** bits of the
//!   pseudokey index the directory (the paper's choice, which makes
//!   directory doubling a copy of the bottom half into the top half).
//! * [`PageId`] — the address of a bucket's disk page.
//! * [`mask`] and the bit helpers of [`bits`] — the `mask(depth)` /
//!   `pseudokey & mask(depth)` algebra used throughout Figures 5–9.
//! * [`HashFileConfig`] — bucket capacity, maximum directory depth, and
//!   related tuning shared by the sequential, concurrent, and distributed
//!   implementations.
//! * [`Error`] — the workspace error type.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bits;
pub mod bucket;
pub mod config;
pub mod error;
pub mod ids;
pub mod key;
pub mod ops;

pub use bits::{mask, partner_bit, Mask};
pub use bucket::{Bucket, BUCKET_HEADER_BYTES, DELETED, RECORD_BYTES};
pub use config::{HashFileConfig, RetryPolicy};
pub use error::{Error, Result};
pub use ids::{BucketLink, ManagerId, PageId};
pub use key::{hash_key, identity_pseudokey, Key, Pseudokey, Record, Value};
pub use ops::{DeleteOutcome, InsertOutcome};
