//! Keys, values, records, and the pseudokey hash.
//!
//! The paper assumes "a hash function … that generates a very long
//! *pseudokey* when applied to a key" (§1). We use a 64-bit pseudokey
//! produced by a splitmix64-style finalizer, which is a full-avalanche
//! bijection on `u64`: every output bit depends on every input bit, so the
//! low-order bits used to index the directory are well distributed even for
//! sequential keys.

use core::fmt;

use serde::{Deserialize, Serialize};

/// A key stored in the hash file.
///
/// Keys are 64-bit identifiers, matching the paper's database-index
/// use-case (the "associated information" of a record is typically a record
/// id or tuple address). The newtype prevents accidentally confusing a key
/// with its pseudokey — a bug class the wrong-bucket recovery logic is very
/// sensitive to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Key(pub u64);

/// The value ("associated information") stored with a key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Value(pub u64);

/// A `(key, value)` pair as stored in a bucket slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Record {
    /// The record's key.
    pub key: Key,
    /// The record's associated information.
    pub value: Value,
}

impl Record {
    /// Create a record from raw key and value integers.
    #[inline]
    pub const fn new(key: u64, value: u64) -> Self {
        Record {
            key: Key(key),
            value: Value(value),
        }
    }
}

/// The hash of a key: the paper's *pseudokey*.
///
/// The directory is indexed by the **least significant** `depth` bits of
/// the pseudokey ("In our work, the least significant bits are used in
/// order to simplify manipulations of the directory", §1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Pseudokey(pub u64);

impl fmt::Debug for Pseudokey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Low bits are what the data structure cares about; print the low
        // 16 in binary for readability, like the paper's "...101" notation.
        write!(f, "Pseudokey(…{:016b})", self.0 & 0xFFFF)
    }
}

impl Pseudokey {
    /// The low `depth` bits of the pseudokey: the directory index when the
    /// directory has that depth (`pseudokey & mask(depth)` in the paper).
    #[inline]
    pub const fn low_bits(self, depth: u32) -> u64 {
        self.0 & crate::bits::mask(depth)
    }

    /// Does this pseudokey belong in a bucket with the given `commonbits`
    /// and `localdepth`? This is the wrong-bucket test of Figures 5, 8, 9:
    /// `(mask(localdepth) & pseudokey) == commonbits`.
    #[inline]
    pub const fn matches(self, commonbits: u64, localdepth: u32) -> bool {
        self.low_bits(localdepth) == commonbits
    }

    /// The paper's "z goes in first/second of pair" test (Figure 7): with
    /// respect to bit position `localdepth` (1-indexed in the paper), a
    /// pseudokey whose bit `localdepth` is 0 belongs to the "0" partner —
    /// the first of the pair in next-link order.
    #[inline]
    pub const fn in_first_of_pair(self, localdepth: u32) -> bool {
        debug_assert!(localdepth >= 1);
        let m = 1u64 << (localdepth - 1);
        (self.0 & m) != m
    }
}

/// Hash a key to its pseudokey.
///
/// splitmix64's finalizer: a measured-good mixing permutation
/// (full avalanche, bijective). Deterministic across runs so tests and
/// figure goldens are stable.
#[inline]
pub fn hash_key(key: Key) -> Pseudokey {
    let mut z = key.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    Pseudokey(z ^ (z >> 31))
}

/// An *identity* pseudokey function, used by figure-golden tests so the
/// directory layout matches the paper's hand-drawn examples exactly (where
/// the text treats the key's own low bits as the pseudokey).
#[inline]
pub fn identity_pseudokey(key: Key) -> Pseudokey {
    Pseudokey(key.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic() {
        assert_eq!(hash_key(Key(42)), hash_key(Key(42)));
        assert_ne!(hash_key(Key(42)), hash_key(Key(43)));
    }

    #[test]
    fn hash_spreads_low_bits_of_sequential_keys() {
        // Sequential keys must not all land in the same bucket: count the
        // distribution of the low 3 bits over 8000 sequential keys.
        let mut counts = [0usize; 8];
        for k in 0..8000u64 {
            counts[(hash_key(Key(k)).0 & 7) as usize] += 1;
        }
        for &c in &counts {
            // Perfectly uniform would be 1000; allow generous slack.
            assert!((800..=1200).contains(&c), "skewed low bits: {counts:?}");
        }
    }

    #[test]
    fn low_bits_extracts_suffix() {
        let pk = Pseudokey(0b1011_0101);
        assert_eq!(pk.low_bits(0), 0);
        assert_eq!(pk.low_bits(1), 0b1);
        assert_eq!(pk.low_bits(3), 0b101);
        assert_eq!(pk.low_bits(8), 0b1011_0101);
    }

    #[test]
    fn matches_is_the_wrong_bucket_test() {
        // A bucket with localdepth 3 and commonbits 0b101 holds exactly the
        // pseudokeys ending in 101 (the paper's "...101" example).
        let pk = Pseudokey(0b1111_0101);
        assert!(pk.matches(0b101, 3));
        assert!(!pk.matches(0b001, 3));
        // After the bucket splits (localdepth 4), the same pseudokey only
        // matches the half whose commonbits extend it by its bit 4.
        assert!(pk.matches(0b0101, 4));
        assert!(!pk.matches(0b1101, 4));
    }

    #[test]
    fn in_first_of_pair_checks_bit_localdepth() {
        // localdepth 3 → partner bit is bit 3 (mask 0b100).
        assert!(Pseudokey(0b0011).in_first_of_pair(3));
        assert!(!Pseudokey(0b0111).in_first_of_pair(3));
        // localdepth 1 → partner bit is the lowest bit.
        assert!(Pseudokey(0b10).in_first_of_pair(1));
        assert!(!Pseudokey(0b11).in_first_of_pair(1));
    }

    #[test]
    fn identity_pseudokey_is_identity() {
        assert_eq!(identity_pseudokey(Key(0b101)).0, 0b101);
    }
}
