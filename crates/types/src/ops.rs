//! Operation outcome types shared by every hash-file implementation.

/// Result of an insert.
///
/// The paper's insert is add-if-absent: "z is already there" leaves the
/// file unchanged (Figures 6 and 8 release their locks and stop). None of
/// the implementations overwrite on duplicate insert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The key was added.
    Inserted,
    /// The key was already present; the file is unchanged.
    AlreadyPresent,
}

/// Result of a delete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeleteOutcome {
    /// The key was removed.
    Deleted,
    /// The key was not in the file.
    NotFound,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcomes_are_comparable() {
        assert_eq!(InsertOutcome::Inserted, InsertOutcome::Inserted);
        assert_ne!(InsertOutcome::Inserted, InsertOutcome::AlreadyPresent);
        assert_ne!(DeleteOutcome::Deleted, DeleteOutcome::NotFound);
    }
}
