//! The workspace error type.

use core::fmt;

/// Errors surfaced by the hash-file implementations and their substrates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// An invalid configuration was supplied.
    Config(String),
    /// The directory cannot grow past its configured `max_depth` and a
    /// split required doubling it. The paper's fixed-size
    /// `directory[1<<maxdepth]` has the same limit, implicitly.
    DirectoryFull {
        /// The configured maximum depth.
        max_depth: u32,
    },
    /// A bucket could not be split into a state that admits the new record
    /// after exhausting retries (adversarially colliding pseudokeys at
    /// max depth).
    UnsplittableBucket,
    /// The page store has no free pages left.
    OutOfPages,
    /// An access touched a page that is not currently allocated. With
    /// freed-page poisoning enabled this is how locking-protocol
    /// violations surface.
    PageFault {
        /// The offending page address.
        page: u64,
    },
    /// A page's bytes failed to decode as a bucket (corruption, or a read
    /// raced a torn write — which the atomic page store makes impossible,
    /// so in practice: a protocol bug).
    Corrupt(String),
    /// An operating-system I/O failure from a file-backed page store.
    Io(String),
    /// A distributed request failed because the cluster is shutting down
    /// or a manager is unreachable.
    Unavailable(String),
    /// An operation exceeded its retry budget (potential livelock under an
    /// adversarial schedule; see DESIGN.md §3.5).
    RetriesExhausted {
        /// Which operation gave up.
        op: &'static str,
    },
    /// The durable store lost power (a `CrashPlan` fired, or
    /// `power_off` was called). Every subsequent operation on the dead
    /// store fails with this until the disk image is recovered into a
    /// fresh store.
    PowerLoss,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Config(msg) => write!(f, "invalid configuration: {msg}"),
            Error::DirectoryFull { max_depth } => {
                write!(f, "directory cannot grow past max_depth {max_depth}")
            }
            Error::UnsplittableBucket => {
                write!(f, "bucket split failed to make room for the new record")
            }
            Error::OutOfPages => write!(f, "page store exhausted"),
            Error::PageFault { page } => write!(f, "access to unallocated page p{page}"),
            Error::Corrupt(msg) => write!(f, "corrupt page: {msg}"),
            Error::Io(msg) => write!(f, "backing file I/O failed: {msg}"),
            Error::Unavailable(msg) => write!(f, "service unavailable: {msg}"),
            Error::RetriesExhausted { op } => write!(f, "{op}: retry budget exhausted"),
            Error::PowerLoss => write!(f, "durable store lost power"),
        }
    }
}

impl std::error::Error for Error {}

/// Workspace result alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(Error::DirectoryFull { max_depth: 8 }
            .to_string()
            .contains("max_depth 8"));
        assert!(Error::PageFault { page: 7 }.to_string().contains("p7"));
        assert!(Error::RetriesExhausted { op: "insert" }
            .to_string()
            .contains("insert"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::OutOfPages);
    }
}
