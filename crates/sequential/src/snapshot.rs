//! Structural snapshots and the invariant checker.
//!
//! A [`FileSnapshot`] is a quiescent, decoded copy of the whole file —
//! directory and buckets — used by golden tests (Figures 1–4), the
//! sequential invariant checker, and the pretty-printer that renders
//! paper-style diagrams.

use std::collections::BTreeMap;
use std::sync::Arc;

use ceh_storage::PageStore;
use ceh_types::bits::mask;
use ceh_types::bucket::Bucket;
use ceh_types::{Error, Key, PageId, Pseudokey, Result};

/// One bucket as captured in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BucketView {
    /// The bucket's page address.
    pub page: PageId,
    /// The decoded bucket.
    pub bucket: Bucket,
}

/// A quiescent structural copy of an extendible hash file.
#[derive(Debug, Clone)]
pub struct FileSnapshot {
    /// Directory depth at capture time.
    pub depth: u32,
    /// `depthcount` at capture time.
    pub depthcount: u32,
    /// The `2^depth` directory entries.
    pub entries: Vec<PageId>,
    /// Every distinct bucket reachable from the directory, keyed by page.
    pub buckets: BTreeMap<PageId, Bucket>,
    /// Bucket capacity in force.
    pub capacity: usize,
}

impl FileSnapshot {
    /// Decode the file's current state from its store.
    pub fn capture(
        store: &Arc<PageStore>,
        entries: &[PageId],
        depth: u32,
        depthcount: u32,
        capacity: usize,
    ) -> Result<FileSnapshot> {
        let mut buckets = BTreeMap::new();
        let mut buf = store.new_buf();
        for &p in entries {
            if let std::collections::btree_map::Entry::Vacant(e) = buckets.entry(p) {
                store.read(p, &mut buf)?;
                e.insert(Bucket::decode(&buf)?);
            }
        }
        Ok(FileSnapshot {
            depth,
            depthcount,
            entries: entries.to_vec(),
            buckets,
            capacity,
        })
    }

    /// Total records across all buckets.
    pub fn total_records(&self) -> usize {
        self.buckets.values().map(|b| b.records.len()).sum()
    }

    /// Number of distinct buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Buckets whose `localdepth == depth` — what `depthcount` should be.
    pub fn count_buckets_at_full_depth(&self) -> u32 {
        self.buckets
            .values()
            .filter(|b| b.localdepth == self.depth)
            .count() as u32
    }

    /// All keys in the file, sorted (oracle comparisons).
    pub fn all_keys(&self) -> Vec<Key> {
        let mut v: Vec<Key> = self
            .buckets
            .values()
            .flat_map(|b| b.records.iter().map(|r| r.key))
            .collect();
        v.sort();
        v
    }

    /// Check the Fagin-79 structural invariants, returning a descriptive
    /// error on the first violation:
    ///
    /// 1. the directory has exactly `2^depth` entries;
    /// 2. every entry `i` points at a bucket whose `commonbits` equal
    ///    `i & mask(localdepth)` and whose `localdepth ≤ depth`;
    /// 3. each bucket is referenced by exactly `2^(depth - localdepth)`
    ///    entries;
    /// 4. every record's pseudokey matches its bucket's commonbits;
    /// 5. no bucket exceeds capacity;
    /// 6. `depthcount` equals the number of buckets at full depth;
    /// 7. no key appears twice.
    pub fn check_invariants(&self, hasher: fn(Key) -> Pseudokey) -> Result<()> {
        let size = 1usize << self.depth;
        if self.entries.len() != size {
            return Err(Error::Corrupt(format!(
                "directory has {} entries, depth {} wants {size}",
                self.entries.len(),
                self.depth
            )));
        }
        let mut refcounts: BTreeMap<PageId, usize> = BTreeMap::new();
        for (i, &p) in self.entries.iter().enumerate() {
            let b = self
                .buckets
                .get(&p)
                .ok_or_else(|| Error::Corrupt(format!("entry {i} points at missing {p}")))?;
            if b.localdepth > self.depth {
                return Err(Error::Corrupt(format!(
                    "{p}: localdepth {} exceeds depth {}",
                    b.localdepth, self.depth
                )));
            }
            if (i as u64) & mask(b.localdepth) != b.commonbits {
                return Err(Error::Corrupt(format!(
                    "entry {i:0width$b} points at {p} with commonbits {:0ldw$b}",
                    b.commonbits,
                    width = self.depth as usize,
                    ldw = b.localdepth as usize,
                )));
            }
            *refcounts.entry(p).or_insert(0) += 1;
        }
        for (&p, b) in &self.buckets {
            let expected = 1usize << (self.depth - b.localdepth);
            let got = refcounts.get(&p).copied().unwrap_or(0);
            if got != expected {
                return Err(Error::Corrupt(format!(
                    "{p} (localdepth {}) referenced by {got} entries, expected {expected}",
                    b.localdepth
                )));
            }
            if b.records.len() > self.capacity {
                return Err(Error::Corrupt(format!(
                    "{p} holds {} records, capacity {}",
                    b.records.len(),
                    self.capacity
                )));
            }
            for r in &b.records {
                let pk = hasher(r.key);
                if !pk.matches(b.commonbits, b.localdepth) {
                    return Err(Error::Corrupt(format!(
                        "{p}: key {:?} with pseudokey {pk:?} does not match commonbits",
                        r.key
                    )));
                }
            }
        }
        if self.depthcount != self.count_buckets_at_full_depth() {
            return Err(Error::Corrupt(format!(
                "depthcount {} but {} buckets at full depth",
                self.depthcount,
                self.count_buckets_at_full_depth()
            )));
        }
        let keys = self.all_keys();
        for w in keys.windows(2) {
            if w[0] == w[1] {
                return Err(Error::Corrupt(format!("duplicate key {:?}", w[0])));
            }
        }
        Ok(())
    }

    /// Render a paper-style diagram of the structure (cf. Figures 1–4):
    ///
    /// ```text
    /// depth 2, depthcount 2
    /// [00] -> p0 (localdepth 1, commonbits 0) {0, 2, 4}
    /// [01] -> p1 (localdepth 2, commonbits 01) {1, 5}
    /// [10] -> p0
    /// [11] -> p2 (localdepth 2, commonbits 11) {3}
    /// ```
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "depth {}, depthcount {}", self.depth, self.depthcount);
        let mut seen = std::collections::BTreeSet::new();
        for (i, &p) in self.entries.iter().enumerate() {
            let idx = format!("{:0width$b}", i, width = self.depth.max(1) as usize);
            if seen.insert(p) {
                let b = &self.buckets[&p];
                let mut keys: Vec<u64> = b.records.iter().map(|r| r.key.0).collect();
                keys.sort();
                let keys = keys
                    .iter()
                    .map(|k| k.to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                let _ = writeln!(
                    out,
                    "[{idx}] -> {p} (localdepth {}, commonbits {:0ldw$b}) {{{keys}}}",
                    b.localdepth,
                    b.commonbits,
                    ldw = b.localdepth.max(1) as usize,
                );
            } else {
                let _ = writeln!(out, "[{idx}] -> {p}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceh_types::{identity_pseudokey, Record};

    fn snapshot_of(
        entries: Vec<PageId>,
        buckets: Vec<(PageId, Bucket)>,
        depth: u32,
    ) -> FileSnapshot {
        let depthcount = buckets
            .iter()
            .filter(|(_, b)| b.localdepth == depth)
            .count() as u32;
        FileSnapshot {
            depth,
            depthcount,
            entries,
            buckets: buckets.into_iter().collect(),
            capacity: 4,
        }
    }

    fn two_bucket_depth1() -> FileSnapshot {
        let mut b0 = Bucket::new(1, 0);
        b0.records.push(Record::new(0b10, 1));
        let mut b1 = Bucket::new(1, 1);
        b1.records.push(Record::new(0b11, 2));
        snapshot_of(
            vec![PageId(0), PageId(1)],
            vec![(PageId(0), b0), (PageId(1), b1)],
            1,
        )
    }

    #[test]
    fn valid_snapshot_passes() {
        two_bucket_depth1()
            .check_invariants(identity_pseudokey)
            .unwrap();
    }

    #[test]
    fn wrong_commonbits_caught() {
        let mut s = two_bucket_depth1();
        s.buckets.get_mut(&PageId(1)).unwrap().commonbits = 0;
        assert!(s.check_invariants(identity_pseudokey).is_err());
    }

    #[test]
    fn misplaced_record_caught() {
        let mut s = two_bucket_depth1();
        // key 0b10 (even) placed in the odd bucket.
        s.buckets
            .get_mut(&PageId(1))
            .unwrap()
            .records
            .push(Record::new(0b100, 9));
        assert!(s.check_invariants(identity_pseudokey).is_err());
    }

    #[test]
    fn wrong_depthcount_caught() {
        let mut s = two_bucket_depth1();
        s.depthcount = 0;
        assert!(s.check_invariants(identity_pseudokey).is_err());
    }

    #[test]
    fn duplicate_key_caught() {
        let mut s = two_bucket_depth1();
        s.buckets
            .get_mut(&PageId(0))
            .unwrap()
            .records
            .push(Record::new(0b10, 7));
        // duplicate within a bucket:
        assert!(s.check_invariants(identity_pseudokey).is_err());
    }

    #[test]
    fn overfull_bucket_caught() {
        let mut s = two_bucket_depth1();
        s.capacity = 1;
        s.buckets
            .get_mut(&PageId(0))
            .unwrap()
            .records
            .push(Record::new(0b100, 9));
        assert!(s.check_invariants(identity_pseudokey).is_err());
    }

    #[test]
    fn render_shows_structure() {
        let s = two_bucket_depth1();
        let text = s.render();
        assert!(text.contains("depth 1"));
        assert!(text.contains("[0] -> p0"));
        assert!(text.contains("[1] -> p1"));
        assert!(text.contains("{2}"), "keys listed: {text}");
    }
}
