//! The sequential extendible hash file.

use std::sync::Arc;

use ceh_storage::{PageBuf, PageStore};
use ceh_types::bits::{mask, partner_commonbits};
use ceh_types::bucket::Bucket;
use ceh_types::{
    hash_key, DeleteOutcome, Error, HashFileConfig, InsertOutcome, Key, PageId, Pseudokey, Record,
    Result, Value,
};

use crate::snapshot::FileSnapshot;

/// The sequential (single-threaded) extendible hash file of Fagin et al.
///
/// Not `Sync`: this is the algorithm *before* the paper's contribution.
/// Concurrent use goes through `ceh-core`.
///
/// ```
/// use ceh_sequential::SequentialHashFile;
/// use ceh_types::{HashFileConfig, InsertOutcome, Key, Value};
///
/// let mut file = SequentialHashFile::new(HashFileConfig::tiny())?;
/// for k in 0..100 {
///     assert_eq!(file.insert(Key(k), Value(k * 2))?, InsertOutcome::Inserted);
/// }
/// assert_eq!(file.find(Key(40))?, Some(Value(80)));
/// assert!(file.depth() > 0, "tiny buckets forced directory growth");
/// file.check_invariants()?;
/// # Ok::<(), ceh_types::Error>(())
/// ```
pub struct SequentialHashFile {
    store: Arc<PageStore>,
    cfg: HashFileConfig,
    hasher: fn(Key) -> Pseudokey,
    /// The directory: `2^depth` page ids.
    directory: Vec<PageId>,
    depth: u32,
    /// Number of buckets whose `localdepth == depth` (§2.2).
    depthcount: u32,
    len: usize,
}

impl SequentialHashFile {
    /// Create a file over its own private page store. The configured
    /// `io_latency_ns` is applied to every page read/write.
    pub fn new(cfg: HashFileConfig) -> Result<Self> {
        cfg.validate()?;
        let store = PageStore::new_shared(ceh_storage::PageStoreConfig {
            page_size: Bucket::page_size_for(cfg.bucket_capacity),
            io_latency_ns: cfg.io_latency_ns,
            ..Default::default()
        });
        Self::with_store(cfg, store, hash_key)
    }

    /// Create a file over a caller-supplied store with a custom pseudokey
    /// function (the figure goldens pass [`ceh_types::identity_pseudokey`]).
    pub fn with_store(
        cfg: HashFileConfig,
        store: Arc<PageStore>,
        hasher: fn(Key) -> Pseudokey,
    ) -> Result<Self> {
        cfg.validate()?;
        if Bucket::capacity_for(store.page_size()) < cfg.bucket_capacity {
            return Err(Error::Config(format!(
                "page size {} holds only {} records, config wants {}",
                store.page_size(),
                Bucket::capacity_for(store.page_size()),
                cfg.bucket_capacity
            )));
        }
        // Initial state: depth 0, a single bucket with localdepth 0.
        let p0 = store.alloc()?;
        let bucket = Bucket::new(0, 0);
        let mut buf = store.new_buf();
        bucket.encode(&mut buf)?;
        store.write(p0, &buf)?;
        Ok(SequentialHashFile {
            store,
            cfg,
            hasher,
            directory: vec![p0],
            depth: 0,
            depthcount: 1,
            len: 0,
        })
    }

    /// Rebuild a file from an existing (typically file-backed) store by
    /// scanning its pages: the recovery path for a durable index.
    ///
    /// The directory is volatile state — everything needed to rebuild it
    /// (`localdepth`, `commonbits`, the `next` chain) is persisted in the
    /// buckets themselves, which is a deliberate property of the page
    /// layout. Pages that fail to decode (poisoned free pages from a
    /// previous run) are returned to the free list; tombstones (crash
    /// debris from an unfinished Solution-2 merge) are collected. The
    /// rebuilt structure is invariant-checked before being returned.
    ///
    /// ```no_run
    /// use ceh_sequential::SequentialHashFile;
    /// use ceh_storage::{PageStore, PageStoreConfig};
    /// use ceh_types::{hash_key, HashFileConfig, Key};
    /// use std::sync::Arc;
    ///
    /// let cfg = HashFileConfig::default();
    /// let store = Arc::new(PageStore::open_file("index.ceh", PageStoreConfig {
    ///     page_size: ceh_types::Bucket::page_size_for(cfg.bucket_capacity),
    ///     ..Default::default()
    /// })?);
    /// let file = SequentialHashFile::recover(cfg, store, hash_key)?;
    /// file.find(Key(42))?;
    /// # Ok::<(), ceh_types::Error>(())
    /// ```
    pub fn recover(
        cfg: HashFileConfig,
        store: Arc<PageStore>,
        hasher: fn(Key) -> Pseudokey,
    ) -> Result<Self> {
        cfg.validate()?;
        if Bucket::capacity_for(store.page_size()) < cfg.bucket_capacity {
            return Err(Error::Config(format!(
                "page size {} holds only {} records, config wants {}",
                store.page_size(),
                Bucket::capacity_for(store.page_size()),
                cfg.bucket_capacity
            )));
        }
        let mut buf = PageBuf::zeroed(store.page_size());
        let mut live: Vec<(PageId, Bucket)> = Vec::new();
        let mut garbage: Vec<PageId> = Vec::new();
        for p in store.allocated_page_ids() {
            store.read(p, &mut buf)?;
            match Bucket::decode(&buf) {
                Ok(b) if !b.is_deleted() => live.push((p, b)),
                _ => garbage.push(p), // poisoned free page or tombstone
            }
        }
        for p in garbage {
            store.dealloc(p)?;
        }
        if live.is_empty() {
            // Nothing recoverable: initialize fresh.
            return Self::with_store(cfg, store, hasher);
        }
        let depth = live
            .iter()
            .map(|(_, b)| b.localdepth)
            .max()
            .expect("non-empty");
        if depth > cfg.max_depth {
            return Err(Error::DirectoryFull {
                max_depth: cfg.max_depth,
            });
        }
        let size = 1usize << depth;
        let mut directory = vec![PageId::NULL; size];
        let mut len = 0usize;
        for (p, b) in &live {
            len += b.count();
            let start = b.commonbits as usize;
            let step = 1usize << b.localdepth;
            let mut i = start;
            while i < size {
                if !directory[i].is_null() {
                    return Err(Error::Corrupt(format!(
                        "recovery: entry {i:0w$b} claimed by both {} and {p}",
                        directory[i],
                        w = depth as usize
                    )));
                }
                directory[i] = *p;
                i += step;
            }
        }
        if let Some(gap) = directory.iter().position(|p| p.is_null()) {
            return Err(Error::Corrupt(format!(
                "recovery: no bucket covers directory entry {gap:0w$b}",
                w = depth as usize
            )));
        }
        let depthcount = live.iter().filter(|(_, b)| b.localdepth == depth).count() as u32;
        let file = SequentialHashFile {
            store,
            cfg,
            hasher,
            directory,
            depth,
            depthcount,
            len,
        };
        file.check_invariants()?;
        Ok(file)
    }

    /// Current directory depth.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Current `depthcount` (buckets at full depth).
    pub fn depthcount(&self) -> u32 {
        self.depthcount
    }

    /// Number of records stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the file empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The configuration in use.
    pub fn config(&self) -> &HashFileConfig {
        &self.cfg
    }

    /// The underlying page store (shared for I/O accounting).
    pub fn store(&self) -> &Arc<PageStore> {
        &self.store
    }

    fn getbucket(&self, page: PageId, buf: &mut PageBuf) -> Result<Bucket> {
        self.store.read(page, buf)?;
        Bucket::decode(buf)
    }

    fn putbucket(&self, page: PageId, bucket: &Bucket, buf: &mut PageBuf) -> Result<()> {
        bucket.encode(buf)?;
        self.store.write(page, buf)
    }

    fn index(&self, pk: Pseudokey) -> PageId {
        self.directory[pk.low_bits(self.depth) as usize]
    }

    /// `updatedirectory(page, localdepth, pseudokey)`: point every
    /// directory entry whose index matches `pseudokey` in its low
    /// `localdepth` bits at `page`.
    fn update_directory(&mut self, page: PageId, localdepth: u32, pk: Pseudokey) {
        let start = pk.low_bits(localdepth) as usize;
        let step = 1usize << localdepth;
        let size = 1usize << self.depth;
        let mut i = start;
        while i < size {
            self.directory[i] = page;
            i += step;
        }
    }

    /// `doubledirectory()`: copy the bottom half into the new top half and
    /// bump the depth. Zeroes `depthcount` per §2.2 ("doubling the
    /// directory would set it to zero").
    fn double_directory(&mut self) -> Result<()> {
        if self.depth >= self.cfg.max_depth {
            return Err(Error::DirectoryFull {
                max_depth: self.cfg.max_depth,
            });
        }
        let old = self.directory.clone();
        self.directory.extend_from_slice(&old);
        self.depth += 1;
        self.depthcount = 0;
        Ok(())
    }

    /// `halvedirectory()`: drop the top half. Recomputes `depthcount` for
    /// the new depth by "comparing corresponding entries in the top and
    /// bottom halves for pointers which differ" (§2.2). Cascades while the
    /// new depthcount is still zero.
    fn halve_directory(&mut self) {
        loop {
            debug_assert!(self.depth >= 1, "halving a depth-0 directory");
            let half = 1usize << (self.depth - 1);
            debug_assert!(
                (0..half).all(|i| self.directory[i] == self.directory[i + half]),
                "halving with distinct top/bottom halves"
            );
            self.directory.truncate(half);
            self.depth -= 1;
            // Recount at the new depth.
            if self.depth == 0 {
                self.depthcount = 1;
                return;
            }
            let quarter = 1usize << (self.depth - 1);
            let mut count = 0u32;
            for i in 0..quarter {
                if self.directory[i] != self.directory[i + quarter] {
                    count += 2;
                }
            }
            self.depthcount = count;
            if self.depthcount != 0 || self.depth <= 1 {
                return;
            }
        }
    }

    /// Find a key.
    pub fn find(&self, key: Key) -> Result<Option<Value>> {
        let pk = (self.hasher)(key);
        let page = self.index(pk);
        let mut buf = self.store.new_buf();
        let bucket = self.getbucket(page, &mut buf)?;
        debug_assert!(
            bucket.owns(pk),
            "sequential file can never have the wrong bucket"
        );
        Ok(bucket.search(key))
    }

    /// Insert a key. Returns [`InsertOutcome::AlreadyPresent`] (without
    /// overwriting) if the key exists.
    pub fn insert(&mut self, key: Key, value: Value) -> Result<InsertOutcome> {
        let pk = (self.hasher)(key);
        let mut buf = self.store.new_buf();
        // The paper's insert retries after a split that failed to make
        // room ("if (!done) insert(z)"); the loop is that recursion.
        loop {
            let oldpage = self.index(pk);
            let mut current = self.getbucket(oldpage, &mut buf)?;
            if current.search(key).is_some() {
                return Ok(InsertOutcome::AlreadyPresent);
            }
            if current.count() < self.cfg.bucket_capacity {
                current.add(Record { key, value });
                self.putbucket(oldpage, &current, &mut buf)?;
                self.len += 1;
                return Ok(InsertOutcome::Inserted);
            }
            // Current is full: split (doubling the directory first if the
            // bucket is already at full depth).
            if current.localdepth == self.depth {
                self.double_directory()?;
            }
            let newpage = self.store.alloc()?;
            let (half1, half2, done) = current.split(
                key,
                value,
                self.cfg.bucket_capacity,
                self.hasher,
                oldpage,
                ceh_types::ManagerId::NONE,
                newpage,
                ceh_types::ManagerId::NONE,
            );
            self.putbucket(newpage, &half2, &mut buf)?;
            self.putbucket(oldpage, &half1, &mut buf)?;
            self.update_directory(newpage, half2.localdepth, Pseudokey(half2.commonbits));
            if half1.localdepth == self.depth {
                // Two buckets now sit at full depth where none did before
                // (the split bucket was at depth-1): "splitting a bucket
                // of localdepth = depth-1 would add two" (§2.2).
                self.depthcount += 2;
            }
            if done {
                self.len += 1;
                return Ok(InsertOutcome::Inserted);
            }
        }
    }

    /// Delete a key, merging "too empty" buckets with their partners per
    /// §2.2.
    pub fn delete(&mut self, key: Key) -> Result<DeleteOutcome> {
        let pk = (self.hasher)(key);
        let selectedbits = pk.low_bits(self.depth);
        let oldpage = self.index(pk);
        let mut buf = self.store.new_buf();
        let mut current = self.getbucket(oldpage, &mut buf)?;

        if current.search(key).is_none() {
            return Ok(DeleteOutcome::NotFound);
        }

        // "Current not too empty" — or too shallow to have a partner.
        // Figure 7's test is (count > 1 || localdepth == 1); generalized
        // to the configured merge threshold.
        let too_empty = current.count() <= self.cfg.merge_threshold + 1 && current.localdepth > 1;
        if !too_empty {
            current.remove(key);
            self.putbucket(oldpage, &current, &mut buf)?;
            self.len -= 1;
            return Ok(DeleteOutcome::Deleted);
        }

        // Try to merge with the partner (with respect to localdepth).
        let d = current.localdepth;
        let partner_idx = (selectedbits ^ ceh_types::partner_bit(d)) & mask(self.depth);
        let partner_page = self.directory[partner_idx as usize];
        let mut brother = self.getbucket(partner_page, &mut buf)?;

        if brother.localdepth != d {
            // "Not possible to merge these two" — localdepths differ.
            current.remove(key);
            self.putbucket(oldpage, &current, &mut buf)?;
            self.len -= 1;
            return Ok(DeleteOutcome::Deleted);
        }
        debug_assert_eq!(
            brother.commonbits,
            partner_commonbits(current.commonbits, d)
        );

        // Check the merged bucket fits (always true at the paper's
        // merge_threshold = 0; can fail for larger thresholds).
        current.remove(key);
        if current.count() + brother.count() > self.cfg.bucket_capacity {
            self.putbucket(oldpage, &current, &mut buf)?;
            self.len -= 1;
            return Ok(DeleteOutcome::Deleted);
        }

        // Merge: the "0" partner (partner bit clear) survives; move the
        // remaining records in, shrink the localdepth, retire the other
        // page.
        let (merged_page, garbage_page, mut merged) =
            if current.commonbits & ceh_types::partner_bit(d) == 0 {
                brother
                    .records
                    .iter()
                    .for_each(|r| current.records.push(*r));
                (oldpage, partner_page, current)
            } else {
                current
                    .records
                    .iter()
                    .for_each(|r| brother.records.push(*r));
                (partner_page, oldpage, brother)
            };

        if merged.localdepth == self.depth {
            // "Merging two buckets of localdepth = depth would subtract
            // two" (§2.2).
            self.depthcount -= 2;
        }
        merged.localdepth -= 1;
        merged.commonbits &= mask(merged.localdepth);
        self.putbucket(merged_page, &merged, &mut buf)?;
        // Redirect every entry that pointed at the garbage bucket.
        self.update_directory(merged_page, merged.localdepth, Pseudokey(merged.commonbits));
        self.store.dealloc(garbage_page)?;
        if self.depthcount == 0 && self.depth > 1 {
            self.halve_directory();
        }
        self.len -= 1;
        Ok(DeleteOutcome::Deleted)
    }

    /// Take a structural snapshot (testing / figures / invariants).
    pub fn snapshot(&self) -> Result<FileSnapshot> {
        FileSnapshot::capture(
            &self.store,
            &self.directory,
            self.depth,
            self.depthcount,
            self.cfg.bucket_capacity,
        )
    }

    /// Check every structural invariant, panicking with a description on
    /// the first violation. See [`FileSnapshot::check_invariants`].
    pub fn check_invariants(&self) -> Result<()> {
        let snap = self.snapshot()?;
        snap.check_invariants(self.hasher)?;
        if snap.total_records() != self.len {
            return Err(Error::Corrupt(format!(
                "len {} but snapshot holds {} records",
                self.len,
                snap.total_records()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceh_types::identity_pseudokey;

    fn tiny() -> SequentialHashFile {
        SequentialHashFile::new(HashFileConfig::tiny()).unwrap()
    }

    #[test]
    fn empty_file_finds_nothing() {
        let f = tiny();
        assert_eq!(f.find(Key(1)).unwrap(), None);
        assert!(f.is_empty());
        f.check_invariants().unwrap();
    }

    #[test]
    fn insert_then_find() {
        let mut f = tiny();
        assert_eq!(
            f.insert(Key(1), Value(10)).unwrap(),
            InsertOutcome::Inserted
        );
        assert_eq!(
            f.insert(Key(1), Value(99)).unwrap(),
            InsertOutcome::AlreadyPresent
        );
        assert_eq!(
            f.find(Key(1)).unwrap(),
            Some(Value(10)),
            "insert does not overwrite"
        );
        assert_eq!(f.len(), 1);
        f.check_invariants().unwrap();
    }

    #[test]
    fn grows_through_splits_and_doubling() {
        let mut f = tiny();
        for k in 0..200u64 {
            f.insert(Key(k), Value(k * 2)).unwrap();
            f.check_invariants().unwrap();
        }
        assert_eq!(f.len(), 200);
        assert!(
            f.depth() >= 5,
            "200 keys / capacity 2 needs a deep directory"
        );
        for k in 0..200u64 {
            assert_eq!(f.find(Key(k)).unwrap(), Some(Value(k * 2)), "key {k}");
        }
    }

    #[test]
    fn shrinks_through_merges_and_halving() {
        let mut f = tiny();
        for k in 0..200u64 {
            f.insert(Key(k), Value(k)).unwrap();
        }
        let peak_depth = f.depth();
        for k in 0..200u64 {
            assert_eq!(f.delete(Key(k)).unwrap(), DeleteOutcome::Deleted);
            f.check_invariants().unwrap();
        }
        assert!(f.is_empty());
        assert!(f.depth() < peak_depth, "directory should have shrunk");
        assert_eq!(f.delete(Key(0)).unwrap(), DeleteOutcome::NotFound);
    }

    #[test]
    fn delete_missing_key_is_notfound_even_in_empty_bucket() {
        let mut f = tiny();
        f.insert(Key(0b000), Value(0)).unwrap();
        assert_eq!(f.delete(Key(0xDEAD_BEEF)).unwrap(), DeleteOutcome::NotFound);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn directory_full_surfaces() {
        let cfg = HashFileConfig::tiny()
            .with_max_depth(2)
            .with_bucket_capacity(1);
        let mut f = SequentialHashFile::new(cfg).unwrap();
        // With identity-ish growth, capacity 1 and max_depth 2 the file
        // holds at most 4 buckets; a fifth colliding insert must error.
        let mut err = None;
        for k in 0..64u64 {
            match f.insert(Key(k), Value(k)) {
                Ok(_) => {}
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert_eq!(err, Some(Error::DirectoryFull { max_depth: 2 }));
    }

    #[test]
    fn identity_hash_matches_figure1_shape() {
        // Figure 1: depth 2, four entries; keys grouped by their low bits.
        let cfg = HashFileConfig::tiny().with_bucket_capacity(3);
        let store = PageStore::new_shared(ceh_storage::PageStoreConfig {
            page_size: Bucket::page_size_for(3),
            ..Default::default()
        });
        let mut f = SequentialHashFile::with_store(cfg, store, identity_pseudokey).unwrap();
        // Insert keys with low bits 00,01,10,11 until depth reaches 2.
        for k in [0b000u64, 0b100, 0b001, 0b101, 0b010, 0b110, 0b011, 0b111] {
            f.insert(Key(k), Value(k)).unwrap();
            f.check_invariants().unwrap();
        }
        assert!(f.depth() >= 1);
        for k in [0b000u64, 0b100, 0b001, 0b101, 0b010, 0b110, 0b011, 0b111] {
            assert_eq!(f.find(Key(k)).unwrap(), Some(Value(k)));
        }
    }

    #[test]
    fn depthcount_matches_reality_throughout() {
        let mut f = tiny();
        let keys: Vec<u64> = (0..120).map(|i| i * 2654435761 % 1000).collect();
        for &k in &keys {
            f.insert(Key(k), Value(k)).unwrap();
            let snap = f.snapshot().unwrap();
            assert_eq!(
                f.depthcount(),
                snap.count_buckets_at_full_depth(),
                "after inserting {k}"
            );
        }
        for &k in &keys {
            let _ = f.delete(Key(k)).unwrap();
            let snap = f.snapshot().unwrap();
            assert_eq!(
                f.depthcount(),
                snap.count_buckets_at_full_depth(),
                "after deleting {k}"
            );
        }
    }

    #[test]
    fn split_bucket_distributes_and_links() {
        use ceh_types::ManagerId;
        let mut b = Bucket::new(1, 0b1);
        // identity pseudokeys: bit 2 decides the half.
        b.records.push(Record::new(0b001, 1)); // bit2=0 → half1
        b.records.push(Record::new(0b011, 2)); // bit2=1 → half2
        b.next = PageId(42);
        let (h1, h2, done) = b.split(
            Key(0b111),
            Value(3),
            2,
            identity_pseudokey,
            PageId(5),
            ManagerId::NONE,
            PageId(7),
            ManagerId::NONE,
        );
        assert!(done);
        assert_eq!(h1.localdepth, 2);
        assert_eq!(h2.localdepth, 2);
        assert_eq!(h1.commonbits, 0b01);
        assert_eq!(h2.commonbits, 0b11);
        assert_eq!(h1.next, PageId(7), "old bucket points at the new one");
        assert_eq!(h2.next, PageId(42), "new bucket inherits the old next");
        assert_eq!(h2.prev, PageId(5), "new bucket remembers who it split from");
        assert_eq!(h1.records.len(), 1);
        assert_eq!(h2.records.len(), 2); // 0b011 plus the inserted 0b111
        assert_eq!(h1.version, b.version + 1);
    }
}
