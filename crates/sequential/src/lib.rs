//! # ceh-sequential — the Fagin 79 extendible hash file
//!
//! "The sequential algorithms for extendible hashing are described in
//! [Fagin 79]" (§1). This crate implements that point of departure exactly
//! as the paper summarizes it — directory of `2^depth` bucket pointers
//! indexed by the low `depth` bits of the pseudokey, bucket `localdepth`,
//! splits that may double the directory, merges that may halve it, and a
//! `depthcount` maintained by the §2.2 bookkeeping rules.
//!
//! It serves three roles in the workspace:
//!
//! 1. the **baseline** a concurrent solution departs from (and, wrapped in
//!    one big lock, the naive comparator for the benchmarks);
//! 2. the **oracle** for concurrent stress tests — after a concurrent run
//!    reaches quiescence, replaying the surviving key set here must agree;
//! 3. the executable **Figure 1 / Figure 2** reproduction: with the
//!    identity pseudokey function and capacity-2 buckets, the golden tests
//!    replay the paper's hand-worked example.
//!
//! The file lives on a [`ceh_storage::PageStore`], reading and writing
//! buckets through the same page codec the concurrent solutions use.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod file;
mod snapshot;

pub use ceh_types::{DeleteOutcome, InsertOutcome};
pub use file::SequentialHashFile;
pub use snapshot::{BucketView, FileSnapshot};
