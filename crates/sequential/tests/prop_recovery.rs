//! Recovery as a property: for *any* operation sequence, snapshotting
//! the store and recovering from it yields a file equal to the original
//! — same keys, same values, same structural invariants.

use std::collections::BTreeMap;
use std::sync::Arc;

use ceh_sequential::SequentialHashFile;
use ceh_storage::{PageStore, PageStoreConfig};
use ceh_types::bucket::Bucket;
use ceh_types::{hash_key, HashFileConfig, Key, Value};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Delete(u64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    let key = 0u64..96;
    prop_oneof![
        (key.clone(), any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        key.prop_map(Op::Delete),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// recover(state after ops) ≡ state after ops.
    #[test]
    fn recovery_is_lossless(
        cap in 2usize..6,
        ops in proptest::collection::vec(arb_op(), 1..250),
    ) {
        let cfg = HashFileConfig::tiny().with_bucket_capacity(cap);
        let store = Arc::new(PageStore::new(PageStoreConfig {
            page_size: Bucket::page_size_for(cap),
            ..Default::default()
        }));
        let mut file =
            SequentialHashFile::with_store(cfg.clone(), Arc::clone(&store), hash_key).unwrap();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    file.insert(Key(k), Value(v)).unwrap();
                    model.entry(k).or_insert(v);
                }
                Op::Delete(k) => {
                    file.delete(Key(k)).unwrap();
                    model.remove(&k);
                }
            }
        }
        drop(file); // "process exit" — only the store remains

        let recovered = SequentialHashFile::recover(cfg, store, hash_key).unwrap();
        prop_assert_eq!(recovered.len(), model.len());
        for (&k, &v) in &model {
            prop_assert_eq!(recovered.find(Key(k)).unwrap(), Some(Value(v)), "key {}", k);
        }
        // Nothing extra.
        for k in 0..96u64 {
            prop_assert_eq!(
                recovered.find(Key(k)).unwrap().map(|v| v.0),
                model.get(&k).copied(),
                "key {}", k
            );
        }
        recovered.check_invariants().unwrap();
    }
}
