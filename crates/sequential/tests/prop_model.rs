//! Model-based property test: the sequential extendible hash file must
//! behave exactly like a `BTreeMap` under arbitrary operation sequences,
//! and its structural invariants must hold after every operation.

use std::collections::BTreeMap;

use ceh_sequential::{DeleteOutcome, InsertOutcome, SequentialHashFile};
use ceh_types::{HashFileConfig, Key, Value};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Delete(u64),
    Find(u64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    // Narrow key space so deletes hit, splits and merges both fire.
    let key = 0u64..64;
    prop_oneof![
        (key.clone(), any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        key.clone().prop_map(Op::Delete),
        key.prop_map(Op::Find),
    ]
}

fn run_against_model(cfg: HashFileConfig, ops: Vec<Op>, check_every_op: bool) {
    let mut file = SequentialHashFile::new(cfg).unwrap();
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    for op in ops {
        match op {
            Op::Insert(k, v) => {
                let out = file.insert(Key(k), Value(v)).unwrap();
                let expected = if let std::collections::btree_map::Entry::Vacant(e) = model.entry(k)
                {
                    e.insert(v);
                    InsertOutcome::Inserted
                } else {
                    InsertOutcome::AlreadyPresent
                };
                assert_eq!(out, expected, "insert {k}");
            }
            Op::Delete(k) => {
                let out = file.delete(Key(k)).unwrap();
                let expected = if model.remove(&k).is_some() {
                    DeleteOutcome::Deleted
                } else {
                    DeleteOutcome::NotFound
                };
                assert_eq!(out, expected, "delete {k}");
            }
            Op::Find(k) => {
                let got = file.find(Key(k)).unwrap().map(|v| v.0);
                assert_eq!(got, model.get(&k).copied(), "find {k}");
            }
        }
        assert_eq!(file.len(), model.len());
        if check_every_op {
            file.check_invariants().unwrap();
        }
    }
    file.check_invariants().unwrap();
    // Final full sweep.
    for (&k, &v) in &model {
        assert_eq!(file.find(Key(k)).unwrap(), Some(Value(v)));
    }
    let snap = file.snapshot().unwrap();
    assert_eq!(
        snap.all_keys(),
        model.keys().map(|&k| Key(k)).collect::<Vec<_>>(),
        "file and model hold the same key set"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matches_btreemap_tiny_buckets(ops in proptest::collection::vec(arb_op(), 1..300)) {
        run_against_model(HashFileConfig::tiny(), ops, true);
    }

    #[test]
    fn matches_btreemap_capacity_4_with_merge_threshold(
        ops in proptest::collection::vec(arb_op(), 1..300)
    ) {
        let cfg = HashFileConfig::tiny().with_bucket_capacity(4).with_merge_threshold(1);
        run_against_model(cfg, ops, true);
    }

    #[test]
    fn matches_btreemap_larger_buckets(ops in proptest::collection::vec(arb_op(), 1..500)) {
        let cfg = HashFileConfig::default().with_bucket_capacity(8);
        run_against_model(cfg, ops, false);
    }
}
