//! `ceh serve` / `ceh client`: the distributed hash file as real
//! processes over TCP.
//!
//! Every process is handed the same cluster spec (`role@host:port`
//! list); `serve` runs one spec entry as a manager process, `client`
//! dials the whole cluster and runs operations against it. The
//! fault flags wrap the *local* plane's sockets in a seeded
//! [`FaultPlan`], so a chaos run is reproducible from its seed.

use std::collections::HashMap;
use std::io::Write as _;

use ceh_dist::{ClusterSpec, NodeOptions, ServeNode, TcpClusterClient};
use ceh_net::FaultPlan;
use ceh_obs::RunReport;
use ceh_types::{DeleteOutcome, Error, InsertOutcome, Key, Result, RetryPolicy, Value};

/// Usage text for `ceh serve`.
pub const SERVE_HELP: &str = "\
ceh serve --cluster <spec> --node <i> [options]
  run spec entry <i> (0-based) as a manager process; exits on a
  cluster-wide shutdown from `ceh client <spec> shutdown`.

  <spec> is a comma-separated role@host:port list, identical on every
  process, e.g. dir@127.0.0.1:7101,dir@127.0.0.1:7102,bucket@127.0.0.1:7103

  --data-dir <dir>      persist pages in <dir>/site-<mgr>.ceh (bucket nodes)
  --backend <which>     'file': crash-consistent storage — frames + WAL
                        under <data-dir>/site-<mgr>/, fsync'd, recovered
                        on restart (requires --data-dir); 'memory':
                        write-ahead logged against an in-memory image
  --capacity <n>        records per bucket (must match cluster-wide)
  --seed <n>            seed for reconnect jitter and fault streams
  --drop <p>            drop each retried-class frame with probability p
  --dup <p>             duplicate retried-class frames with probability p
  --garble <p>          corrupt retried-class frame bytes with probability p
  --sever <p>           sever the connection around a frame with probability p
                        (drop/dup/garble hit the retried message classes of
                        DESIGN.md §7; sever and delay hit every class)
  --delay <p>:<ms>      delay frames with probability p by ms milliseconds
  --resend-ms <n>       directory-manager resend interval (default 200)
  --bootstrap-ms <n>    how long to wait for peers at startup (default 30000)
  --slow-ms <n>         slow-op log threshold in milliseconds (default 250;
                        0 disables capture) — see `ceh top --slow`
  --report              print the node's metrics report on exit";

/// Usage text for `ceh client`.
pub const CLIENT_HELP: &str = "\
ceh client --cluster <spec> [options] <command>
  put <key> <value>     insert a record
  get <key>             look a key up (prints the value or 'absent')
  del <key>             delete a record
  fill <n>              insert keys 0..n (value = key * 31 + 7)
  workload              seeded mixed workload checked against an exact
                        in-memory oracle; prints 'oracle ok' on success
                        (the seed salts the key space: reuse a seed only
                        against a cluster that has not already run it)
    --ops <n>             operations per client thread (default 300)
    --clients <n>         client threads, disjoint key spaces (default 2)
  shutdown              ask every manager to exit, then disconnect
  stats                 print client-plane metrics and peer states

  --node <id>           this client's plane node id (default 1000; must
                        exceed the spec length and be unique per client)
  --seed <n>            workload and fault-stream seed
  --attempts <n>        retry attempts per operation (default 10)
  --timeout-ms <n>      per-attempt reply timeout (default 500)
  --drop/--dup/--garble/--sever/--delay   client-side fault injection,
                        same meaning as for `ceh serve`";

/// Flags that take no value.
const BOOL_FLAGS: &[&str] = &["report", "once", "json", "slow"];

/// Split `--flag value` pairs from positional arguments.
pub(crate) fn split_flags(args: &[String]) -> Result<(HashMap<String, String>, Vec<String>)> {
    let mut flags = HashMap::new();
    let mut pos = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--").filter(|n| BOOL_FLAGS.contains(n)) {
            flags.insert(name.to_string(), "1".to_string());
        } else if let Some(name) = a.strip_prefix("--") {
            let v = it
                .next()
                .ok_or_else(|| Error::Config(format!("--{name} needs a value")))?;
            flags.insert(name.to_string(), v.clone());
        } else {
            pos.push(a.clone());
        }
    }
    Ok((flags, pos))
}

pub(crate) fn flag_u64(flags: &HashMap<String, String>, name: &str, default: u64) -> Result<u64> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|e| Error::Config(format!("--{name} {v}: {e}"))),
    }
}

/// A probability flag: a float that must land in `[0, 1]`. (The
/// `FaultPlan` builders panic on out-of-range values; the CLI turns
/// that into a usage error first.)
fn flag_prob(flags: &HashMap<String, String>, name: &str) -> Result<Option<f64>> {
    let Some(v) = flags.get(name) else {
        return Ok(None);
    };
    let p: f64 = v
        .parse()
        .map_err(|e| Error::Config(format!("--{name} {v}: {e}")))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(Error::Config(format!(
            "--{name} {v}: probability must be within [0, 1]"
        )));
    }
    Ok(Some(p))
}

/// Message classes the resilience plane makes safe to lose or corrupt
/// (DESIGN.md §7): the retried client path, re-driven bucket
/// operations, and acked replication traffic. The split/merge
/// handshakes and `update` are NOT here — they report irreversible
/// disk state, and losing one is only survived by the slow
/// `reply_timeout` degradation path, which would turn a fault-injection
/// demo into a stall.
const LOSSABLE: &[&str] = &[
    "request",
    "user-reply",
    "find",
    "insert",
    "delete",
    "bucketdone",
    "copyupdate",
    "copy-ack",
    "garbagecollect",
    "gc-ack",
];

/// Build the fault plan the `--drop/--dup/--garble/--sever/--delay`
/// flags describe, or `None` when all are absent (clean sockets).
/// Drop/dup/garble apply to the [`LOSSABLE`] classes; sever and delay
/// apply to everything (a sever writes the frame before tearing the
/// connection down, and a delay is just latency — neither loses data).
fn fault_plan(flags: &HashMap<String, String>, seed: u64) -> Result<Option<FaultPlan>> {
    let mut plan = FaultPlan::new(seed);
    let mut any = false;
    if let Some(p) = flag_prob(flags, "drop")? {
        plan = plan.drop_classes(LOSSABLE, p);
        any = true;
    }
    if let Some(p) = flag_prob(flags, "dup")? {
        plan = plan.duplicate_classes(LOSSABLE, p);
        any = true;
    }
    if let Some(p) = flag_prob(flags, "garble")? {
        plan = plan.garble_classes(LOSSABLE, p);
        any = true;
    }
    if let Some(p) = flag_prob(flags, "sever")? {
        plan = plan.sever_all(p);
        any = true;
    }
    if let Some(v) = flags.get("delay") {
        let (p, ms) = v
            .split_once(':')
            .ok_or_else(|| Error::Config(format!("--delay {v}: expected <p>:<ms>")))?;
        let p: f64 = p
            .parse()
            .map_err(|e| Error::Config(format!("--delay {v}: {e}")))?;
        if !(0.0..=1.0).contains(&p) {
            return Err(Error::Config(format!(
                "--delay {v}: probability must be within [0, 1]"
            )));
        }
        let ms: u64 = ms
            .parse()
            .map_err(|e| Error::Config(format!("--delay {v}: {e}")))?;
        plan = plan.delay_all(p, ms);
        any = true;
    }
    Ok(any.then_some(plan))
}

/// Assemble the [`NodeOptions`] the subcommands share.
pub(crate) fn node_options(flags: &HashMap<String, String>) -> Result<NodeOptions> {
    let mut opts = NodeOptions::default();
    if let Some(cap) = flags.get("capacity") {
        let cap: usize = cap
            .parse()
            .map_err(|e| Error::Config(format!("--capacity {cap}: {e}")))?;
        opts.file = opts.file.with_bucket_capacity(cap);
    }
    opts.data_dir = flags.get("data-dir").map(std::path::PathBuf::from);
    opts.backend = flags
        .get("backend")
        .map(|v| ceh_storage::BackendKind::parse(v))
        .transpose()?;
    opts.seed = flag_u64(flags, "seed", 0)?;
    opts.resend_ms = flag_u64(flags, "resend-ms", opts.resend_ms)?;
    opts.reply_timeout_ms = flag_u64(flags, "reply-timeout-ms", opts.reply_timeout_ms)?;
    opts.bootstrap_timeout_ms = flag_u64(flags, "bootstrap-ms", opts.bootstrap_timeout_ms)?;
    opts.slow_op_threshold_ms = flag_u64(flags, "slow-ms", opts.slow_op_threshold_ms)?;
    opts.faults = fault_plan(flags, opts.seed)?;
    Ok(opts)
}

pub(crate) fn spec_from(flags: &HashMap<String, String>) -> Result<ClusterSpec> {
    let spec = flags
        .get("cluster")
        .ok_or_else(|| Error::Config("--cluster <spec> is required".into()))?;
    ClusterSpec::parse(spec)
}

/// Print a progress line immediately (stdout may be a pipe the parent
/// process is waiting on, so flush explicitly).
pub(crate) fn status(line: &str) {
    let mut out = std::io::stdout();
    let _ = writeln!(out, "{line}");
    let _ = out.flush();
}

/// `ceh serve --cluster <spec> --node <i> [...]`: run one manager
/// process until the cluster is shut down. Returns the final summary
/// line.
pub fn run_serve(args: &[String]) -> Result<String> {
    if args.iter().any(|a| a == "--help" || a == "help") {
        return Ok(SERVE_HELP.to_string());
    }
    let (flags, pos) = split_flags(args)?;
    if !pos.is_empty() {
        return Err(Error::Config(format!(
            "unexpected argument '{}'\n\n{SERVE_HELP}",
            pos[0]
        )));
    }
    let spec = spec_from(&flags)?;
    let idx = flags
        .get("node")
        .ok_or_else(|| Error::Config("--node <i> is required".into()))?;
    let idx: usize = idx
        .parse()
        .map_err(|e| Error::Config(format!("--node {idx}: {e}")))?;
    let opts = node_options(&flags)?;

    let node = ServeNode::start(&spec, idx, &opts)?;
    let metrics = node.metrics();
    let addr = node
        .local_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|| "?".to_string());
    status(&format!(
        "ceh serve: node {idx} ({}) listening on {addr}",
        spec.nodes[idx].0
    ));
    if let Some(plan) = &opts.faults {
        status(&format!("ceh serve: fault plan: {}", plan.describe()));
    }
    let report = flags.contains_key("report");
    node.join()?;
    if report {
        status(&RunReport::collect("serve", &metrics).to_table());
    }
    Ok(format!("ceh serve: node {idx} exited cleanly"))
}

/// A tiny deterministic PRNG (splitmix64) so workloads replay exactly
/// from their seed without pulling RNG state into the oracle.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One client thread's share of the seeded workload, checked against
/// an exact in-memory model. Disjoint key spaces per client keep the
/// model exact under concurrency, and the seed is folded into the key
/// base so differently-seeded `workload` invocations against the same
/// (already populated) cluster do not trip each other's oracle.
/// `Inserted|AlreadyPresent` (and `Deleted|NotFound`) are equivalent
/// for a fresh mutation because the retry plane is at-least-once — a
/// lost *reply* re-executes the operation against state the first
/// execution already changed.
fn workload_thread(conn: &TcpClusterClient, client_no: u64, ops: u64, seed: u64) -> Result<usize> {
    // No timeout override: the connect-time retry policy's per-attempt
    // window governs, so lost frames cost milliseconds, not stalls.
    let client = conn.client();
    let mut rng = seed ^ (client_no.wrapping_mul(0xA24B_AED4_963E_E407) | 1);
    let mut model: HashMap<u64, u64> = HashMap::new();
    let base = ((seed & 0x7FFF) << 48) | ((client_no + 1) << 32);
    let span = (ops / 2).max(8);
    for _ in 0..ops {
        let key = Key(base | (mix(&mut rng) % span));
        match mix(&mut rng) % 10 {
            0..=5 => {
                let value = mix(&mut rng);
                let fresh = !model.contains_key(&key.0);
                let out = client.insert(key, Value(value))?;
                match (fresh, out) {
                    (true, InsertOutcome::Inserted | InsertOutcome::AlreadyPresent) => {
                        model.insert(key.0, value);
                    }
                    (false, InsertOutcome::AlreadyPresent) => {}
                    (fresh, out) => {
                        return Err(Error::Corrupt(format!(
                            "oracle: insert {key:?} (fresh={fresh}) returned {out:?}"
                        )));
                    }
                }
            }
            6..=7 => {
                let got = client.find(key)?;
                let want = model.get(&key.0).copied().map(Value);
                if got != want {
                    return Err(Error::Corrupt(format!(
                        "oracle: find {key:?} returned {got:?}, model says {want:?}"
                    )));
                }
            }
            _ => {
                let present = model.remove(&key.0).is_some();
                let out = client.delete(key)?;
                match (present, out) {
                    (true, DeleteOutcome::Deleted | DeleteOutcome::NotFound) => {}
                    (false, DeleteOutcome::NotFound) => {}
                    (present, out) => {
                        return Err(Error::Corrupt(format!(
                            "oracle: delete {key:?} (present={present}) returned {out:?}"
                        )));
                    }
                }
            }
        }
    }
    // Read-back sweep: every key this client ever touched must agree
    // with the model, live or deleted.
    for k in 0..span {
        let key = Key(base | k);
        let got = client.find(key)?;
        let want = model.get(&key.0).copied().map(Value);
        if got != want {
            return Err(Error::Corrupt(format!(
                "oracle: sweep find {key:?} returned {got:?}, model says {want:?}"
            )));
        }
    }
    Ok(model.len())
}

/// `ceh client --cluster <spec> [...] <command>`: one operation (or a
/// whole checked workload) against a running TCP cluster.
pub fn run_client(args: &[String]) -> Result<String> {
    if args.iter().any(|a| a == "--help" || a == "help") {
        return Ok(CLIENT_HELP.to_string());
    }
    let (flags, pos) = split_flags(args)?;
    let spec = spec_from(&flags)?;
    let client_node = flag_u64(&flags, "node", 1000)?;
    let client_node = u16::try_from(client_node)
        .map_err(|_| Error::Config(format!("--node {client_node}: not a plane node id")))?;
    let opts = node_options(&flags)?;
    let retry = RetryPolicy {
        attempts: flag_u64(&flags, "attempts", 10)? as u32,
        timeout_ms: flag_u64(&flags, "timeout-ms", 500)?,
        base_backoff_ms: 1,
        max_backoff_ms: 50,
    };

    let Some(cmd) = pos.first() else {
        return Err(Error::Config(format!("missing command\n\n{CLIENT_HELP}")));
    };
    let arg_u64 = |i: usize, what: &str| -> Result<u64> {
        let v = pos
            .get(i)
            .ok_or_else(|| Error::Config(format!("{cmd}: missing {what}")))?;
        let v = v.strip_prefix("0x").map_or_else(
            || v.parse::<u64>().map_err(|e| e.to_string()),
            |hex| u64::from_str_radix(hex, 16).map_err(|e| e.to_string()),
        );
        v.map_err(|e| Error::Config(format!("{cmd}: bad {what}: {e}")))
    };

    let conn = TcpClusterClient::connect(&spec, client_node, retry, &opts)?;
    let out = match cmd.as_str() {
        "put" => {
            let (k, v) = (arg_u64(1, "key")?, arg_u64(2, "value")?);
            match conn.client().insert(Key(k), Value(v))? {
                InsertOutcome::Inserted => "inserted".to_string(),
                InsertOutcome::AlreadyPresent => "already present".to_string(),
            }
        }
        "get" => {
            let k = arg_u64(1, "key")?;
            match conn.client().find(Key(k))? {
                Some(Value(v)) => v.to_string(),
                None => "absent".to_string(),
            }
        }
        "del" => {
            let k = arg_u64(1, "key")?;
            match conn.client().delete(Key(k))? {
                DeleteOutcome::Deleted => "deleted".to_string(),
                DeleteOutcome::NotFound => "absent".to_string(),
            }
        }
        "fill" => {
            let n = arg_u64(1, "count")?;
            let client = conn.client();
            for k in 0..n {
                client.insert(Key(k), Value(k * 31 + 7))?;
            }
            format!("filled {n}")
        }
        "workload" => {
            let ops = flag_u64(&flags, "ops", 300)?;
            let clients = flag_u64(&flags, "clients", 2)?.max(1);
            let seed = flag_u64(&flags, "seed", 0)?;
            let conn_ref = &conn;
            let live = std::thread::scope(|s| -> Result<usize> {
                let handles: Vec<_> = (0..clients)
                    .map(|c| s.spawn(move || workload_thread(conn_ref, c, ops, seed)))
                    .collect();
                let mut live = 0;
                for h in handles {
                    live += h
                        .join()
                        .map_err(|_| Error::Io("workload thread panicked".into()))??;
                }
                Ok(live)
            })?;
            format!(
                "oracle ok ({} ops across {clients} clients, {live} keys live)",
                ops * clients
            )
        }
        "shutdown" => {
            conn.shutdown_cluster();
            return Ok("cluster shutdown requested".to_string());
        }
        "stats" => {
            let mut lines = Vec::new();
            for (i, (role, addr)) in spec.nodes.iter().enumerate() {
                let state = conn
                    .plane()
                    .peer_state(spec.node_id(i))
                    .map(|s| format!("{s:?}"))
                    .unwrap_or_else(|| "unknown".to_string());
                lines.push(format!("node {i} ({role}@{addr}): {state}"));
            }
            lines.push(RunReport::collect("client", &conn.metrics()).to_table());
            lines.join("\n")
        }
        other => {
            return Err(Error::Config(format!(
                "unknown client command '{other}'\n\n{CLIENT_HELP}"
            )));
        }
    };
    conn.close();
    Ok(out)
}
