//! # ceh-cli — command parsing and execution for the `ceh` binary
//!
//! A small durable key-value index tool over the Solution-2 concurrent
//! extendible hash file with a file-backed page store:
//!
//! ```text
//! $ ceh /tmp/my.index put 42 4200
//! inserted
//! $ ceh /tmp/my.index get 42
//! 4200
//! $ ceh /tmp/my.index            # no command → REPL
//! ceh> stats
//! records: 1, depth: 0, buckets: 1
//! ```
//!
//! Parsing lives here (unit-testable); the binary is a thin wrapper.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod check;
pub mod serve;
pub mod top;
pub use check::{run_check, CHECK_HELP};
pub use serve::{run_client, run_serve, CLIENT_HELP, SERVE_HELP};
pub use top::{run_live_stats, run_live_trace, run_top, STATS_HELP, TOP_HELP};

use std::sync::Arc;

use ceh_core::{invariants, ConcurrentHashFile, FileCore, Solution2};
use ceh_locks::{LockManager, LockManagerConfig};
use ceh_obs::{MetricsHandle, RunReport};
use ceh_storage::{PageStore, PageStoreConfig};
use ceh_types::bucket::Bucket;
use ceh_types::{
    hash_key, DeleteOutcome, Error, HashFileConfig, InsertOutcome, Key, Result, Value,
};

/// A parsed CLI command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Insert a key/value pair.
    Put(Key, Value),
    /// Look up a key.
    Get(Key),
    /// Delete a key.
    Del(Key),
    /// List every key/value (quiescent snapshot), in key order.
    Scan,
    /// Print structural and operation statistics, plus the unified
    /// metrics run report.
    Stats,
    /// Emit the metrics run report as JSON (`stats json`).
    StatsJson,
    /// Render the directory-and-buckets diagram (the paper's Figure 1/3
    /// notation).
    Dump,
    /// Run the full invariant check.
    Verify,
    /// Bulk-insert `n` deterministic filler records.
    Fill(u64),
    /// Print command help.
    Help,
    /// Leave the REPL.
    Quit,
}

/// Parse one command line. Numbers accept decimal or `0x…` hex.
pub fn parse_command(line: &str) -> std::result::Result<Command, String> {
    let mut parts = line.split_whitespace();
    let cmd = parts.next().ok_or("empty command")?;
    let mut arg = |name: &str| -> std::result::Result<u64, String> {
        let raw = parts
            .next()
            .ok_or_else(|| format!("{cmd}: missing <{name}>"))?;
        parse_u64(raw).ok_or_else(|| format!("{cmd}: <{name}> must be a number, got {raw:?}"))
    };
    let parsed = match cmd {
        "put" | "insert" | "set" => Command::Put(Key(arg("key")?), Value(arg("value")?)),
        "get" | "find" => Command::Get(Key(arg("key")?)),
        "del" | "delete" | "rm" => Command::Del(Key(arg("key")?)),
        "scan" | "list" => Command::Scan,
        // `stats` takes an optional output format: `stats json`.
        "stats" | "info" => match parts.next() {
            None => Command::Stats,
            Some("json") => Command::StatsJson,
            Some(other) => {
                return Err(format!(
                    "{cmd}: unknown format {other:?} (only `{cmd} json`)"
                ))
            }
        },
        "dump" | "render" => Command::Dump,
        "verify" | "check" => Command::Verify,
        "fill" => Command::Fill(arg("n")?),
        "help" | "?" => Command::Help,
        "quit" | "exit" | "q" => Command::Quit,
        other => return Err(format!("unknown command {other:?} (try `help`)")),
    };
    if let Some(extra) = parts.next() {
        return Err(format!("{cmd}: unexpected trailing argument {extra:?}"));
    }
    Ok(parsed)
}

fn parse_u64(raw: &str) -> Option<u64> {
    if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        raw.parse().ok()
    }
}

/// The help text.
pub const HELP: &str = "\
commands:
  put <key> <value>   insert (add-if-absent)
  get <key>           look up
  del <key>           delete
  scan                list all records in key order
  stats [json]        structure + operation statistics and the metrics
                      run report (as a table, or as JSON with `json`)
  dump                render the directory/bucket diagram
  verify              run the full structural invariant check
  fill <n>            bulk-insert n deterministic filler records
  help                this text
  quit                exit the REPL
numbers are decimal or 0x-prefixed hex";

/// The open index: a Solution-2 file over a file-backed store.
pub struct Index {
    file: Solution2,
}

impl Index {
    /// Open (recovering) or create the index at `path`.
    pub fn open(path: &std::path::Path) -> Result<Index> {
        let cfg = HashFileConfig::default().with_bucket_capacity(126); // 2 KiB pages
        let store_cfg = PageStoreConfig {
            page_size: Bucket::page_size_for(cfg.bucket_capacity),
            initial_pages: 0,
            ..Default::default()
        };
        // One registry for the whole index: store, locks, and operation
        // counters all report into it (surfaced by `stats` / `stats json`).
        let metrics = MetricsHandle::new();
        let locks = Arc::new(LockManager::with_metrics(
            LockManagerConfig::default(),
            &metrics,
        ));
        let core = if path.exists() {
            let store = Arc::new(PageStore::open_file_with_metrics(
                path, store_cfg, &metrics,
            )?);
            FileCore::recover_with_metrics(cfg, store, locks, hash_key, &metrics)?
        } else {
            let store = Arc::new(PageStore::create_file_with_metrics(
                path, store_cfg, &metrics,
            )?);
            FileCore::with_parts_metrics(cfg, store, locks, hash_key, &metrics)?
        };
        Ok(Index {
            file: Solution2::from_core(core),
        })
    }

    /// The unified run report over this index's metrics registry.
    fn report(&self) -> RunReport {
        RunReport::collect("ceh-cli", &self.file.metrics())
            .with_meta("impl", self.file.name())
            .with_meta("records", ConcurrentHashFile::len(&self.file))
    }

    /// Execute one command, returning the text to print.
    pub fn execute(&self, cmd: Command) -> Result<String> {
        Ok(match cmd {
            Command::Put(k, v) => match self.file.insert(k, v)? {
                InsertOutcome::Inserted => "inserted".into(),
                InsertOutcome::AlreadyPresent => "already present (not overwritten)".into(),
            },
            Command::Get(k) => match self.file.find(k)? {
                Some(v) => v.0.to_string(),
                None => "(not found)".into(),
            },
            Command::Del(k) => match self.file.delete(k)? {
                DeleteOutcome::Deleted => "deleted".into(),
                DeleteOutcome::NotFound => "(not found)".into(),
            },
            Command::Scan => {
                let snap = invariants::snapshot_core(self.file.core())?;
                let mut records: Vec<(u64, u64)> = snap
                    .buckets
                    .values()
                    .flat_map(|b| b.records.iter().map(|r| (r.key.0, r.value.0)))
                    .collect();
                records.sort_unstable();
                let mut out = String::new();
                for (k, v) in &records {
                    out.push_str(&format!("{k} = {v}\n"));
                }
                out.push_str(&format!("({} records)", records.len()));
                out
            }
            Command::Stats => {
                let core = self.file.core();
                let s = core.stats().snapshot();
                format!(
                    "records: {}, depth: {}, buckets: {}, load factor: {:.2}\n\
                     ops: {} finds ({} hits), {} inserts, {} deletes\n\
                     restructuring: {} splits, {} merges, {} doublings, {} halvings\n\
                     recoveries: {} wrong-bucket chases ({:.2} mean hops)",
                    core.len(),
                    core.dir().depth(),
                    core.store().allocated_pages(),
                    core.len() as f64
                        / (core.store().allocated_pages().max(1) * core.config().bucket_capacity)
                            as f64,
                    s.finds_hit + s.finds_miss,
                    s.finds_hit,
                    s.inserts + s.inserts_duplicate,
                    s.deletes + s.deletes_miss,
                    s.splits,
                    s.merges,
                    s.doublings,
                    s.halvings,
                    s.wrong_bucket_recoveries,
                    s.mean_recovery_hops(),
                ) + &format!("\n\n{}", self.report().to_table())
            }
            Command::StatsJson => self.report().to_json(),
            Command::Dump => {
                let snap = invariants::snapshot_core(self.file.core())?;
                if snap.entries.len() > 64 {
                    format!(
                        "directory too large to draw ({} entries at depth {}); try `stats`",
                        snap.entries.len(),
                        snap.depth
                    )
                } else {
                    snap.render().trim_end().to_string()
                }
            }
            Command::Verify => {
                invariants::check_concurrent_file(self.file.core())?;
                "all structural invariants hold".into()
            }
            Command::Fill(n) => {
                let mut inserted = 0u64;
                for i in 0..n {
                    let k = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 16;
                    if self.file.insert(Key(k), Value(i))? == InsertOutcome::Inserted {
                        inserted += 1;
                    }
                }
                format!("inserted {inserted} of {n}")
            }
            Command::Help => HELP.into(),
            Command::Quit => "bye".into(),
        })
    }

    /// The record count.
    pub fn len(&self) -> usize {
        ConcurrentHashFile::len(&self.file)
    }

    /// Is the index empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Convenience: parse + execute, mapping parse errors into [`Error`].
pub fn run_line(index: &Index, line: &str) -> Result<String> {
    let cmd = parse_command(line).map_err(Error::Config)?;
    index.execute(cmd)
}

/// Help text for `ceh trace`.
pub const TRACE_HELP: &str = "\
usage: ceh trace <workload> [--json]
workloads:
  lookup   seed 64 records, then 64 finds
  mixed    interleaved inserts, finds, and deletes (splits included)
  churn    grow then shrink (splits, merges, garbage collection)
--json emits Chrome trace-format JSON (load via chrome://tracing or
https://ui.perfetto.dev); the default is an indented per-trace timeline
followed by the lock-contention profile";

/// Run a small seeded cluster with tracing on and render the causal
/// traces — `ceh trace <workload>`. The cluster is deterministic (no
/// fault plan, zero-latency network), so the trace shape is stable
/// across runs apart from timings.
pub fn run_trace(workload: &str, json: bool) -> Result<String> {
    let ops: Vec<(char, u64)> = match workload {
        "lookup" => (0..64u64)
            .map(|i| ('p', i))
            .chain((0..64u64).map(|i| ('g', i)))
            .collect(),
        "mixed" => (0..96u64)
            .map(|i| match i % 3 {
                0 => ('p', i),
                1 => ('g', i.saturating_sub(1)),
                _ => ('d', i.saturating_sub(2)),
            })
            .collect(),
        "churn" => (0..64u64)
            .map(|i| ('p', i))
            .chain((0..64u64).map(|i| ('d', i)))
            .collect(),
        other => {
            return Err(Error::Config(format!(
                "unknown trace workload {other:?}\n{TRACE_HELP}"
            )))
        }
    };
    let cluster = ceh_dist::Cluster::start(ceh_dist::ClusterConfig {
        dir_managers: 2,
        bucket_managers: 2,
        file: HashFileConfig::tiny(),
        ..Default::default()
    })?;
    // Large enough for these workloads: an overflowing ring truncates
    // trace trees (the report would warn).
    cluster.metrics().tracer().enable(1 << 16);
    let client = cluster.client();
    // Spread keys so the tiny buckets split and routing crosses sites.
    let spread = |i: u64| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 16;
    for (op, i) in ops {
        let key = Key(spread(i));
        match op {
            'p' => {
                client.insert(key, Value(i))?;
            }
            'g' => {
                client.find(key)?;
            }
            _ => {
                client.delete(key)?;
            }
        }
    }
    cluster.quiesce(std::time::Duration::from_secs(30));
    let report = cluster.trace_report();
    let out = if json {
        report.to_chrome_json()
    } else {
        format!("{}\n{}", report.to_timeline(), report.contention_table())
    };
    cluster.shutdown();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_command() {
        assert_eq!(
            parse_command("put 1 2").unwrap(),
            Command::Put(Key(1), Value(2))
        );
        assert_eq!(
            parse_command("set 0x10 0xff").unwrap(),
            Command::Put(Key(16), Value(255))
        );
        assert_eq!(parse_command("get 7").unwrap(), Command::Get(Key(7)));
        assert_eq!(parse_command("del 7").unwrap(), Command::Del(Key(7)));
        assert_eq!(parse_command("scan").unwrap(), Command::Scan);
        assert_eq!(parse_command("stats").unwrap(), Command::Stats);
        assert_eq!(parse_command("stats json").unwrap(), Command::StatsJson);
        assert_eq!(parse_command("info json").unwrap(), Command::StatsJson);
        assert!(parse_command("stats xml").is_err(), "unknown format");
        assert_eq!(parse_command("dump").unwrap(), Command::Dump);
        assert_eq!(parse_command("verify").unwrap(), Command::Verify);
        assert_eq!(parse_command("fill 100").unwrap(), Command::Fill(100));
        assert_eq!(parse_command("help").unwrap(), Command::Help);
        assert_eq!(parse_command("quit").unwrap(), Command::Quit);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_command("").is_err());
        assert!(parse_command("put 1").is_err(), "missing value");
        assert!(parse_command("put 1 2 3").is_err(), "trailing junk");
        assert!(parse_command("get banana").is_err(), "non-numeric key");
        assert!(parse_command("launch_missiles").is_err());
    }

    fn temp_index(tag: &str) -> (Index, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!("ceh-cli-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cli.index");
        (Index::open(&path).unwrap(), path)
    }

    #[test]
    fn end_to_end_session() {
        let (index, path) = temp_index("session");
        assert_eq!(run_line(&index, "put 42 4200").unwrap(), "inserted");
        assert_eq!(
            run_line(&index, "put 42 9").unwrap(),
            "already present (not overwritten)"
        );
        assert_eq!(run_line(&index, "get 42").unwrap(), "4200");
        assert_eq!(run_line(&index, "get 43").unwrap(), "(not found)");
        assert!(run_line(&index, "fill 500")
            .unwrap()
            .starts_with("inserted"));
        let stats = run_line(&index, "stats").unwrap();
        assert!(stats.contains("records: 501"));
        assert!(
            stats.contains("run report") && stats.contains("core.inserts"),
            "stats carries the metrics table: {stats}"
        );
        let json = run_line(&index, "stats json").unwrap();
        let doc = ceh_obs::json::parse(&json).expect("stats json parses");
        assert!(
            doc.get("counters")
                .and_then(|c| c.get("storage.writes"))
                .and_then(|v| v.as_u64())
                .unwrap_or(0)
                > 0,
            "page writes flow into the report: {json}"
        );
        assert_eq!(
            run_line(&index, "verify").unwrap(),
            "all structural invariants hold"
        );
        let scan = run_line(&index, "scan").unwrap();
        assert!(scan.contains("42 = 4200"));
        assert!(scan.ends_with("(501 records)"));
        let dump = run_line(&index, "dump").unwrap();
        assert!(
            dump.contains("depth") || dump.contains("directory too large"),
            "dump renders: {dump}"
        );
        assert_eq!(run_line(&index, "del 42").unwrap(), "deleted");
        assert_eq!(run_line(&index, "del 42").unwrap(), "(not found)");
        drop(index);

        // Reopen: durable.
        let reopened = Index::open(&path).unwrap();
        assert_eq!(reopened.len(), 500);
        assert_eq!(run_line(&reopened, "get 42").unwrap(), "(not found)");
        assert_eq!(
            run_line(&reopened, "verify").unwrap(),
            "all structural invariants hold"
        );
        std::fs::remove_file(&path).unwrap();
    }
}
