//! `ceh top` — a live cluster dashboard over the admin endpoints —
//! plus the `--addr` live modes of `ceh stats` and `ceh trace`.
//!
//! All three commands speak the same protocol: dial the cluster,
//! send each node a `StatsRequest`, and render the JSON snapshots
//! that come back (see `ceh_dist::admin` and
//! `schemas/live_snapshot.schema.json`). A node that does not answer
//! within the poll deadline is a **stale row**, never an error or a
//! hang: the dashboard must stay useful against exactly the
//! half-dead clusters it exists to diagnose.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::time::Duration;

use ceh_dist::{AdminClient, ClusterSpec, NodeStats};
use ceh_obs::json::Json;
use ceh_types::{Error, Result};

use crate::serve::{flag_u64, node_options, spec_from, split_flags, status};

/// Usage text for `ceh top`.
pub const TOP_HELP: &str = "\
ceh top --cluster <spec> [options]
  poll every node's admin endpoint and render a per-node table:
  ops/s and p50/p99 over the snapshot window, in-flight requests,
  peer-supervisor states, slow-op counts, uptime. Nodes that do not
  answer within the poll deadline show as 'stale' rows.

  --once                poll once and exit (for scripting)
  --json                machine-readable output (with --once: one
                        document; otherwise one document per refresh)
  --slow                also dump each node's slow-op log entries
                        (latency, kind, key, trace id for
                        cross-referencing into `ceh trace` timelines)
  --interval-ms <n>     refresh interval (default 1000)
  --timeout-ms <n>      per-poll deadline before marking rows stale
                        (default 2000)
  --node <id>           this poller's plane node id (default 1500;
                        must exceed the spec length and be unique
                        among concurrently connected clients)
  --bootstrap-ms, --seed   as for `ceh client`";

/// Usage text for `ceh stats` (live mode).
pub const STATS_HELP: &str = "\
ceh stats --cluster <spec> --addr <host:port> [--json]
  fetch one live node's full snapshot (counters, gauges, windowed
  rates and percentiles, peer states, slow ops) from its admin
  endpoint. <host:port> must be the node's spec address. --json
  prints the raw snapshot document. --timeout-ms bounds the wait
  (default 2000).";

/// Walk a dotted path through nested JSON objects.
fn at<'j>(doc: &'j Json, path: &[&str]) -> Option<&'j Json> {
    let mut cur = doc;
    for p in path {
        cur = cur.get(p)?;
    }
    Some(cur)
}

fn num(doc: &Json, path: &[&str]) -> f64 {
    at(doc, path).and_then(Json::as_f64).unwrap_or(0.0)
}

/// The node's windowed operation rate: directory requests plus bucket
/// ops over the window span (a node serves one role, so at most one of
/// the two counters is nonzero).
fn ops_per_sec(doc: &Json) -> f64 {
    let span = num(doc, &["window", "seconds"]);
    if span <= 0.0 {
        return 0.0;
    }
    let ops = num(doc, &["window", "counters", "dist.requests"])
        + num(doc, &["window", "counters", "dist.bucket_ops"]);
    ops / span
}

/// The latency histogram the node's role actually records into.
fn latency_hist(doc: &Json) -> Option<&Json> {
    at(doc, &["window", "hists", "dist.request_ns"])
        .filter(|h| h.get("count").and_then(Json::as_u64).unwrap_or(0) > 0)
        .or_else(|| at(doc, &["window", "hists", "dist.bucket_op_ns"]))
}

fn ms(ns: f64) -> String {
    format!("{:.2}", ns / 1e6)
}

/// One rendered table row.
fn row(stats: &NodeStats) -> String {
    // NodeRole/SocketAddr write straight through `Display`, skipping
    // the formatter's padding — stringify first so columns line up.
    let role = stats.role.to_string();
    let addr = stats.addr.to_string();
    let id = format!("{:>4}  {role:<6} {addr:<21}", stats.node);
    let Some(doc) = &stats.snapshot else {
        return format!("{id} STALE");
    };
    let (p50, p99) = latency_hist(doc).map_or((0.0, 0.0), |h| (num(h, &["p50"]), num(h, &["p99"])));
    let slow = num(doc, &["slow_ops", "buffered"]);
    let dropped = num(doc, &["slow_ops", "dropped"]);
    let slow = if dropped > 0.0 {
        format!("{slow}+{dropped}d")
    } else {
        format!("{slow}")
    };
    let peers = match at(doc, &["peers"]) {
        Some(Json::Obj(m)) => {
            let down = m
                .values()
                .filter(|v| !matches!(v.as_str(), Some("healthy")))
                .count();
            if down == 0 {
                "all-healthy".to_string()
            } else {
                format!("{down}/{} unhealthy", m.len())
            }
        }
        _ => "?".to_string(),
    };
    format!(
        "{id} live  {:>8.1} {:>9} {:>9} {:>8} {:>6} {:>6.0} {peers}",
        ops_per_sec(doc),
        ms(p50),
        ms(p99),
        num(doc, &["gauges", "dist.inflight"]),
        slow,
        num(doc, &["uptime_seconds"]),
    )
}

/// The whole dashboard for one poll.
fn render_table(rows: &[NodeStats], slow: bool) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>4}  {:<6} {:<21} {:<5} {:>8} {:>9} {:>9} {:>8} {:>6} {:>6} peers\n",
        "NODE", "ROLE", "ADDR", "STATE", "OPS/S", "P50(ms)", "P99(ms)", "INFLIGHT", "SLOW", "UP(s)"
    ));
    for r in rows {
        out.push_str(&row(r));
        out.push('\n');
    }
    let live = rows.iter().filter(|r| !r.is_stale()).count();
    let total_ops: f64 = rows
        .iter()
        .filter_map(|r| r.snapshot.as_ref())
        .map(ops_per_sec)
        .sum();
    out.push_str(&format!(
        "cluster: {live}/{} nodes answering, {total_ops:.1} ops/s\n",
        rows.len()
    ));
    if slow {
        out.push_str(&render_slow(rows));
    }
    out.trim_end().to_string()
}

/// The slow-op dump (`--slow`): every captured entry, newest last,
/// with the trace id that links it into a `ceh trace` timeline.
fn render_slow(rows: &[NodeStats]) -> String {
    let mut out = String::from("slow ops (latency over each node's --slow-ms threshold):\n");
    let mut any = false;
    for r in rows {
        let Some(doc) = &r.snapshot else { continue };
        if let Some(Json::Arr(entries)) = at(doc, &["slow_ops", "entries"]) {
            for e in entries {
                any = true;
                out.push_str(&format!(
                    "  node {:>3} {:<14} {:>9}ms  key={} trace={:#x} age={:.1}s\n",
                    r.node,
                    at(e, &["kind"]).and_then(Json::as_str).unwrap_or("?"),
                    ms(num(e, &["latency_ns"])),
                    num(e, &["key"]),
                    num(e, &["trace_id"]) as u64,
                    num(e, &["age_ms"]) / 1e3,
                ));
            }
        }
    }
    if !any {
        out.push_str("  (none recorded)\n");
    }
    out
}

/// The `--json` document: cluster identity plus one entry per node,
/// with `snapshot` absent on stale rows (see
/// `schemas/live_snapshot.schema.json`).
fn render_json(spec: &ClusterSpec, rows: Vec<NodeStats>) -> String {
    let nodes = rows
        .into_iter()
        .map(|r| {
            let mut m = BTreeMap::new();
            m.insert("node".to_string(), Json::Num(f64::from(r.node)));
            m.insert("addr".to_string(), Json::Str(r.addr.to_string()));
            m.insert("role".to_string(), Json::Str(r.role.to_string()));
            m.insert("stale".to_string(), Json::Bool(r.snapshot.is_none()));
            if let Some(doc) = r.snapshot {
                m.insert("snapshot".to_string(), doc);
            }
            Json::Obj(m)
        })
        .collect();
    let mut root = BTreeMap::new();
    root.insert("cluster".to_string(), Json::Str(spec.to_string()));
    root.insert("nodes".to_string(), Json::Arr(nodes));
    let mut out = String::new();
    ceh_obs::json::write(&mut out, &Json::Obj(root));
    out
}

struct TopArgs {
    spec: ClusterSpec,
    admin: AdminClient,
    timeout: Duration,
    interval: Duration,
    flags: HashMap<String, String>,
}

fn connect(args: &[String], default_node: u16) -> Result<TopArgs> {
    let (flags, pos) = split_flags(args)?;
    if !pos.is_empty() {
        return Err(Error::Config(format!(
            "unexpected argument '{}'\n\n{TOP_HELP}",
            pos[0]
        )));
    }
    let spec = spec_from(&flags)?;
    let opts = node_options(&flags)?;
    let client_node = flag_u64(&flags, "node", u64::from(default_node))?;
    let client_node = u16::try_from(client_node)
        .map_err(|_| Error::Config(format!("--node {client_node}: not a plane node id")))?;
    let timeout = Duration::from_millis(flag_u64(&flags, "timeout-ms", 2_000)?);
    let interval = Duration::from_millis(flag_u64(&flags, "interval-ms", 1_000)?);
    let admin = AdminClient::connect(&spec, client_node, &opts)?;
    Ok(TopArgs {
        spec,
        admin,
        timeout,
        interval,
        flags,
    })
}

/// `ceh top --cluster <spec> [...]`: the live cluster dashboard.
pub fn run_top(args: &[String]) -> Result<String> {
    if args.iter().any(|a| a == "--help" || a == "help") {
        return Ok(TOP_HELP.to_string());
    }
    let t = connect(args, 1500)?;
    let json = t.flags.contains_key("json");
    let slow = t.flags.contains_key("slow");
    if t.flags.contains_key("once") {
        let rows = t.admin.poll(t.timeout);
        let out = if json {
            render_json(&t.spec, rows)
        } else {
            render_table(&rows, slow)
        };
        t.admin.close();
        return Ok(out);
    }
    loop {
        let rows = t.admin.poll(t.timeout);
        if json {
            status(&render_json(&t.spec, rows));
        } else {
            status(&render_table(&rows, slow));
            status("");
        }
        std::thread::sleep(t.interval);
    }
}

/// Find the spec entry `--addr` names.
fn addr_index(spec: &ClusterSpec, flags: &HashMap<String, String>) -> Result<usize> {
    let addr = flags
        .get("addr")
        .ok_or_else(|| Error::Config(format!("--addr <host:port> is required\n\n{STATS_HELP}")))?;
    let parsed: Option<SocketAddr> = addr.parse().ok();
    spec.nodes
        .iter()
        .position(|(_, a)| Some(*a) == parsed || a.to_string() == *addr)
        .ok_or_else(|| Error::Config(format!("--addr {addr}: not an address in the cluster spec")))
}

/// Poll the cluster and pull out the `--addr` node's row.
fn poll_one(t: &TopArgs, idx: usize) -> NodeStats {
    let mut rows = t.admin.poll(t.timeout);
    rows.swap_remove(idx)
}

/// `ceh stats --cluster <spec> --addr <host:port>`: one live node's
/// full snapshot, rendered (or raw with `--json`).
pub fn run_live_stats(args: &[String]) -> Result<String> {
    if args.iter().any(|a| a == "--help" || a == "help") || args.is_empty() {
        return Ok(STATS_HELP.to_string());
    }
    let t = connect(args, 1501)?;
    let idx = addr_index(&t.spec, &t.flags)?;
    let row = poll_one(&t, idx);
    let out = build_stats_output(&t, row)?;
    t.admin.close();
    Ok(out)
}

fn build_stats_output(t: &TopArgs, row: NodeStats) -> Result<String> {
    let Some(doc) = &row.snapshot else {
        return Ok(format!(
            "node {} ({}@{}): stale — no answer within {}ms",
            row.node,
            row.role,
            row.addr,
            t.timeout.as_millis()
        ));
    };
    if t.flags.contains_key("json") {
        let mut out = String::new();
        ceh_obs::json::write(&mut out, doc);
        return Ok(out);
    }
    let mut out = format!(
        "node {} ({}@{}) — up {:.0}s, version {} ({})\n",
        row.node,
        row.role,
        row.addr,
        num(doc, &["uptime_seconds"]),
        at(doc, &["build", "version"])
            .and_then(Json::as_str)
            .unwrap_or("?"),
        at(doc, &["build", "git"])
            .and_then(Json::as_str)
            .unwrap_or("?"),
    );
    for section in ["counters", "gauges"] {
        if let Some(Json::Obj(m)) = at(doc, &[section]) {
            if m.is_empty() {
                continue;
            }
            out.push_str(&format!("{section}:\n"));
            for (k, v) in m {
                out.push_str(&format!("  {k} = {}\n", v.as_f64().unwrap_or(0.0)));
            }
        }
    }
    out.push_str(&format!(
        "window ({:.1}s): {:.1} ops/s\n",
        num(doc, &["window", "seconds"]),
        ops_per_sec(doc)
    ));
    if let Some(Json::Obj(hists)) = at(doc, &["window", "hists"]) {
        for (k, h) in hists {
            out.push_str(&format!(
                "  {k}: n={} p50={}ms p99={}ms max={}ms\n",
                num(h, &["count"]),
                ms(num(h, &["p50"])),
                ms(num(h, &["p99"])),
                ms(num(h, &["max"])),
            ));
        }
    }
    if let Some(Json::Obj(peers)) = at(doc, &["peers"]) {
        out.push_str("peers:\n");
        for (k, v) in peers {
            out.push_str(&format!("  node {k}: {}\n", v.as_str().unwrap_or("?")));
        }
    }
    out.push_str(&render_slow(std::slice::from_ref(&row)));
    Ok(out.trim_end().to_string())
}

/// `ceh trace --addr <host:port> --cluster <spec>`: the live half of
/// `ceh trace` — dump the node's slow-op log, whose trace ids
/// cross-reference into the offline trace timelines.
pub fn run_live_trace(args: &[String]) -> Result<String> {
    let t = connect(args, 1502)?;
    let idx = addr_index(&t.spec, &t.flags)?;
    let row = poll_one(&t, idx);
    t.admin.close();
    if row.is_stale() {
        return Ok(format!(
            "node {} ({}@{}): stale — no answer within {}ms",
            row.node,
            row.role,
            row.addr,
            t.timeout.as_millis()
        ));
    }
    Ok(render_slow(std::slice::from_ref(&row))
        .trim_end()
        .to_string())
}
