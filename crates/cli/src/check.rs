//! `ceh check` — the offline verification entry point.
//!
//! Thin argv-level wrapper over [`ceh_check`]: schedule exploration
//! ([`ceh_check::explore`]), fixture replay ([`ceh_check::replay`]), and
//! the lock-discipline lint ([`ceh_check::lint_paths`]). See
//! [`CHECK_HELP`] for the surface.

use std::fmt::Write as _;

use ceh_check::{explore, lint_paths, replay, ExploreConfig, ScheduleFixture, Workload};
use ceh_types::{Error, Result};

/// Help text for `ceh check`.
pub const CHECK_HELP: &str = "\
usage: ceh check [--explore [WORKLOAD ...]] [--lint [PATH ...]]
                 [--replay FIXTURE ...] [--bound N] [--no-dpor]
modes (default: --explore over every workload, then --lint crates):
  --explore [WORKLOAD ...]  run the named workloads (default: all) under
                            every schedule up to the preemption bound,
                            checking invariants + linearizability per run
  --lint [PATH ...]         run the lock-discipline lint (default: crates)
  --replay FIXTURE ...      replay schedule fixture files; a reproduced
                            violation is reported (and fails the check)
  --list-workloads          print workload names and exit
options:
  --bound N                 preemption bound for --explore (default 3)
  --no-dpor                 disable commutativity pruning (slower, but
                            the coverage claim needs no heuristic)
exit status: 0 clean, 1 violations or lint findings, 2 usage error";

/// Parsed `ceh check` invocation.
struct Args {
    explore_workloads: Option<Vec<String>>,
    lint_paths: Option<Vec<String>>,
    replay_fixtures: Vec<String>,
    bound: usize,
    dpor: bool,
    list: bool,
}

fn parse_args(argv: &[String]) -> Result<Args> {
    let mut a = Args {
        explore_workloads: None,
        lint_paths: None,
        replay_fixtures: Vec::new(),
        bound: 3,
        dpor: true,
        list: false,
    };
    let mut mode: Option<&'static str> = None;
    let mut it = argv.iter().peekable();
    let mut explicit = false;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--explore" => {
                a.explore_workloads.get_or_insert_with(Vec::new);
                mode = Some("explore");
                explicit = true;
            }
            "--lint" => {
                a.lint_paths.get_or_insert_with(Vec::new);
                mode = Some("lint");
                explicit = true;
            }
            "--replay" => {
                mode = Some("replay");
                explicit = true;
            }
            "--list-workloads" => a.list = true,
            "--no-dpor" => a.dpor = false,
            "--bound" => {
                let n = it
                    .next()
                    .ok_or_else(|| Error::Config("--bound needs a number".into()))?;
                a.bound = n
                    .parse()
                    .map_err(|_| Error::Config(format!("--bound: bad number {n:?}")))?;
            }
            "--help" | "-h" => {
                return Err(Error::Config(CHECK_HELP.into()));
            }
            flag if flag.starts_with('-') => {
                return Err(Error::Config(format!("unknown flag {flag}\n{CHECK_HELP}")));
            }
            operand => match mode {
                Some("explore") => a
                    .explore_workloads
                    .get_or_insert_with(Vec::new)
                    .push(operand.to_string()),
                Some("lint") => a
                    .lint_paths
                    .get_or_insert_with(Vec::new)
                    .push(operand.to_string()),
                Some("replay") => a.replay_fixtures.push(operand.to_string()),
                _ => {
                    return Err(Error::Config(format!(
                        "unexpected operand {operand:?}\n{CHECK_HELP}"
                    )))
                }
            },
        }
    }
    if !explicit && !a.list {
        // Default: full sweep.
        a.explore_workloads = Some(Vec::new());
        a.lint_paths = Some(Vec::new());
    }
    Ok(a)
}

/// Run `ceh check` with the argv tail after the subcommand. Returns the
/// report and whether everything came back clean (`false` ⇒ exit 1).
pub fn run_check(argv: &[String]) -> Result<(String, bool)> {
    let args = parse_args(argv)?;
    let mut out = String::new();
    let mut clean = true;

    if args.list {
        for w in Workload::all() {
            let _ = writeln!(out, "{:<26} {}", w.name, w.description);
        }
        return Ok((out, true));
    }

    if let Some(names) = &args.explore_workloads {
        let workloads: Vec<Workload> = if names.is_empty() {
            Workload::all()
        } else {
            names
                .iter()
                .map(|n| {
                    Workload::by_name(n).ok_or_else(|| {
                        Error::Config(format!("unknown workload {n:?} (try --list-workloads)"))
                    })
                })
                .collect::<Result<_>>()?
        };
        let cfg = ExploreConfig {
            preemption_bound: args.bound,
            dpor: args.dpor,
            ..Default::default()
        };
        for w in &workloads {
            let report = explore(w, &cfg).map_err(Error::Config)?;
            match &report.violation {
                None => {
                    let _ = writeln!(
                        out,
                        "explore {:<26} clean: {} schedules at bound {}{}{}",
                        w.name,
                        report.schedules,
                        args.bound,
                        if args.dpor {
                            " (dpor)"
                        } else {
                            " (exhaustive)"
                        },
                        if report.truncated { " [TRUNCATED]" } else { "" },
                    );
                }
                Some(v) => {
                    clean = false;
                    let _ = writeln!(
                        out,
                        "explore {:<26} VIOLATION after {} schedules: {}",
                        w.name, report.schedules, v.detail
                    );
                    let _ = writeln!(
                        out,
                        "--- minimized fixture (save under tests/fixtures/schedules/) ---"
                    );
                    out.push_str(&v.to_fixture().serialize());
                    let _ = writeln!(out, "---");
                }
            }
        }
    }

    for path in &args.replay_fixtures {
        let text = std::fs::read_to_string(path)
            .map_err(|e| Error::Config(format!("cannot read fixture {path}: {e}")))?;
        let fix = ScheduleFixture::parse(&text).map_err(Error::Config)?;
        match replay(&fix).map_err(Error::Config)? {
            Some(detail) => {
                clean = false;
                let _ = writeln!(out, "replay  {path}: VIOLATION reproduced: {detail}");
            }
            None => {
                let _ = writeln!(out, "replay  {path}: clean");
            }
        }
    }

    if let Some(paths) = &args.lint_paths {
        let paths: Vec<std::path::PathBuf> = if paths.is_empty() {
            vec![std::path::PathBuf::from("crates")]
        } else {
            paths.iter().map(std::path::PathBuf::from).collect()
        };
        let findings = lint_paths(&paths).map_err(Error::Config)?;
        if findings.is_empty() {
            let _ = writeln!(out, "lint    clean");
        } else {
            clean = false;
            for f in &findings {
                let _ = writeln!(out, "{f}");
            }
            let _ = writeln!(out, "lint    {} finding(s)", findings.len());
        }
    }

    Ok((out, clean))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn list_workloads_prints_all() {
        let (out, clean) = run_check(&s(&["--list-workloads"])).unwrap();
        assert!(clean);
        for w in Workload::all() {
            assert!(out.contains(w.name), "missing {} in {out}", w.name);
        }
    }

    #[test]
    fn explore_one_workload_is_clean() {
        let (out, clean) =
            run_check(&s(&["--explore", "s1-insert-insert-split", "--bound", "2"])).unwrap();
        assert!(clean, "{out}");
        assert!(out.contains("clean"), "{out}");
    }

    #[test]
    fn unknown_workload_is_a_usage_error() {
        assert!(run_check(&s(&["--explore", "no-such-workload"])).is_err());
    }

    #[test]
    fn bad_flag_is_a_usage_error() {
        assert!(run_check(&s(&["--frobnicate"])).is_err());
    }
}
