//! `ceh check` — the offline verification entry point.
//!
//! Thin argv-level wrapper over [`ceh_check`]: schedule exploration
//! ([`ceh_check::explore`]), fixture replay ([`ceh_check::replay`]), the
//! crash-point sweep ([`ceh_check::run_sweep`]), and the lock-discipline
//! lint ([`ceh_check::lint_paths`]). See [`CHECK_HELP`] for the surface.

use std::fmt::Write as _;

use ceh_check::{
    dist_crash_round, explore, lint_paths, replay, CrashConfig, ExploreConfig, ScheduleFixture,
    Workload,
};
use ceh_types::{Error, Result};

/// Help text for `ceh check`.
pub const CHECK_HELP: &str = "\
usage: ceh check [--explore [WORKLOAD ...]] [--lint [PATH ...]]
                 [--replay FIXTURE ...] [--bound N] [--no-dpor]
       ceh check crash [--seed N] [--ops N] [--backend B] [--json] [--no-dist]
       ceh check race [WORKLOAD ...] [--bound N] [--no-dpor]
modes (default: --explore over every workload, then --lint crates):
  --explore [WORKLOAD ...]  run the named workloads (default: all) under
                            every schedule up to the preemption bound,
                            checking invariants + linearizability per run
  --lint [PATH ...]         run the lock-discipline lint (default: crates)
  --replay FIXTURE ...      replay schedule fixture files; a reproduced
                            violation is reported (and fails the check)
  --list-workloads          print workload names and exit
  crash                     run the recovery fuzzer: a seeded workload,
                            power cut at *every* reachable durability
                            point in turn, recovery checked against the
                            durability oracle; then one distributed
                            crash_site/restart_site round
  race                      run the happens-before race detector: first
                            the litmus corpus (every verdict must match
                            its known racy/race-free answer), then the
                            named workloads (default: all) explored with
                            every access race-checked (needs a build
                            with --features check-race)
options:
  --bound N                 preemption bound for --explore (default 3)
  --no-dpor                 disable commutativity pruning (slower, but
                            the coverage claim needs no heuristic)
  --seed N                  crash sweep workload + tear seed
  --ops N                   crash sweep workload length (default 96)
  --backend B               crash sweep medium: memory (default) or file;
                            file runs the same point sweep over real
                            frames/WAL files in a temp dir
  --json                    emit the crash sweep as JSON
  --no-dist                 skip the distributed crash round
exit status: 0 clean, 1 violations or lint findings, 2 usage error";

/// Parsed `ceh check` invocation.
struct Args {
    explore_workloads: Option<Vec<String>>,
    lint_paths: Option<Vec<String>>,
    replay_fixtures: Vec<String>,
    bound: usize,
    dpor: bool,
    list: bool,
    race: bool,
    race_workloads: Vec<String>,
    crash: bool,
    crash_seed: Option<u64>,
    crash_ops: Option<usize>,
    crash_backend: Option<ceh_storage::BackendKind>,
    json: bool,
    dist: bool,
}

fn parse_args(argv: &[String]) -> Result<Args> {
    let mut a = Args {
        explore_workloads: None,
        lint_paths: None,
        replay_fixtures: Vec::new(),
        bound: 3,
        dpor: true,
        list: false,
        race: false,
        race_workloads: Vec::new(),
        crash: false,
        crash_seed: None,
        crash_ops: None,
        crash_backend: None,
        json: false,
        dist: true,
    };
    let mut mode: Option<&'static str> = None;
    let mut it = argv.iter().peekable();
    let mut explicit = false;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--explore" => {
                a.explore_workloads.get_or_insert_with(Vec::new);
                mode = Some("explore");
                explicit = true;
            }
            "--lint" => {
                a.lint_paths.get_or_insert_with(Vec::new);
                mode = Some("lint");
                explicit = true;
            }
            "--replay" => {
                mode = Some("replay");
                explicit = true;
            }
            "--list-workloads" => a.list = true,
            "--no-dpor" => a.dpor = false,
            "--json" => a.json = true,
            "--no-dist" => a.dist = false,
            "--bound" => {
                let n = it
                    .next()
                    .ok_or_else(|| Error::Config("--bound needs a number".into()))?;
                a.bound = n
                    .parse()
                    .map_err(|_| Error::Config(format!("--bound: bad number {n:?}")))?;
            }
            "--seed" => {
                let n = it
                    .next()
                    .ok_or_else(|| Error::Config("--seed needs a number".into()))?;
                a.crash_seed = Some(
                    n.parse()
                        .map_err(|_| Error::Config(format!("--seed: bad number {n:?}")))?,
                );
            }
            "--ops" => {
                let n = it
                    .next()
                    .ok_or_else(|| Error::Config("--ops needs a number".into()))?;
                a.crash_ops = Some(
                    n.parse()
                        .map_err(|_| Error::Config(format!("--ops: bad number {n:?}")))?,
                );
            }
            "--backend" => {
                let b = it
                    .next()
                    .ok_or_else(|| Error::Config("--backend needs memory or file".into()))?;
                a.crash_backend = Some(ceh_storage::BackendKind::parse(b)?);
            }
            "--help" | "-h" => {
                return Err(Error::Config(CHECK_HELP.into()));
            }
            flag if flag.starts_with('-') => {
                return Err(Error::Config(format!("unknown flag {flag}\n{CHECK_HELP}")));
            }
            "crash" if mode.is_none() => {
                a.crash = true;
                mode = Some("crash");
                explicit = true;
            }
            "race" if mode.is_none() => {
                a.race = true;
                mode = Some("race");
                explicit = true;
            }
            operand => match mode {
                Some("explore") => a
                    .explore_workloads
                    .get_or_insert_with(Vec::new)
                    .push(operand.to_string()),
                Some("lint") => a
                    .lint_paths
                    .get_or_insert_with(Vec::new)
                    .push(operand.to_string()),
                Some("replay") => a.replay_fixtures.push(operand.to_string()),
                Some("race") => a.race_workloads.push(operand.to_string()),
                _ => {
                    return Err(Error::Config(format!(
                        "unexpected operand {operand:?}\n{CHECK_HELP}"
                    )))
                }
            },
        }
    }
    if !explicit && !a.list {
        // Default: full sweep.
        a.explore_workloads = Some(Vec::new());
        a.lint_paths = Some(Vec::new());
    }
    Ok(a)
}

/// Run `ceh check` with the argv tail after the subcommand. Returns the
/// report and whether everything came back clean (`false` ⇒ exit 1).
pub fn run_check(argv: &[String]) -> Result<(String, bool)> {
    let args = parse_args(argv)?;
    let mut out = String::new();
    let mut clean = true;

    if args.list {
        for w in Workload::all() {
            let _ = writeln!(out, "{:<26} {}", w.name, w.description);
        }
        return Ok((out, true));
    }

    if args.crash {
        let mut cfg = CrashConfig::default();
        if let Some(seed) = args.crash_seed {
            cfg.seed = seed;
        }
        if let Some(ops) = args.crash_ops {
            cfg.ops = ops;
        }
        if let Some(backend) = args.crash_backend {
            cfg.backend = backend;
        }
        let report = ceh_check::run_sweep(&cfg).map_err(Error::Config)?;
        let dist = if args.dist {
            Some(dist_crash_round(cfg.seed, 24))
        } else {
            None
        };
        let sweep_clean = report.ok();
        let dist_clean = !matches!(&dist, Some(Err(_)));
        clean = clean && sweep_clean && dist_clean;
        if args.json {
            let _ = write!(
                out,
                "{{\"seed\":{},\"ops\":{},\"backend\":\"{}\",\"points\":{},\"outcomes\":[",
                cfg.seed, cfg.ops, cfg.backend, report.points
            );
            for (i, o) in report.outcomes.iter().enumerate() {
                let _ = write!(
                    out,
                    "{}{{\"point\":{},\"acked\":{},\"redo_applied\":{},\"torn_frames\":{},\
                     \"txns_discarded\":{},\"ok\":{}}}",
                    if i > 0 { "," } else { "" },
                    o.point,
                    o.acked,
                    o.redo_applied,
                    o.torn_frames,
                    o.txns_discarded,
                    o.verdict.is_ok()
                );
            }
            let _ = writeln!(
                out,
                "],\"dist_round\":{},\"ok\":{}}}",
                match &dist {
                    None => "null".to_string(),
                    Some(Ok(())) => "true".to_string(),
                    Some(Err(_)) => "false".to_string(),
                },
                sweep_clean && dist_clean
            );
        } else {
            let _ = writeln!(
                out,
                "crash sweep: seed {}, {} ops, {} backend, {} durability points",
                cfg.seed, cfg.ops, cfg.backend, report.points
            );
            let _ = writeln!(
                out,
                "point  acked  redo  torn  discarded  inflight / verdict"
            );
            for o in &report.outcomes {
                let _ = writeln!(
                    out,
                    "{:>5}  {:>5}  {:>4}  {:>4}  {:>9}  {}",
                    o.point,
                    o.acked,
                    o.redo_applied,
                    o.torn_frames,
                    o.txns_discarded,
                    match &o.verdict {
                        Ok(()) => match &o.inflight {
                            Some(op) => format!("ok ({op:?} in flight, atomic)"),
                            None => "ok".to_string(),
                        },
                        Err(v) => format!("VIOLATION: {v}"),
                    }
                );
            }
            for f in &report.failures {
                let _ = writeln!(
                    out,
                    "--- minimized fixture (save under tests/fixtures/crashes/) ---"
                );
                out.push_str(&f.serialize());
                let _ = writeln!(out, "---");
            }
            match &dist {
                None => {}
                Some(Ok(())) => {
                    let _ = writeln!(out, "dist    crash_site/restart_site round: clean");
                }
                Some(Err(e)) => {
                    let _ = writeln!(out, "dist    crash_site/restart_site round: FAILED: {e}");
                }
            }
            let _ = writeln!(
                out,
                "crash   {}: {}/{} points recovered clean",
                if sweep_clean && dist_clean {
                    "clean"
                } else {
                    "FAILED"
                },
                report.outcomes.iter().filter(|o| o.verdict.is_ok()).count(),
                report.points
            );
        }
    }

    if args.race {
        run_race(&args, &mut out, &mut clean)?;
    }

    if let Some(names) = &args.explore_workloads {
        let workloads: Vec<Workload> = if names.is_empty() {
            Workload::all()
        } else {
            names
                .iter()
                .map(|n| {
                    Workload::by_name(n).ok_or_else(|| {
                        Error::Config(format!("unknown workload {n:?} (try --list-workloads)"))
                    })
                })
                .collect::<Result<_>>()?
        };
        let cfg = ExploreConfig {
            preemption_bound: args.bound,
            dpor: args.dpor,
            ..Default::default()
        };
        for w in &workloads {
            let report = explore(w, &cfg).map_err(Error::Config)?;
            match &report.violation {
                None => {
                    let _ = writeln!(
                        out,
                        "explore {:<26} clean: {} schedules at bound {}{}{}",
                        w.name,
                        report.schedules,
                        args.bound,
                        if args.dpor {
                            " (dpor)"
                        } else {
                            " (exhaustive)"
                        },
                        if report.truncated { " [TRUNCATED]" } else { "" },
                    );
                }
                Some(v) => {
                    clean = false;
                    let _ = writeln!(
                        out,
                        "explore {:<26} VIOLATION after {} schedules: {}",
                        w.name, report.schedules, v.detail
                    );
                    let _ = writeln!(
                        out,
                        "--- minimized fixture (save under tests/fixtures/schedules/) ---"
                    );
                    out.push_str(&v.to_fixture().serialize());
                    let _ = writeln!(out, "---");
                }
            }
        }
    }

    for path in &args.replay_fixtures {
        let text = std::fs::read_to_string(path)
            .map_err(|e| Error::Config(format!("cannot read fixture {path}: {e}")))?;
        let fix = ScheduleFixture::parse(&text).map_err(Error::Config)?;
        match replay(&fix).map_err(Error::Config)? {
            Some(detail) => {
                clean = false;
                let _ = writeln!(out, "replay  {path}: VIOLATION reproduced: {detail}");
            }
            None => {
                let _ = writeln!(out, "replay  {path}: clean");
            }
        }
    }

    if let Some(paths) = &args.lint_paths {
        let paths: Vec<std::path::PathBuf> = if paths.is_empty() {
            vec![std::path::PathBuf::from("crates")]
        } else {
            paths.iter().map(std::path::PathBuf::from).collect()
        };
        let findings = lint_paths(&paths).map_err(Error::Config)?;
        if findings.is_empty() {
            let _ = writeln!(out, "lint    clean");
        } else {
            clean = false;
            for f in &findings {
                let _ = writeln!(out, "{f}");
            }
            let _ = writeln!(out, "lint    {} finding(s)", findings.len());
        }
    }

    Ok((out, clean))
}

/// `ceh check race`: litmus-corpus verdicts, then the workloads explored
/// with the happens-before detector observing every tracked access.
#[cfg(feature = "check-race")]
fn run_race(args: &Args, out: &mut String, clean: &mut bool) -> Result<()> {
    use ceh_check::{explore_litmus, litmus_corpus};

    let cfg = ExploreConfig {
        preemption_bound: args.bound,
        dpor: args.dpor,
        race: true,
        ..Default::default()
    };

    for l in litmus_corpus() {
        let report = explore_litmus(&l, &cfg).map_err(Error::Config)?;
        let matches = report.verdict_matches();
        *clean = *clean && matches;
        let verdict = match (&report.violation, matches) {
            (None, true) => "race-free (as known)".to_string(),
            (Some(v), true) => format!("racy (as known): {}", v.detail),
            (None, false) => "MISSED: known racy, detector saw nothing".to_string(),
            (Some(v), false) => format!("FALSE POSITIVE on race-free program: {}", v.detail),
        };
        let _ = writeln!(
            out,
            "race    litmus {:<24} {} [{} schedules]",
            l.name, verdict, report.schedules
        );
    }

    let workloads: Vec<Workload> = if args.race_workloads.is_empty() {
        Workload::all()
    } else {
        args.race_workloads
            .iter()
            .map(|n| {
                Workload::by_name(n).ok_or_else(|| {
                    Error::Config(format!("unknown workload {n:?} (try --list-workloads)"))
                })
            })
            .collect::<Result<_>>()?
    };
    for w in &workloads {
        let report = explore(w, &cfg).map_err(Error::Config)?;
        match &report.violation {
            None => {
                let _ = writeln!(
                    out,
                    "race    {:<26} clean: {} schedules at bound {}{}",
                    w.name,
                    report.schedules,
                    args.bound,
                    if report.truncated { " [TRUNCATED]" } else { "" },
                );
            }
            Some(v) => {
                *clean = false;
                let _ = writeln!(
                    out,
                    "race    {:<26} VIOLATION after {} schedules: {}",
                    w.name, report.schedules, v.detail
                );
                let _ = writeln!(
                    out,
                    "--- minimized fixture (save under tests/fixtures/races/) ---"
                );
                out.push_str(&v.to_fixture().serialize());
                let _ = writeln!(out, "---");
            }
        }
    }
    Ok(())
}

/// Without the `check-race` feature the detector seam compiles to
/// nothing, so there is nothing to observe — fail loudly instead of
/// reporting a vacuous "clean".
#[cfg(not(feature = "check-race"))]
fn run_race(_args: &Args, _out: &mut String, _clean: &mut bool) -> Result<()> {
    Err(Error::Config(
        "ceh check race needs a build with the race detector compiled in: \
         rebuild with `--features check-race` (e.g. \
         `cargo run -p ceh-cli --features check-race --bin ceh -- check race`)"
            .into(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn list_workloads_prints_all() {
        let (out, clean) = run_check(&s(&["--list-workloads"])).unwrap();
        assert!(clean);
        for w in Workload::all() {
            assert!(out.contains(w.name), "missing {} in {out}", w.name);
        }
    }

    #[test]
    fn explore_one_workload_is_clean() {
        let (out, clean) =
            run_check(&s(&["--explore", "s1-insert-insert-split", "--bound", "2"])).unwrap();
        assert!(clean, "{out}");
        assert!(out.contains("clean"), "{out}");
    }

    #[test]
    fn unknown_workload_is_a_usage_error() {
        assert!(run_check(&s(&["--explore", "no-such-workload"])).is_err());
    }

    #[test]
    fn bad_flag_is_a_usage_error() {
        assert!(run_check(&s(&["--frobnicate"])).is_err());
    }

    #[test]
    fn crash_sweep_prints_a_point_table() {
        // Small sweep, no dist round — keep the unit test fast.
        let (out, clean) =
            run_check(&s(&["crash", "--seed", "7", "--ops", "16", "--no-dist"])).unwrap();
        assert!(clean, "{out}");
        assert!(out.contains("durability points"), "{out}");
        assert!(out.contains("point  acked"), "{out}");
        assert!(out.contains("crash   clean"), "{out}");
    }

    #[test]
    fn crash_sweep_json_is_well_formed_enough() {
        let (out, clean) = run_check(&s(&[
            "crash",
            "--seed",
            "7",
            "--ops",
            "12",
            "--no-dist",
            "--json",
        ]))
        .unwrap();
        assert!(clean, "{out}");
        assert!(out.trim_start().starts_with('{'), "{out}");
        assert!(out.contains("\"outcomes\":["), "{out}");
        assert!(out.contains("\"dist_round\":null"), "{out}");
        assert!(out.trim_end().ends_with('}'), "{out}");
    }

    #[test]
    fn crash_sweep_runs_on_the_file_backend() {
        let (out, clean) = run_check(&s(&[
            "crash",
            "--seed",
            "7",
            "--ops",
            "12",
            "--backend",
            "file",
            "--no-dist",
        ]))
        .unwrap();
        assert!(clean, "{out}");
        assert!(out.contains("file backend"), "{out}");
        assert!(out.contains("crash   clean"), "{out}");
    }

    /// On a default build the race mode must refuse to report a vacuous
    /// "clean" — the seam compiled to nothing.
    #[cfg(not(feature = "check-race"))]
    #[test]
    fn race_without_feature_is_a_loud_error() {
        let err = run_check(&s(&["race"])).unwrap_err();
        assert!(format!("{err}").contains("check-race"), "{err}");
    }

    /// With the detector compiled in, `race` runs the litmus corpus
    /// (verdicts must match) and the named workloads race-checked.
    #[cfg(feature = "check-race")]
    #[test]
    fn race_mode_runs_litmus_and_workloads() {
        let (out, clean) =
            run_check(&s(&["race", "s1-insert-insert-split", "--bound", "1"])).unwrap();
        assert!(clean, "{out}");
        assert!(out.contains("race    litmus"), "{out}");
        assert!(out.contains("racy (as known)"), "{out}");
        assert!(out.contains("race-free (as known)"), "{out}");
        assert!(out.contains("s1-insert-insert-split"), "{out}");
    }

    #[test]
    fn race_is_a_mode_not_an_operand() {
        assert!(run_check(&s(&["crash", "race"])).is_err());
    }

    #[test]
    fn crash_flags_validate() {
        assert!(run_check(&s(&["crash", "--seed"])).is_err());
        assert!(run_check(&s(&["crash", "--ops", "many"])).is_err());
        assert!(run_check(&s(&["crash", "--backend", "tape"])).is_err());
    }
}
