//! The `ceh` binary: one-shot commands or a REPL over a durable index.
//!
//! ```sh
//! ceh <index-file>                 # REPL
//! ceh <index-file> put 42 4200     # one-shot
//! ```

use std::io::{BufRead, Write};

use ceh_cli::{parse_command, Command, Index, CHECK_HELP, HELP};

/// Print a line to stdout, exiting quietly if the pipe is gone (`ceh …
/// | head` must not panic).
fn say(text: &str) {
    let mut out = std::io::stdout();
    if writeln!(out, "{text}").is_err() || out.flush().is_err() {
        std::process::exit(0);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(path) = args.first() else {
        eprintln!(
            "usage: ceh <index-file> [command...]\n       ceh trace <workload> [--json]\n       ceh trace --cluster <spec> --addr <host:port>\n       ceh check [...]\n       ceh serve --cluster <spec> --node <i> [...]\n       ceh client --cluster <spec> [...] <command>\n       ceh top --cluster <spec> [--once] [--json] [--slow]\n       ceh stats --cluster <spec> --addr <host:port>\n\n{HELP}\n\n{CHECK_HELP}"
        );
        std::process::exit(2);
    };

    // `ceh check [...]`: offline verification — schedule exploration,
    // fixture replay, and the lock-discipline lint (no index file).
    if path == "check" {
        match ceh_cli::run_check(&args[1..]) {
            Ok((out, clean)) => {
                say(out.trim_end());
                std::process::exit(i32::from(!clean));
            }
            Err(e) => {
                eprintln!("ceh: {e}");
                std::process::exit(2);
            }
        }
    }

    // `ceh serve` / `ceh client`: run the distributed hash file as
    // real processes over TCP (no index file involved).
    if path == "serve" || path == "client" {
        let run = if path == "serve" {
            ceh_cli::run_serve
        } else {
            ceh_cli::run_client
        };
        match run(&args[1..]) {
            Ok(out) => say(&out),
            Err(e) => {
                eprintln!("ceh: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    // `ceh top` / `ceh stats --addr`: poll live admin endpoints.
    if path == "top" || path == "stats" {
        let run = if path == "top" {
            ceh_cli::run_top
        } else {
            ceh_cli::run_live_stats
        };
        match run(&args[1..]) {
            Ok(out) => say(&out),
            Err(e) => {
                eprintln!("ceh: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    // `ceh trace <workload> [--json]`: run a seeded cluster with causal
    // tracing on and print the trace (no index file involved).
    // `ceh trace --addr <host:port> --cluster <spec>` instead dumps a
    // live node's slow-op log (trace ids link the two views).
    if path == "trace" {
        if args.iter().any(|a| a == "--addr") {
            match ceh_cli::run_live_trace(&args[1..]) {
                Ok(out) => say(&out),
                Err(e) => {
                    eprintln!("ceh: {e}");
                    std::process::exit(1);
                }
            }
            return;
        }
        let json = args.iter().any(|a| a == "--json");
        let workload: Vec<&String> = args[1..].iter().filter(|a| *a != "--json").collect();
        let [workload] = workload[..] else {
            eprintln!("{}", ceh_cli::TRACE_HELP);
            std::process::exit(2);
        };
        match ceh_cli::run_trace(workload, json) {
            Ok(out) => say(&out),
            Err(e) => {
                eprintln!("ceh: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    let index = match Index::open(std::path::Path::new(path)) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("ceh: cannot open {path}: {e}");
            std::process::exit(1);
        }
    };

    if args.len() > 1 {
        // One-shot mode: the rest of argv is the command.
        let line = args[1..].join(" ");
        match parse_command(&line)
            .map_err(ceh_types::Error::Config)
            .and_then(|c| index.execute(c))
        {
            Ok(out) => say(&out),
            Err(e) => {
                eprintln!("ceh: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    // REPL mode.
    say(&format!(
        "ceh — extendible hash index at {path} ({} records). `help` for commands.",
        index.len()
    ));
    let stdin = std::io::stdin();
    loop {
        print!("ceh> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("ceh: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match parse_command(line) {
            Ok(Command::Quit) => {
                say("bye");
                break;
            }
            Ok(cmd) => match index.execute(cmd) {
                Ok(out) => say(&out),
                Err(e) => eprintln!("ceh: {e}"),
            },
            Err(msg) => eprintln!("ceh: {msg}"),
        }
    }
}
