//! storage_smoke: durable files surviving a real SIGKILL.
//!
//! transport_smoke proves the cluster runs as processes; this gate
//! proves the *file backend* makes those processes genuinely durable.
//! It spawns `ceh serve --backend file --data-dir <tmp>` children,
//! fills the table with known keys plus a seeded workload, SIGKILLs
//! every bucket manager with no warning, restarts them over the same
//! directories, and then reads every key back — zero acked-data loss,
//! straight off `frames.ceh`/`wal.ceh`. Wired into `scripts/ci.sh` as
//! the `storage smoke` step.

use std::io::Read;
use std::net::{SocketAddr, TcpStream};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn ceh() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ceh"))
}

/// Reserve `n` distinct loopback ports (bind-then-drop, as in
/// transport_smoke).
fn free_addrs(n: usize) -> Vec<SocketAddr> {
    let listeners: Vec<std::net::TcpListener> = (0..n)
        .map(|_| std::net::TcpListener::bind("127.0.0.1:0").expect("bind :0"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("addr"))
        .collect()
}

fn spec_for(addrs: &[SocketAddr]) -> String {
    let mut parts = Vec::new();
    for (i, a) in addrs.iter().enumerate() {
        let role = if i < 2 { "dir" } else { "bucket" };
        parts.push(format!("{role}@{a}"));
    }
    parts.join(",")
}

/// A serve child that is SIGKILLed if the test panics before shutdown.
struct Node {
    child: Child,
    addr: SocketAddr,
}

impl Drop for Node {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawn `ceh serve` for spec entry `idx` and wait until it accepts.
fn spawn_serve(spec: &str, idx: usize, addr: SocketAddr, extra: &[&str]) -> Node {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let mut child = ceh()
            .args(["serve", "--cluster", spec, "--node", &idx.to_string()])
            .args(extra)
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn ceh serve");
        loop {
            if TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_ok() {
                return Node { child, addr };
            }
            match child.try_wait().expect("try_wait") {
                Some(status) => {
                    let mut err = String::new();
                    if let Some(mut e) = child.stderr.take() {
                        let _ = e.read_to_string(&mut err);
                    }
                    assert!(
                        Instant::now() < deadline,
                        "serve node {idx} kept failing: {status} {err}"
                    );
                    std::thread::sleep(Duration::from_millis(100));
                    break; // bind raced TIME_WAIT — spawn again
                }
                None => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }
}

/// Run one `ceh client` command to completion, panicking on failure.
fn client(spec: &str, node: u16, args: &[&str]) -> String {
    let out = ceh()
        .args(["client", "--cluster", spec, "--node", &node.to_string()])
        .args(["--attempts", "60", "--timeout-ms", "250"])
        .args(args)
        .output()
        .expect("run ceh client");
    assert!(
        out.status.success(),
        "ceh client {args:?} failed: {}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn shutdown(spec: &str, node: u16, nodes: Vec<Node>) {
    let out = client(spec, node, &["shutdown"]);
    assert!(out.contains("shutdown requested"), "unexpected: {out}");
    for mut n in nodes {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            match n.child.try_wait().expect("try_wait") {
                Some(status) => {
                    assert!(status.success(), "node at {} exited {status}", n.addr);
                    break;
                }
                None => {
                    assert!(
                        Instant::now() < deadline,
                        "node at {} ignored the shutdown",
                        n.addr
                    );
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
    }
}

/// The gate: fill over the file backend, SIGKILL every bucket manager,
/// restart them over the same directories, read everything back.
#[test]
fn sigkilled_managers_recover_every_acked_key_from_files() {
    let addrs = free_addrs(4);
    let spec = spec_for(&addrs);
    let data = std::env::temp_dir().join(format!("ceh-storage-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data);
    let data_s = data.to_string_lossy().into_owned();
    let flags: Vec<&str> = vec!["--backend", "file", "--data-dir", &data_s];

    let mut nodes: Vec<Node> = addrs
        .iter()
        .enumerate()
        .map(|(i, &a)| spawn_serve(&spec, i, a, &flags))
        .collect();

    // Fill: known keys spread across both bucket managers, plus a
    // seeded workload for volume (splits, frees, checkpoints).
    let keys: Vec<u64> = (0..24).map(|i| i * 97 + 13).collect();
    for (i, &k) in keys.iter().enumerate() {
        let out = client(
            &spec,
            2000 + i as u16,
            &["put", &k.to_string(), &(k * 3).to_string()],
        );
        assert_eq!(out.trim(), "inserted", "put {k}");
    }
    let out = client(
        &spec,
        2100,
        &["workload", "--ops", "120", "--clients", "2", "--seed", "4"],
    );
    assert!(out.contains("oracle ok"), "fill workload failed: {out}");

    // Every `inserted` above was acked after its group-commit fsync.
    // SIGKILL both bucket managers — no flush, no shutdown hook.
    let bucket1 = nodes.pop().expect("bucket 1");
    let bucket0 = nodes.pop().expect("bucket 0");
    drop(bucket0); // Drop kills hard
    drop(bucket1);

    // Restart over the same directories: recovery must come from
    // frames.ceh + wal.ceh, there is nothing else left.
    nodes.push(spawn_serve(&spec, 2, addrs[2], &flags));
    nodes.push(spawn_serve(&spec, 3, addrs[3], &flags));

    for (i, &k) in keys.iter().enumerate() {
        let out = client(&spec, 2200 + i as u16, &["get", &k.to_string()]);
        assert_eq!(
            out.trim(),
            (k * 3).to_string(),
            "key {k} lost across SIGKILL + file recovery"
        );
    }
    let out = client(&spec, 2300, &["stats"]);
    assert!(out.contains("Healthy"), "peers should be healthy: {out}");

    // The recovered cluster keeps working — fresh writes land fine.
    let out = client(&spec, 2301, &["put", "999983", "7"]);
    assert_eq!(out.trim(), "inserted");
    let out = client(&spec, 2302, &["get", "999983"]);
    assert_eq!(out.trim(), "7");

    shutdown(&spec, 2400, nodes);
    let _ = std::fs::remove_dir_all(&data);
}
