//! top_smoke: the live observability plane end to end, as processes.
//!
//! Boots a real 4-node `ceh serve` cluster with an injected per-frame
//! delay and a 1 ms slow-op threshold, drives a short workload, and
//! checks the whole dashboard path: `ceh top --once --json` must return
//! a document that validates against `schemas/live_snapshot.schema.json`
//! with nonzero windowed ops/s, per-node window percentiles, peer
//! supervisor states, and at least one captured slow op. Then a bucket
//! manager is SIGKILLed and the next poll must come back within its
//! bounded deadline with that node as a marked-stale row — never an
//! error or a hang. This is the CI gate wired into `scripts/ci.sh` as
//! `top_smoke`.

use std::net::{SocketAddr, TcpStream};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use ceh_obs::json::{self, Json};

fn ceh() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ceh"))
}

/// Reserve `n` distinct loopback ports (bind-then-drop; the tiny race
/// with other processes is acceptable in tests).
fn free_addrs(n: usize) -> Vec<SocketAddr> {
    let listeners: Vec<std::net::TcpListener> = (0..n)
        .map(|_| std::net::TcpListener::bind("127.0.0.1:0").expect("bind :0"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("addr"))
        .collect()
}

fn spec_for(addrs: &[SocketAddr]) -> String {
    let mut parts = Vec::new();
    for (i, a) in addrs.iter().enumerate() {
        let role = if i < 2 { "dir" } else { "bucket" };
        parts.push(format!("{role}@{a}"));
    }
    parts.join(",")
}

/// A serve child that is SIGKILLed if the test panics before shutdown.
struct Node {
    child: Child,
}

impl Drop for Node {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawn `ceh serve` for spec entry `idx`, retrying while the previous
/// tenant's port lingers in TIME_WAIT, and wait until it accepts.
fn spawn_serve(spec: &str, idx: usize, addr: SocketAddr, extra: &[&str]) -> Node {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let mut child = ceh()
            .args(["serve", "--cluster", spec, "--node", &idx.to_string()])
            .args(extra)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn ceh serve");
        loop {
            if TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_ok() {
                return Node { child };
            }
            match child.try_wait().expect("try_wait") {
                Some(status) => {
                    assert!(
                        Instant::now() < deadline,
                        "serve node {idx} kept failing: {status}"
                    );
                    std::thread::sleep(Duration::from_millis(100));
                    break; // bind raced TIME_WAIT — spawn again
                }
                None => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }
}

/// Run one `ceh` invocation to completion, panicking on failure.
fn run(args: &[&str]) -> String {
    let out = ceh().args(args).output().expect("run ceh");
    assert!(
        out.status.success(),
        "ceh {args:?} failed: {}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn load_schema() -> Json {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../schemas/live_snapshot.schema.json"
    );
    let src = std::fs::read_to_string(path).expect("read live_snapshot.schema.json");
    json::parse(&src).expect("schema parses")
}

/// `ceh top --once --json` against the cluster, parsed and
/// schema-validated.
fn poll_json(spec: &str, node: &str) -> Json {
    let out = run(&[
        "top",
        "--cluster",
        spec,
        "--node",
        node,
        "--once",
        "--json",
        "--timeout-ms",
        "4000",
    ]);
    let doc = json::parse(out.trim()).expect("top --json parses");
    let errors = json::validate(&doc, &load_schema());
    assert!(errors.is_empty(), "schema violations: {errors:?}\n{out}");
    doc
}

fn nodes_of(doc: &Json) -> &Vec<Json> {
    match doc.get("nodes") {
        Some(Json::Arr(a)) => a,
        other => panic!("nodes should be an array, got {other:?}"),
    }
}

fn num(doc: &Json, path: &[&str]) -> f64 {
    let mut cur = doc;
    for p in path {
        cur = match cur.get(p) {
            Some(v) => v,
            None => return 0.0,
        };
    }
    cur.as_f64().unwrap_or(0.0)
}

#[test]
fn live_dashboard_sees_a_working_cluster_and_marks_a_killed_node_stale() {
    let addrs = free_addrs(4);
    let spec = spec_for(&addrs);
    // Every data frame is delayed 5 ms and anything over 1 ms counts as
    // slow: directory request latencies (several delayed round trips)
    // must land in the slow-op log. The stats classes are fault-exempt,
    // so the dashboard itself stays fast.
    let flags = ["--delay", "1:5", "--slow-ms", "1", "--seed", "3"];
    let mut nodes: Vec<Node> = addrs
        .iter()
        .enumerate()
        .map(|(i, &a)| spawn_serve(&spec, i, a, &flags))
        .collect();

    run(&["client", "--cluster", &spec, "--node", "1201", "fill", "30"]);
    let out = run(&[
        "client",
        "--cluster",
        &spec,
        "--node",
        "1202",
        "--seed",
        "4",
        "workload",
        "--ops",
        "60",
        "--clients",
        "2",
    ]);
    assert!(out.contains("oracle ok"), "workload failed: {out}");
    // Let every node's 1 s admin sampler tick so the snapshot window
    // (newest minus oldest ring sample) covers the workload.
    std::thread::sleep(Duration::from_millis(1_500));

    let doc = poll_json(&spec, "1203");
    let rows = nodes_of(&doc);
    assert_eq!(rows.len(), 4);

    let mut windowed_ops = 0.0;
    let mut slow_entries = 0.0;
    let mut tail_latencies = 0;
    for row in rows {
        assert_eq!(row.get("stale"), Some(&Json::Bool(false)), "row: {row:?}");
        let snap = row.get("snapshot").expect("fresh row carries a snapshot");
        // Peer supervisor states: every peer of a healthy cluster
        // reports in (the schema already pins the enum).
        let peers = snap.get("peers").and_then(Json::as_obj).expect("peers");
        assert_eq!(peers.len(), 3, "3 peers per node in a 4-node cluster");
        assert!(
            peers.values().all(|v| v.as_str() == Some("healthy")),
            "all peers healthy before the kill: {peers:?}"
        );
        windowed_ops += num(snap, &["window", "counters", "dist.requests"])
            + num(snap, &["window", "counters", "dist.bucket_ops"]);
        slow_entries += num(snap, &["slow_ops", "buffered"]);
        for hist in ["dist.request_ns", "dist.bucket_op_ns"] {
            if num(snap, &["window", "hists", hist, "count"]) > 0.0 {
                assert!(
                    num(snap, &["window", "hists", hist, "p99"])
                        >= num(snap, &["window", "hists", hist, "p50"]),
                    "window p99 >= p50 for {hist}"
                );
                tail_latencies += 1;
            }
        }
    }
    assert!(
        windowed_ops > 0.0,
        "the workload must show up as windowed ops: {doc:?}"
    );
    assert!(
        tail_latencies > 0,
        "at least one node reports windowed p50/p99"
    );
    assert!(
        slow_entries > 0.0,
        "5 ms frame delays over a 1 ms threshold must capture slow ops"
    );

    // `ceh stats --addr` fetches one node's full snapshot live.
    let stats = run(&[
        "stats",
        "--cluster",
        &spec,
        "--addr",
        &addrs[0].to_string(),
        "--node",
        "1204",
    ]);
    assert!(
        stats.contains("node 1 (dir@") && stats.contains("counters:"),
        "live stats: {stats}"
    );
    // `ceh trace --addr` dumps the slow-op log with trace ids.
    let trace = run(&[
        "trace",
        "--cluster",
        &spec,
        "--addr",
        &addrs[0].to_string(),
        "--node",
        "1205",
    ]);
    assert!(
        trace.contains("trace=0x"),
        "live trace dump carries trace ids: {trace}"
    );

    // Kill bucket manager 1 (spec entry 3) outright. The next poll must
    // return within its bounded deadline with a marked-stale row for the
    // dead node — not an error, not a hang.
    drop(nodes.pop().expect("bucket node")); // Drop SIGKILLs
    let polled = Instant::now();
    let doc = poll_json(&spec, "1206");
    assert!(
        polled.elapsed() < Duration::from_secs(20),
        "stale poll must respect its deadline"
    );
    let rows = nodes_of(&doc);
    for (i, row) in rows.iter().enumerate() {
        let expect_stale = i == 3;
        assert_eq!(
            row.get("stale"),
            Some(&Json::Bool(expect_stale)),
            "row {i}: {row:?}"
        );
        assert_eq!(row.get("snapshot").is_none(), expect_stale);
    }

    // The survivors die by Drop (SIGKILL): graceful shutdown is
    // transport_smoke's business, and a half-dead cluster cannot
    // complete one anyway.
    drop(nodes);
}
