//! transport_smoke: the distributed hash file as *real processes*.
//!
//! Everything else in the test suite runs the TCP plane in-process;
//! this test spawns actual `ceh serve` children, drives them with
//! `ceh client` (a separate process per command), and checks the
//! workload's exact oracle end to end — first over clean sockets, then
//! under a seeded fault plan with a SIGKILLed-and-restarted bucket
//! manager. This is the CI gate for "the paper's distributed design
//! actually runs as a deployment", wired into `scripts/ci.sh`.

use std::io::Read;
use std::net::{SocketAddr, TcpStream};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn ceh() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ceh"))
}

/// Reserve `n` distinct loopback ports (bind-then-drop; the tiny race
/// with other processes is acceptable in tests).
fn free_addrs(n: usize) -> Vec<SocketAddr> {
    let listeners: Vec<std::net::TcpListener> = (0..n)
        .map(|_| std::net::TcpListener::bind("127.0.0.1:0").expect("bind :0"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("addr"))
        .collect()
}

fn spec_for(addrs: &[SocketAddr]) -> String {
    let mut parts = Vec::new();
    for (i, a) in addrs.iter().enumerate() {
        let role = if i < 2 { "dir" } else { "bucket" };
        parts.push(format!("{role}@{a}"));
    }
    parts.join(",")
}

/// A serve child that is SIGKILLed if the test panics before shutdown.
struct Node {
    child: Child,
    addr: SocketAddr,
}

impl Drop for Node {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawn `ceh serve` for spec entry `idx`, retrying while the previous
/// tenant's port lingers in TIME_WAIT, and wait until it accepts.
fn spawn_serve(spec: &str, idx: usize, addr: SocketAddr, extra: &[&str]) -> Node {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let mut child = ceh()
            .args(["serve", "--cluster", spec, "--node", &idx.to_string()])
            .args(extra)
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn ceh serve");
        // Up when the listener accepts; dead if the child exited first.
        loop {
            if TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_ok() {
                return Node { child, addr };
            }
            match child.try_wait().expect("try_wait") {
                Some(status) => {
                    let mut err = String::new();
                    if let Some(mut e) = child.stderr.take() {
                        let _ = e.read_to_string(&mut err);
                    }
                    assert!(
                        Instant::now() < deadline,
                        "serve node {idx} kept failing: {status} {err}"
                    );
                    std::thread::sleep(Duration::from_millis(100));
                    break; // bind raced TIME_WAIT — spawn again
                }
                None => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }
}

/// Run one `ceh client` command to completion, panicking on failure.
fn client(spec: &str, node: u16, args: &[&str]) -> String {
    let out = ceh()
        .args(["client", "--cluster", spec, "--node", &node.to_string()])
        .args(args)
        .output()
        .expect("run ceh client");
    assert!(
        out.status.success(),
        "ceh client {args:?} failed: {}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Ask the cluster to shut down and verify every child exits cleanly.
fn shutdown(spec: &str, node: u16, nodes: Vec<Node>) {
    let out = client(spec, node, &["shutdown"]);
    assert!(out.contains("shutdown requested"), "unexpected: {out}");
    for mut n in nodes {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            match n.child.try_wait().expect("try_wait") {
                Some(status) => {
                    assert!(status.success(), "node at {} exited {status}", n.addr);
                    break;
                }
                None => {
                    assert!(
                        Instant::now() < deadline,
                        "node at {} ignored the shutdown",
                        n.addr
                    );
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
    }
}

/// Clean sockets: four manager processes, a filled-and-checked seeded
/// workload, a point lookup from a *different* client process (state
/// visibly lives in the cluster), and a clean shutdown.
#[test]
fn processes_over_clean_sockets_pass_the_oracle() {
    let addrs = free_addrs(4);
    let spec = spec_for(&addrs);
    let nodes: Vec<Node> = addrs
        .iter()
        .enumerate()
        .map(|(i, &a)| spawn_serve(&spec, i, a, &[]))
        .collect();

    let out = client(&spec, 1001, &["put", "7", "700"]);
    assert_eq!(out.trim(), "inserted");
    let out = client(&spec, 1002, &["get", "7"]);
    assert_eq!(
        out.trim(),
        "700",
        "a second process sees the first's insert"
    );

    let out = client(
        &spec,
        1003,
        &["workload", "--ops", "150", "--clients", "2", "--seed", "5"],
    );
    assert!(
        out.contains("oracle ok"),
        "workload failed the oracle: {out}"
    );

    let out = client(&spec, 1004, &["stats"]);
    assert!(out.contains("Healthy"), "peers should be healthy: {out}");

    shutdown(&spec, 1005, nodes);
}

/// The acceptance gate: seeded drops + duplication + severs on every
/// plane, a bucket manager SIGKILLed mid-workload and restarted from
/// its data directory — and the workload still passes its exact oracle.
#[test]
fn chaos_with_process_crash_and_restart_passes_the_oracle() {
    let addrs = free_addrs(4);
    let spec = spec_for(&addrs);
    let data = std::env::temp_dir().join(format!("ceh-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data);
    let data_s = data.to_string_lossy().into_owned();

    let fault_flags: Vec<String> = [
        "--seed",
        "11",
        "--drop",
        "0.02",
        "--dup",
        "0.01",
        "--sever",
        "0.002",
        "--data-dir",
        &data_s,
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let flags: Vec<&str> = fault_flags.iter().map(String::as_str).collect();

    let mut nodes: Vec<Node> = addrs
        .iter()
        .enumerate()
        .map(|(i, &a)| spawn_serve(&spec, i, a, &flags))
        .collect();

    // The workload runs concurrently with the crash below. Generous
    // retries: at-least-once is the contract the oracle tolerates.
    let workload = ceh()
        .args(["client", "--cluster", &spec, "--node", "1100"])
        .args(["--attempts", "120", "--timeout-ms", "250", "--seed", "9"])
        .args(["workload", "--ops", "250", "--clients", "2"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn workload");

    // Let it get going, then SIGKILL bucket manager 1 (spec entry 3)
    // and bring it back from its pages.
    std::thread::sleep(Duration::from_millis(1_500));
    let crashed = nodes.pop().expect("bucket node");
    drop(crashed); // Drop kills the child hard
    std::thread::sleep(Duration::from_millis(500));
    nodes.push(spawn_serve(&spec, 3, addrs[3], &flags));

    let out = workload.wait_with_output().expect("workload outcome");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success() && stdout.contains("oracle ok"),
        "chaos workload failed: {stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );

    shutdown(&spec, 1101, nodes);
    let _ = std::fs::remove_dir_all(&data);
}
