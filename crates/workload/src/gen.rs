//! The operation stream generator.

use ceh_types::{Key, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::keys::{KeyDist, KeySampler};
use crate::mix::OpMix;

/// One generated operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Look up the key.
    Find(Key),
    /// Insert the key/value.
    Insert(Key, Value),
    /// Delete the key.
    Delete(Key),
}

impl Op {
    /// The key the operation targets.
    pub fn key(&self) -> Key {
        match *self {
            Op::Find(k) | Op::Delete(k) => k,
            Op::Insert(k, _) => k,
        }
    }
}

/// A seeded stream of operations drawn from a key distribution and an
/// operation mix. Deterministic per `(seed, dist, mix, space)`.
///
/// ```
/// use ceh_workload::{KeyDist, Op, OpMix, WorkloadGen};
///
/// let mut gen = WorkloadGen::new(42, KeyDist::Zipf { theta: 0.99 }, 1 << 16, OpMix::READ_MOSTLY);
/// let ops = gen.batch(1000);
/// let finds = ops.iter().filter(|o| matches!(o, Op::Find(_))).count();
/// assert!(finds > 800, "read-mostly mix is ~90% finds, got {finds}");
/// ```
#[derive(Debug)]
pub struct WorkloadGen {
    rng: StdRng,
    sampler: KeySampler,
    mix: OpMix,
    counter: u64,
}

impl WorkloadGen {
    /// Build a generator. `space` is the key-space size.
    pub fn new(seed: u64, dist: KeyDist, space: u64, mix: OpMix) -> Self {
        WorkloadGen {
            rng: StdRng::seed_from_u64(seed),
            sampler: KeySampler::new(dist, space),
            mix,
            counter: 0,
        }
    }

    /// Next operation.
    pub fn next_op(&mut self) -> Op {
        let key = self.sampler.sample(&mut self.rng);
        let roll = self.rng.random_range(0..100u32);
        self.counter += 1;
        if roll < self.mix.find_pct {
            Op::Find(key)
        } else if roll < self.mix.find_pct + self.mix.insert_pct {
            Op::Insert(key, Value(self.counter))
        } else {
            Op::Delete(key)
        }
    }

    /// Generate a batch of operations.
    pub fn batch(&mut self, n: usize) -> Vec<Op> {
        (0..n).map(|_| self.next_op()).collect()
    }
}

impl Iterator for WorkloadGen {
    type Item = Op;
    fn next(&mut self) -> Option<Op> {
        Some(self.next_op())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_the_mix_statistically() {
        let mut g = WorkloadGen::new(1, KeyDist::Uniform, 1 << 20, OpMix::BALANCED);
        let (mut f, mut i, mut d) = (0, 0, 0);
        for op in g.batch(10_000) {
            match op {
                Op::Find(_) => f += 1,
                Op::Insert(..) => i += 1,
                Op::Delete(_) => d += 1,
            }
        }
        assert!((4500..5500).contains(&f), "finds {f}");
        assert!((2000..3000).contains(&i), "inserts {i}");
        assert!((2000..3000).contains(&d), "deletes {d}");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = WorkloadGen::new(7, KeyDist::Zipf { theta: 0.9 }, 4096, OpMix::READ_MOSTLY);
        let mut b = WorkloadGen::new(7, KeyDist::Zipf { theta: 0.9 }, 4096, OpMix::READ_MOSTLY);
        assert_eq!(a.batch(200), b.batch(200));
        let mut c = WorkloadGen::new(8, KeyDist::Zipf { theta: 0.9 }, 4096, OpMix::READ_MOSTLY);
        assert_ne!(a.batch(200), c.batch(200));
    }

    #[test]
    fn read_only_mix_never_mutates() {
        let mut g = WorkloadGen::new(3, KeyDist::Uniform, 64, OpMix::READ_ONLY);
        for op in g.batch(1000) {
            assert!(matches!(op, Op::Find(_)));
        }
    }

    #[test]
    fn iterator_interface() {
        let g = WorkloadGen::new(1, KeyDist::Uniform, 64, OpMix::CHURN);
        let ops: Vec<Op> = g.take(10).collect();
        assert_eq!(ops.len(), 10);
        assert!(ops.iter().all(|o| !matches!(o, Op::Find(_))));
    }
}
