//! # ceh-workload — workload generation for the evaluation
//!
//! The paper defers its evaluation to "a future paper"; DESIGN.md §6
//! defines the evaluation this workspace runs instead. This crate
//! supplies its raw material:
//!
//! * [`KeyDist`] — key distributions (uniform, zipfian, sequential,
//!   clustered) over a configurable key-space size;
//! * [`OpMix`] — find/insert/delete proportions, with the named mixes
//!   the experiment tables sweep;
//! * [`WorkloadGen`] — a seeded per-thread stream of [`Op`]s;
//! * [`prefill_keys`] — the deterministic preload set used before
//!   measured phases;
//! * [`LatencyHistogram`] — per-operation latency collection; since the
//!   unified observability core this is a re-export of
//!   [`ceh_obs::Histogram`], so workload latencies share one bucket
//!   layout and percentile definition with every other histogram in
//!   the workspace.
//!
//! Everything is deterministic given a seed, so experiment tables are
//! reproducible run to run.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod gen;
mod keys;
mod mix;

pub use ceh_obs::Histogram as LatencyHistogram;
pub use gen::{Op, WorkloadGen};
pub use keys::{prefill_keys, KeyDist, KeySampler};
pub use mix::OpMix;
