//! Key distributions.

use ceh_types::Key;
use rand::rngs::StdRng;
use rand::Rng;

/// How keys are drawn from the key space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDist {
    /// Uniform over `0..space`.
    Uniform,
    /// Zipf-like (approximated by the classic rejection-free power-law
    /// transform): rank `i` drawn with probability ∝ `1/(i+1)^theta`.
    /// `theta` around 0.99 is the YCSB default.
    Zipf {
        /// Skew parameter; larger = more skew.
        theta: f64,
    },
    /// Sequentially increasing from 0 (each call returns the next key).
    /// Exercises the hash function's avalanche on adjacent keys.
    Sequential,
    /// Clustered: uniform cluster base plus small offset, modelling
    /// locality (e.g. order-id + line-number keys).
    Clustered {
        /// Number of keys per cluster.
        cluster_size: u64,
    },
}

/// Stateful sampler for a [`KeyDist`].
#[derive(Debug, Clone)]
pub struct KeySampler {
    dist: KeyDist,
    space: u64,
    seq: u64,
    /// Precomputed normalization for the zipf CDF-inversion
    /// approximation (Gray et al.'s method).
    zipf_zeta: f64,
}

impl KeySampler {
    /// Create a sampler over `0..space`.
    pub fn new(dist: KeyDist, space: u64) -> Self {
        assert!(space > 0);
        let zipf_zeta = match dist {
            KeyDist::Zipf { theta } => zeta(space.min(100_000), theta),
            _ => 0.0,
        };
        KeySampler {
            dist,
            space,
            seq: 0,
            zipf_zeta,
        }
    }

    /// Draw the next key.
    pub fn sample(&mut self, rng: &mut StdRng) -> Key {
        let k = match self.dist {
            KeyDist::Uniform => rng.random_range(0..self.space),
            KeyDist::Sequential => {
                let k = self.seq;
                self.seq = (self.seq + 1) % self.space;
                k
            }
            KeyDist::Clustered { cluster_size } => {
                let clusters = (self.space / cluster_size).max(1);
                let c = rng.random_range(0..clusters);
                c * cluster_size + rng.random_range(0..cluster_size.min(self.space))
            }
            KeyDist::Zipf { theta } => {
                // Inverse-CDF sampling over the truncated harmonic sum.
                let n = self.space.min(100_000);
                let u: f64 = rng.random::<f64>() * self.zipf_zeta;
                let mut sum = 0.0;
                let mut rank = 0u64;
                // Bounded scan with exponentially growing probes keeps
                // this cheap for skewed theta (most mass at low ranks).
                for i in 0..n {
                    sum += 1.0 / ((i + 1) as f64).powf(theta);
                    if sum >= u {
                        rank = i;
                        break;
                    }
                }
                // Scatter ranks over the space so "hot" keys are not
                // numerically adjacent (adjacent keys hash apart anyway,
                // but this avoids accidental cluster artifacts).
                rank.wrapping_mul(0x9E37_79B9_7F4A_7C15) % self.space
            }
        };
        Key(k)
    }
}

fn zeta(n: u64, theta: f64) -> f64 {
    (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(theta)).sum()
}

/// The deterministic preload set: `count` distinct keys spread over
/// `0..space` (multiplicative-hash spacing so buckets fill evenly).
pub fn prefill_keys(count: usize, space: u64) -> Vec<Key> {
    let mut seen = std::collections::HashSet::with_capacity(count);
    let mut out = Vec::with_capacity(count);
    let mut i = 0u64;
    while out.len() < count {
        let k = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % space;
        if seen.insert(k) {
            out.push(Key(k));
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn uniform_covers_space() {
        let mut s = KeySampler::new(KeyDist::Uniform, 16);
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            let k = s.sample(&mut rng);
            assert!(k.0 < 16);
            seen.insert(k.0);
        }
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn sequential_wraps() {
        let mut s = KeySampler::new(KeyDist::Sequential, 3);
        let mut rng = StdRng::seed_from_u64(1);
        let got: Vec<u64> = (0..7).map(|_| s.sample(&mut rng).0).collect();
        assert_eq!(got, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn zipf_is_skewed() {
        let mut s = KeySampler::new(KeyDist::Zipf { theta: 0.99 }, 10_000);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..20_000 {
            *counts.entry(s.sample(&mut rng).0).or_insert(0usize) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        assert!(
            max > 20_000 / 100,
            "zipf(0.99) should concentrate >1% of draws on the hottest key, max={max}"
        );
        assert!(counts.len() > 100, "but still touch many keys");
    }

    #[test]
    fn clustered_stays_in_clusters() {
        let mut s = KeySampler::new(KeyDist::Clustered { cluster_size: 10 }, 1000);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let k = s.sample(&mut rng);
            assert!(k.0 < 1000);
        }
    }

    #[test]
    fn prefill_is_distinct_and_deterministic() {
        let a = prefill_keys(1000, 1 << 30);
        let b = prefill_keys(1000, 1 << 30);
        assert_eq!(a, b);
        let set: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(set.len(), 1000);
    }

    #[test]
    fn samplers_are_reproducible() {
        for dist in [
            KeyDist::Uniform,
            KeyDist::Zipf { theta: 0.8 },
            KeyDist::Clustered { cluster_size: 16 },
        ] {
            let mut s1 = KeySampler::new(dist, 4096);
            let mut s2 = KeySampler::new(dist, 4096);
            let mut r1 = StdRng::seed_from_u64(9);
            let mut r2 = StdRng::seed_from_u64(9);
            for _ in 0..100 {
                assert_eq!(s1.sample(&mut r1), s2.sample(&mut r2));
            }
        }
    }
}
