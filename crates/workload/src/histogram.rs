//! A log-bucketed latency histogram.
//!
//! Recording is O(1) and allocation-free after construction; memory is
//! fixed (one `u64` counter per bucket) no matter how many samples are
//! recorded — unlike the collect-and-sort approach, which distorts
//! long-running latency measurements by the allocation traffic of the
//! sample vector itself. Buckets are logarithmic with `SUB_BUCKETS`
//! linear sub-buckets per octave, giving ≤ ~6% relative quantile error
//! across the full `u64` range.

/// Linear sub-buckets per power-of-two octave. 16 → worst-case relative
/// error of 1/16 ≈ 6.25% within a bucket.
const SUB_BUCKETS: usize = 16;
const OCTAVES: usize = 64;

/// A fixed-size histogram of `u64` samples (typically nanoseconds).
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    max: u64,
    min: u64,
    sum: u128,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; OCTAVES * SUB_BUCKETS],
            total: 0,
            max: 0,
            min: u64::MAX,
            sum: 0,
        }
    }

    fn bucket_of(value: u64) -> usize {
        if value < SUB_BUCKETS as u64 {
            return value as usize;
        }
        let octave = 63 - value.leading_zeros() as usize;
        // Position within the octave, scaled to SUB_BUCKETS.
        let sub = ((value >> (octave - 4)) as usize) & (SUB_BUCKETS - 1);
        octave * SUB_BUCKETS + sub
    }

    /// Lower bound of a bucket (the value a quantile reports).
    fn bucket_floor(idx: usize) -> u64 {
        let octave = idx / SUB_BUCKETS;
        let sub = (idx % SUB_BUCKETS) as u64;
        if octave < 4 {
            // Values below SUB_BUCKETS are exact.
            return (octave * SUB_BUCKETS) as u64 + sub;
        }
        (1u64 << octave) + (sub << (octave - 4))
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_of(value)] += 1;
        self.total += 1;
        self.max = self.max.max(value);
        self.min = self.min.min(value);
        self.sum += value as u128;
    }

    /// Number of samples.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// No samples yet?
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact maximum recorded value.
    pub fn max(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            self.max
        }
    }

    /// Exact minimum recorded value.
    pub fn min(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            self.min
        }
    }

    /// Exact mean.
    pub fn mean(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Approximate quantile (`0.0..=1.0`), within one sub-bucket (~6%).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.is_empty() {
            return 0;
        }
        let rank =
            ((q.clamp(0.0, 1.0) * (self.total - 1) as f64).round() as u64).min(self.total - 1);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen > rank {
                return Self::bucket_floor(idx).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Merge another histogram into this one (per-thread collection).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("samples", &self.total)
            .field("p50", &self.quantile(0.50))
            .field("p99", &self.quantile(0.99))
            .field("max", &self.max())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_calm() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 15);
        assert_eq!(h.len(), 16);
    }

    #[test]
    fn quantiles_within_bucket_error() {
        let mut h = LatencyHistogram::new();
        // Uniform 1..=100_000.
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for (q, expect) in [(0.5, 50_000.0), (0.9, 90_000.0), (0.99, 99_000.0)] {
            let got = h.quantile(q) as f64;
            let err = (got - expect).abs() / expect;
            assert!(err < 0.07, "q{q}: got {got}, want ~{expect} (err {err:.3})");
        }
        assert!((h.mean() - 50_000.5).abs() < 1.0);
    }

    #[test]
    fn merge_combines() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for v in [10u64, 20, 30] {
            a.record(v);
        }
        for v in [40u64, 50] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.len(), 5);
        assert_eq!(a.max(), 50);
        assert_eq!(a.min(), 10);
    }

    #[test]
    fn huge_values_do_not_panic() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX / 2);
        h.record(0);
        assert_eq!(h.max(), u64::MAX);
        assert!(h.quantile(1.0) > u64::MAX / 2);
    }

    #[test]
    fn bucket_floor_is_monotone_and_consistent() {
        // Monotone over the buckets values actually map to (indices
        // 16..64 are unreachable: values < 16 go to exact buckets 0..16,
        // values ≥ 16 to octave ≥ 4).
        let mut last_bucket = 0usize;
        let mut last_floor = 0u64;
        let mut v = 0u64;
        while v < (1 << 48) {
            let idx = LatencyHistogram::bucket_of(v);
            if idx != last_bucket {
                assert!(idx > last_bucket, "bucket index regressed at value {v}");
                let floor = LatencyHistogram::bucket_floor(idx);
                assert!(
                    floor >= last_floor,
                    "value {v}: floor {floor} < previous {last_floor}"
                );
                last_bucket = idx;
                last_floor = floor;
            }
            v = (v + 1).max(v + v / 7); // dense at first, then exponential
        }
        // Every value's bucket floor is ≤ the value, within one bucket.
        for v in [0u64, 1, 15, 16, 17, 100, 1_000, 123_456, 1 << 40] {
            let floor = LatencyHistogram::bucket_floor(LatencyHistogram::bucket_of(v));
            assert!(floor <= v, "value {v}: floor {floor}");
            assert!((v - floor) as f64 <= (v as f64 / SUB_BUCKETS as f64) + 1.0);
        }
    }
}
