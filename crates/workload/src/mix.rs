//! Operation mixes.

/// Proportions of find / insert / delete in a workload, in percent.
///
/// Insert and delete proportions are kept equal in the named steady-state
/// mixes so the file size stays roughly constant during measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpMix {
    /// Percent finds.
    pub find_pct: u32,
    /// Percent inserts.
    pub insert_pct: u32,
    /// Percent deletes.
    pub delete_pct: u32,
}

impl OpMix {
    /// Build a mix, checking the percentages sum to 100.
    pub fn new(find_pct: u32, insert_pct: u32, delete_pct: u32) -> Self {
        assert_eq!(
            find_pct + insert_pct + delete_pct,
            100,
            "mix must sum to 100"
        );
        OpMix {
            find_pct,
            insert_pct,
            delete_pct,
        }
    }

    /// 100% reads.
    pub const READ_ONLY: OpMix = OpMix {
        find_pct: 100,
        insert_pct: 0,
        delete_pct: 0,
    };
    /// 90/5/5 — read-mostly.
    pub const READ_MOSTLY: OpMix = OpMix {
        find_pct: 90,
        insert_pct: 5,
        delete_pct: 5,
    };
    /// 50/25/25 — balanced.
    pub const BALANCED: OpMix = OpMix {
        find_pct: 50,
        insert_pct: 25,
        delete_pct: 25,
    };
    /// 10/45/45 — update-heavy.
    pub const UPDATE_HEAVY: OpMix = OpMix {
        find_pct: 10,
        insert_pct: 45,
        delete_pct: 45,
    };
    /// 0/50/50 — pure churn.
    pub const CHURN: OpMix = OpMix {
        find_pct: 0,
        insert_pct: 50,
        delete_pct: 50,
    };

    /// The named mixes the experiment tables sweep, with labels.
    pub const STANDARD_SWEEP: [(&'static str, OpMix); 5] = [
        ("100/0/0", OpMix::READ_ONLY),
        ("90/5/5", OpMix::READ_MOSTLY),
        ("50/25/25", OpMix::BALANCED),
        ("10/45/45", OpMix::UPDATE_HEAVY),
        ("0/50/50", OpMix::CHURN),
    ];

    /// A mix with the given update share, split evenly between inserts
    /// and deletes (the E2 update-fraction sweep).
    pub fn with_update_pct(update_pct: u32) -> Self {
        assert!(update_pct <= 100);
        let ins = update_pct / 2;
        let del = update_pct - ins;
        OpMix::new(100 - update_pct, ins, del)
    }

    /// Fraction of operations that are updates.
    pub fn update_fraction(&self) -> f64 {
        (self.insert_pct + self.delete_pct) as f64 / 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_mixes_sum_to_100() {
        for (_, m) in OpMix::STANDARD_SWEEP {
            assert_eq!(m.find_pct + m.insert_pct + m.delete_pct, 100);
        }
    }

    #[test]
    #[should_panic(expected = "sum to 100")]
    fn bad_mix_panics() {
        OpMix::new(50, 50, 50);
    }

    #[test]
    fn update_pct_builder() {
        let m = OpMix::with_update_pct(30);
        assert_eq!(m.find_pct, 70);
        assert_eq!(m.insert_pct + m.delete_pct, 30);
        assert!((m.update_fraction() - 0.3).abs() < 1e-9);
        OpMix::with_update_pct(0);
        OpMix::with_update_pct(100);
    }
}
