//! # ceh-harness
//!
//! This crate exists to wire the repository-root `examples/` and `tests/`
//! directories into cargo targets (cargo only discovers targets inside a
//! package). It re-exports the workspace's public surface so the examples
//! and integration tests can use one import root.

#![warn(rust_2018_idioms)]

pub use ceh_btree;
pub use ceh_check;
pub use ceh_core;
pub use ceh_dist;
pub use ceh_locks;
pub use ceh_net;
pub use ceh_sequential;
pub use ceh_storage;
pub use ceh_types;
pub use ceh_workload;
