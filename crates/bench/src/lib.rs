//! # ceh-bench — the evaluation harness
//!
//! The paper promises its performance evaluation for "a future paper";
//! DESIGN.md §6 defines the experiments this workspace runs instead, and
//! this crate is their shared machinery:
//!
//! * [`throughput`] — run a fixed mixed workload over any
//!   [`ConcurrentHashFile`] from N threads and report operations/second
//!   plus sampled latency percentiles;
//! * [`preload`] — deterministic prefill before measured phases;
//! * [`md_table`] — uniform markdown table rendering so every `exp_*`
//!   binary's output can be pasted straight into EXPERIMENTS.md.
//!
//! One binary per experiment lives in `src/bin/` (`exp_scaling`,
//! `exp_update_sweep`, …); criterion micro-benchmarks live in `benches/`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ceh_core::ConcurrentHashFile;
use ceh_types::Value;
use ceh_workload::{prefill_keys, KeyDist, LatencyHistogram, Op, OpMix, WorkloadGen};

/// The simulated page-I/O cost used by the throughput experiments:
/// 100 µs per page read/write (a fast disk by the paper's standards; the
/// OS sleep it is implemented with lands around 170 µs on this class of
/// machine, which is fine — it is *a* disk, consistently).
///
/// The paper's buckets are disk-resident: its protocols trade *lock
/// scope* against *I/O concurrency*, so the experiments must charge for
/// I/O — and charge it with a *sleep*, so concurrent I/Os genuinely
/// overlap even on a single-core host — or the lock manager's software
/// overhead (irrelevant in the paper's regime) dominates the comparison.
/// Experiments preload with latency off ([`preload`]) and enable it with
/// [`ceh_core::ConcurrentHashFile::set_io_latency_ns`] for the measured
/// phase. E6 (vs the in-memory B-link tree) and the A2 microbenchmark
/// run without it, and say so.
pub const SIM_IO_LATENCY_NS: u64 = 100_000;

/// Result of one throughput run.
#[derive(Debug, Clone)]
pub struct ThroughputResult {
    /// Total completed operations.
    pub ops: u64,
    /// Wall-clock duration of the measured phase.
    pub elapsed: Duration,
    /// Sampled per-operation latencies (nanoseconds), merged across
    /// worker threads.
    pub latency: LatencyHistogram,
}

impl ThroughputResult {
    /// Operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64()
    }

    /// A latency percentile in microseconds (0.0–100.0). Returns 0 when
    /// no samples were taken.
    pub fn latency_us(&self, pct: f64) -> f64 {
        self.latency.quantile(pct / 100.0) as f64 / 1000.0
    }
}

/// Deterministically preload `count` keys spread over `space`.
pub fn preload(file: &dyn ConcurrentHashFile, count: usize, space: u64) {
    for key in prefill_keys(count, space) {
        file.insert(key, Value(key.0)).expect("preload insert");
    }
}

/// Configuration for a [`throughput`] run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Worker threads.
    pub threads: u64,
    /// Operations per thread.
    pub ops_per_thread: usize,
    /// Key-space size.
    pub key_space: u64,
    /// Key distribution.
    pub dist: KeyDist,
    /// Operation mix.
    pub mix: OpMix,
    /// Sample every Nth operation's latency (0 = no sampling).
    pub latency_sample_every: usize,
    /// Workload seed.
    pub seed: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            threads: 4,
            ops_per_thread: 50_000,
            key_space: 1 << 16,
            dist: KeyDist::Uniform,
            mix: OpMix::BALANCED,
            latency_sample_every: 0,
            seed: 0xE115,
        }
    }
}

/// Run the mixed workload concurrently and measure.
pub fn throughput<F: ConcurrentHashFile + ?Sized + 'static>(
    file: &Arc<F>,
    cfg: &RunConfig,
) -> ThroughputResult {
    let start_flag = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..cfg.threads)
        .map(|t| {
            let file = Arc::clone(file);
            let flag = Arc::clone(&start_flag);
            let cfg = cfg.clone();
            std::thread::spawn(move || {
                let mut gen = WorkloadGen::new(cfg.seed + t, cfg.dist, cfg.key_space, cfg.mix);
                let ops = gen.batch(cfg.ops_per_thread);
                while !flag.load(Ordering::Acquire) {
                    std::hint::spin_loop();
                }
                let hist = LatencyHistogram::new();
                for (i, op) in ops.into_iter().enumerate() {
                    let sample = cfg.latency_sample_every != 0 && i % cfg.latency_sample_every == 0;
                    let t0 = sample.then(Instant::now);
                    match op {
                        Op::Find(k) => {
                            file.find(k).expect("find");
                        }
                        Op::Insert(k, v) => {
                            file.insert(k, v).expect("insert");
                        }
                        Op::Delete(k) => {
                            file.delete(k).expect("delete");
                        }
                    }
                    if let Some(t0) = t0 {
                        hist.record(t0.elapsed().as_nanos() as u64);
                    }
                }
                hist
            })
        })
        .collect();
    let start = Instant::now();
    start_flag.store(true, Ordering::Release);
    let latency = LatencyHistogram::new();
    for h in handles {
        latency.merge(&h.join().expect("worker"));
    }
    let elapsed = start.elapsed();
    ThroughputResult {
        ops: cfg.threads * cfg.ops_per_thread as u64,
        elapsed,
        latency,
    }
}

/// Gather everything `file` recorded during a [`throughput`] run into
/// one [`ceh_obs::RunReport`], tagged with the run's parameters and
/// outcome. Every experiment binary can call this after its measured
/// phase to emit the unified cross-layer report.
pub fn run_report(
    name: &str,
    file: &dyn ConcurrentHashFile,
    cfg: &RunConfig,
    result: &ThroughputResult,
) -> ceh_obs::RunReport {
    ceh_obs::RunReport::collect(name, &file.metrics())
        .with_meta("impl", file.name())
        .with_meta("threads", cfg.threads)
        .with_meta("ops", result.ops)
        .with_meta("ops_per_sec", format!("{:.0}", result.ops_per_sec()))
}

/// Render a markdown table: a header row plus data rows.
pub fn md_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    use std::fmt::Write as _;
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let _ = write!(out, "|");
    for (h, w) in headers.iter().zip(&widths) {
        let _ = write!(out, " {h:>w$} |");
    }
    let _ = writeln!(out);
    let _ = write!(out, "|");
    for w in &widths {
        let _ = write!(out, "{}|", "-".repeat(w + 2));
    }
    let _ = writeln!(out);
    for row in rows {
        let _ = write!(out, "|");
        for (cell, w) in row.iter().zip(&widths) {
            let _ = write!(out, " {cell:>w$} |");
        }
        let _ = writeln!(out);
    }
    out
}

/// Is this a quick run (`CEH_QUICK=1`)? Experiment binaries shrink their
/// parameters so CI can smoke-test them.
pub fn quick_mode() -> bool {
    std::env::var("CEH_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceh_core::Solution2;
    use ceh_types::HashFileConfig;

    #[test]
    fn throughput_runs_and_counts() {
        let f = Arc::new(Solution2::new(HashFileConfig::tiny().with_bucket_capacity(8)).unwrap());
        preload(&*f, 100, 1 << 10);
        let r = throughput(
            &f,
            &RunConfig {
                threads: 2,
                ops_per_thread: 500,
                key_space: 1 << 10,
                latency_sample_every: 10,
                ..Default::default()
            },
        );
        assert_eq!(r.ops, 1000);
        assert!(r.ops_per_sec() > 0.0);
        assert!(!r.latency.is_empty());
        assert!(r.latency_us(99.0) >= r.latency_us(50.0));
    }

    #[test]
    fn md_table_renders() {
        let t = md_table(
            &["threads", "ops/s"],
            &[
                vec!["1".into(), "100".into()],
                vec!["8".into(), "720".into()],
            ],
        );
        assert!(t.contains("| threads |"));
        assert!(t.contains("|   720 |"), "{t}");
        assert_eq!(t.lines().count(), 4);
    }
}
