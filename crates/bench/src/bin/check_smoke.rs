//! CI smoke test for the `ceh-check` verification subsystem.
//!
//! Four gates, all bounded to finish well inside 60 s:
//!
//! 1. **Exhaustive exploration** — every 2-thread workload is run under
//!    *every* schedule at preemption bound 3 with DPOR pruning off (the
//!    coverage claim rests on no heuristic), asserting zero invariant or
//!    linearizability violations and no truncation;
//! 2. **Pruned exploration** — the 3-thread mixed workload at bound 2
//!    with commutativity pruning on, same assertions;
//! 3. **Real-thread linearizability** — a seeded 4-thread workload runs
//!    against Solution 2 on real OS threads (no virtual scheduler), the
//!    recorded operation history is checked exactly against the
//!    sequential model;
//! 4. **Lock-discipline lint** — `ceh-lint` over `crates/` must be
//!    clean.
//!
//! Exits non-zero with a diagnostic on stderr on any failure, so
//! `scripts/ci.sh` can gate on it.

use std::sync::Arc;

use ceh_check::{check_linearizable, explore, lint_paths, ExploreConfig, Strictness, Workload};
use ceh_core::{ConcurrentHashFile, Solution2};
use ceh_types::{HashFileConfig, Key, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn fail(msg: &str) -> ! {
    eprintln!("check_smoke: FAIL: {msg}");
    std::process::exit(1);
}

fn explore_clean(name: &str, cfg: &ExploreConfig) {
    let w = Workload::by_name(name).unwrap_or_else(|| fail(&format!("unknown workload {name}")));
    let r = explore(&w, cfg).unwrap_or_else(|e| fail(&format!("explore {name}: {e}")));
    if let Some(v) = &r.violation {
        fail(&format!(
            "{name} violated at bound {} after {} schedules: {}\nminimized fixture:\n{}",
            cfg.preemption_bound,
            r.schedules,
            v.detail,
            v.to_fixture().serialize()
        ));
    }
    if r.truncated {
        fail(&format!(
            "{name} truncated at {} schedules: coverage claim void",
            r.schedules
        ));
    }
    println!(
        "check_smoke: explore {name:<26} clean: {} schedules at bound {}{}",
        r.schedules,
        cfg.preemption_bound,
        if cfg.dpor { " (dpor)" } else { " (exhaustive)" },
    );
}

/// Seeded real-thread run: preload, then a 4-thread insert/find/delete
/// mix over a small key space with the history log on, checked exactly.
fn real_thread_linearizability() {
    let file =
        Arc::new(Solution2::new(HashFileConfig::tiny().with_bucket_capacity(4)).expect("file"));
    let metrics = file.core().metrics();

    let mut init = std::collections::HashMap::new();
    for k in 0..32u64 {
        if k % 2 == 0 {
            file.insert(Key(k), Value(k + 1000)).expect("preload");
            init.insert(k, k + 1000);
        }
    }

    metrics.history().enable();
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let file = Arc::clone(&file);
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ t);
                for _ in 0..1_500 {
                    let k = rng.random_range(0..64u64);
                    match rng.random_range(0..3u32) {
                        0 => drop(file.find(Key(k)).expect("find")),
                        1 => drop(file.insert(Key(k), Value(k + t * 10_000)).expect("insert")),
                        _ => drop(file.delete(Key(k)).expect("delete")),
                    }
                }
            });
        }
    });
    metrics.history().disable();
    let records = metrics.history().drain();
    match check_linearizable(&init, &records, Strictness::Exact) {
        Ok(rep) => println!(
            "check_smoke: linearizable: {} ops over {} keys on real threads ({} pending)",
            rep.ops, rep.keys, rep.pending
        ),
        Err(v) => fail(&format!("real-thread history not linearizable: {v}")),
    }
}

fn main() {
    // Gate 1: the acceptance-criterion workloads, exhaustively.
    let exhaustive = ExploreConfig {
        preemption_bound: 3,
        dpor: false,
        max_schedules: 500_000,
        race: false,
    };
    for name in [
        "s1-insert-insert-split",
        "s2-insert-insert-split",
        "s2-delete-delete-merge",
    ] {
        explore_clean(name, &exhaustive);
    }

    // Gate 2: three threads, pruned, shallower bound (CI-sized).
    explore_clean(
        "s2-mixed",
        &ExploreConfig {
            preemption_bound: 2,
            dpor: true,
            max_schedules: 500_000,
            race: false,
        },
    );

    // Gate 3: linearizability on genuinely parallel execution.
    real_thread_linearizability();

    // Gate 4: the lint, exactly as CI runs it.
    let findings = lint_paths(&[std::path::PathBuf::from("crates")])
        .unwrap_or_else(|e| fail(&format!("lint: {e}")));
    if !findings.is_empty() {
        for f in &findings {
            eprintln!("{f}");
        }
        fail(&format!("{} lint finding(s)", findings.len()));
    }
    println!("check_smoke: lint clean");
    println!("check_smoke: PASS");
}
