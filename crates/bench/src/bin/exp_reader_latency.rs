//! **E3 — Reader latency under an update storm** (DESIGN.md §6).
//!
//! Claims under test: readers never block on inserters (ρ/α compatible)
//! in either solution, but deleters exclude readers — fully in Solution 1
//! (ξ on the directory for the whole delete) and only around the touched
//! buckets in Solution 2. §2.3 also concedes "lockout of readers is
//! possible if their target buckets are constantly changing" — the p99.9
//! column is that lockout made visible.
//!
//! ```sh
//! cargo run -p ceh-bench --release --bin exp_reader_latency
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use ceh_bench::{md_table, preload, quick_mode};
use ceh_core::{ConcurrentHashFile, GlobalLockFile, Solution1, Solution2};
use ceh_types::{HashFileConfig, Key, Value};
use ceh_workload::{KeyDist, KeySampler};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const READERS: u64 = 4;
const KEY_SPACE: u64 = 1 << 16;

/// Returns sorted reader latencies (ns) while `updaters` churn.
fn measure(file: Arc<dyn ConcurrentHashFile>, updaters: u64, reads_per_reader: usize) -> Vec<u64> {
    preload(&*file, 30_000, KEY_SPACE);
    file.set_io_latency_ns(ceh_bench::SIM_IO_LATENCY_NS);
    let stop = Arc::new(AtomicBool::new(false));
    let churners: Vec<_> = (0..updaters)
        .map(|t| {
            let file = Arc::clone(&file);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(t);
                let mut sampler = KeySampler::new(KeyDist::Uniform, KEY_SPACE);
                // ceh-lint: allow(relaxed-ordering) — shutdown flag; any staleness only delays exit
                while !stop.load(Ordering::Relaxed) {
                    let k = sampler.sample(&mut rng);
                    if rng.random_bool(0.5) {
                        let _ = file.insert(k, Value(k.0));
                    } else {
                        let _ = file.delete(k);
                    }
                }
            })
        })
        .collect();

    let readers: Vec<_> = (0..READERS)
        .map(|t| {
            let file = Arc::clone(&file);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xBEEF + t);
                let mut sampler = KeySampler::new(KeyDist::Uniform, KEY_SPACE);
                let mut lats = Vec::with_capacity(reads_per_reader);
                for _ in 0..reads_per_reader {
                    let k = sampler.sample(&mut rng);
                    let t0 = Instant::now();
                    let _ = file.find(k).unwrap();
                    lats.push(t0.elapsed().as_nanos() as u64);
                }
                lats
            })
        })
        .collect();

    let mut all = Vec::new();
    for r in readers {
        all.extend(r.join().unwrap());
    }
    // ceh-lint: allow(relaxed-ordering) — shutdown flag; joins below synchronize
    stop.store(true, Ordering::Relaxed);
    for c in churners {
        c.join().unwrap();
    }
    all.sort_unstable();
    all
}

fn pct(v: &[u64], p: f64) -> f64 {
    v[((p / 100.0) * (v.len() - 1) as f64).round() as usize] as f64 / 1000.0
}

fn main() {
    let cfg = HashFileConfig::default().with_bucket_capacity(64);
    let reads = if quick_mode() { 200 } else { 2_000 };
    let updater_counts: &[u64] = if quick_mode() {
        &[0, 8]
    } else {
        &[0, 2, 4, 8, 12]
    };

    println!("### E3 — reader find latency (µs) with {READERS} readers vs concurrent updaters\n");
    type Maker = Box<dyn Fn() -> Arc<dyn ConcurrentHashFile>>;
    let impls: Vec<(&str, Maker)> = vec![
        ("global-lock", {
            let cfg = cfg.clone();
            Box::new(move || Arc::new(GlobalLockFile::new(cfg.clone()).unwrap()) as _)
        }),
        ("solution1", {
            let cfg = cfg.clone();
            Box::new(move || Arc::new(Solution1::new(cfg.clone()).unwrap()) as _)
        }),
        ("solution2", {
            let cfg = cfg.clone();
            Box::new(move || Arc::new(Solution2::new(cfg.clone()).unwrap()) as _)
        }),
    ];
    for (name, make) in impls {
        let mut rows = Vec::new();
        for &u in updater_counts {
            let lats = measure(make(), u, reads);
            rows.push(vec![
                u.to_string(),
                format!("{:.1}", pct(&lats, 50.0)),
                format!("{:.1}", pct(&lats, 99.0)),
                format!("{:.1}", pct(&lats, 99.9)),
                format!("{:.1}", *lats.last().unwrap() as f64 / 1000.0),
            ]);
        }
        println!("**{name}**\n");
        println!(
            "{}",
            md_table(
                &["updaters", "p50 µs", "p99 µs", "p99.9 µs", "max µs"],
                &rows
            )
        );
    }
    // Keep the sanity key in scope for the type checker's benefit.
    let _ = Key(0);
}
