//! **A1 — Ablation: next-link recovery vs. holding the directory lock**
//! (DESIGN.md §6).
//!
//! §2.2 mentions and rejects the alternative to `next`-link recovery:
//! "the reader could have held the ρ-lock on the directory until it had
//! the right bucket, but this would be a more pessimistic approach".
//! This ablation runs Solution 1 both ways. The pessimistic variant's
//! readers hold the directory ρ-lock for their whole search, so every
//! reader serializes against the deleters' ξ for longer — measurable as
//! throughput loss that grows with update share.
//!
//! ```sh
//! cargo run -p ceh-bench --release --bin exp_ablation_nextlinks
//! ```

use std::sync::Arc;

use ceh_bench::{md_table, preload, quick_mode, throughput, RunConfig};
use ceh_core::{Solution1, Solution1Options};
use ceh_types::HashFileConfig;
use ceh_workload::{KeyDist, OpMix};

fn main() {
    let cfg = HashFileConfig::default().with_bucket_capacity(64);
    let threads = 8;
    let total_ops = if quick_mode() { 1_600 } else { 16_000 };

    println!("### A1 — next-link recovery vs pessimistic directory holding (Solution 1, {threads} threads)\n");
    let mut rows = Vec::new();
    for (label, mix) in OpMix::STANDARD_SWEEP {
        let run = |opts: Solution1Options| {
            let file = Arc::new(Solution1::with_options(cfg.clone(), opts).unwrap());
            preload(&*file, 50_000, 1 << 17);
            ceh_core::ConcurrentHashFile::set_io_latency_ns(&*file, ceh_bench::SIM_IO_LATENCY_NS);
            let r = throughput(
                &file,
                &RunConfig {
                    threads,
                    ops_per_thread: total_ops / threads as usize,
                    key_space: 1 << 17,
                    dist: KeyDist::Uniform,
                    mix,
                    latency_sample_every: 0,
                    seed: 0xA1,
                },
            );
            (
                r.ops_per_sec(),
                file.core().locks().stats().contention_ratio(),
            )
        };
        let (with_links, c1) = run(Solution1Options {
            pessimistic_find: false,
        });
        let (pessimistic, c2) = run(Solution1Options {
            pessimistic_find: true,
        });
        rows.push(vec![
            label.to_string(),
            format!("{with_links:.0}"),
            format!("{pessimistic:.0}"),
            format!("{:.2}x", with_links / pessimistic),
            format!("{c1:.3}"),
            format!("{c2:.3}"),
        ]);
    }
    println!(
        "{}",
        md_table(
            &[
                "mix",
                "next-links ops/s",
                "pessimistic ops/s",
                "speedup",
                "links wait ratio",
                "pess. wait ratio"
            ],
            &rows
        )
    );
}
