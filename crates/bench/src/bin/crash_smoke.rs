//! CI smoke test for the durability layer and its crash-recovery path.
//!
//! Three gates, all seeded and bounded to finish in a few seconds:
//!
//! 1. **Systematic crash-point sweep** — the `ceh-check` recovery
//!    fuzzer runs its seeded mixed workload (inserts, deletes, finds;
//!    capacity 3 so splits and merges happen) once per reachable
//!    durability point, cutting power there with a seeded torn tail,
//!    recovering, and holding the result to the durability oracle:
//!    structural invariants, every acked op survives, the in-flight op
//!    is atomic. Zero violations required; any failure prints its
//!    minimized fixture.
//!    The sweep then runs a second time over the real file backend
//!    (frames + WAL files in a temp dir) — same durability points, now
//!    with genuine `fsync` ordering under test.
//! 2. **Distributed crash round** — a small durable cluster takes acked
//!    inserts, one site loses power, restarts from its durable image
//!    alone, and every acked key must still be served with cluster
//!    invariants intact.
//! 3. **WAL metrics through the report plane** — a durable workload is
//!    run and recovered on one [`ceh_obs::MetricsHandle`]; the emitted
//!    [`ceh_obs::RunReport`] must validate against
//!    `schemas/run_report.schema.json` and carry non-zero
//!    `storage.wal.*` / `storage.recovery.*` counters.
//!
//! Exits non-zero with a diagnostic on stderr on any failure, so
//! `scripts/ci.sh` can gate on it. Pass `--json` to print the report
//! JSON on stdout.

use std::sync::Arc;

use ceh_check::{dist_crash_round, run_sweep, CrashConfig};
use ceh_core::{ConcurrentHashFile, FileCore, Solution2};
use ceh_locks::LockManager;
use ceh_obs::{json, MetricsHandle, RunReport};
use ceh_storage::{DurableConfig, DurableStore, PageStoreConfig};
use ceh_types::{hash_key, Bucket, HashFileConfig, Key, Value};

fn fail(msg: &str) -> ! {
    eprintln!("crash_smoke: FAIL: {msg}");
    std::process::exit(1);
}

/// Gate 3: one durable lifetime — build, mutate past several
/// checkpoints, power off, recover — all on one metrics handle.
fn wal_metrics_report(emit_json: bool) {
    let cfg = HashFileConfig::tiny().with_bucket_capacity(4);
    let metrics = MetricsHandle::new();
    let dcfg = DurableConfig {
        page: PageStoreConfig {
            page_size: Bucket::page_size_for(cfg.bucket_capacity),
            ..Default::default()
        },
        checkpoint_every: 16,
        ..Default::default()
    };
    let wal = DurableStore::new(dcfg.clone(), &metrics);
    let disk = wal.disk();
    let core = FileCore::with_durable_metrics(
        cfg.clone(),
        Arc::clone(&wal),
        Arc::new(LockManager::default()),
        hash_key,
        &metrics,
    )
    .unwrap_or_else(|e| fail(&format!("durable file: {e}")));
    let file = Solution2::from_core(core);
    for k in 0..256u64 {
        file.insert(Key(k), Value(k + 1))
            .unwrap_or_else(|e| fail(&format!("insert {k}: {e}")));
        if k % 3 == 0 {
            file.delete(Key(k / 2))
                .unwrap_or_else(|e| fail(&format!("delete {}: {e}", k / 2)));
        }
    }
    wal.power_off();
    drop(file);
    let (_recovered, rep) = FileCore::recover_durable_metrics(
        cfg,
        &disk,
        dcfg,
        Arc::new(LockManager::default()),
        hash_key,
        &metrics,
    )
    .unwrap_or_else(|e| fail(&format!("recovery: {e}")));

    let report = RunReport::collect("crash_smoke", &metrics)
        .with_meta("workload", "256 inserts + interleaved deletes, durable")
        .with_meta("checkpoint_every", 16)
        .with_meta("recovery_wal_records", rep.wal_records)
        .with_meta("recovery_redo_applied", rep.redo_applied);

    // Schema validation, exactly as metrics_smoke does it.
    let schema_path = std::env::var("CEH_SCHEMA")
        .unwrap_or_else(|_| "schemas/run_report.schema.json".to_string());
    let schema_src = std::fs::read_to_string(&schema_path)
        .unwrap_or_else(|e| fail(&format!("cannot read schema {schema_path}: {e}")));
    let schema =
        json::parse(&schema_src).unwrap_or_else(|e| fail(&format!("schema does not parse: {e}")));
    let doc = json::parse(&report.to_json())
        .unwrap_or_else(|e| fail(&format!("report JSON does not parse: {e}")));
    let violations = json::validate(&doc, &schema);
    if !violations.is_empty() {
        fail(&format!(
            "report violates {schema_path}:\n  {}",
            violations.join("\n  ")
        ));
    }

    // The report must actually carry the durability plane's signal.
    let snap = report.metrics.clone();
    for name in [
        "storage.wal.records",
        "storage.wal.commits",
        "storage.wal.syncs",
        "storage.wal.checkpoints",
        "storage.wal.frames_flushed",
        "storage.recovery.runs",
    ] {
        if snap.counter(name) == 0 {
            fail(&format!("counter {name} is zero — the WAL plane is dark"));
        }
    }

    if emit_json {
        println!("{}", report.to_json());
    }
    println!(
        "crash_smoke: report valid: {} wal records, {} checkpoints, {} redo applied on recovery",
        snap.counter("storage.wal.records"),
        snap.counter("storage.wal.checkpoints"),
        snap.counter("storage.recovery.redo_applied"),
    );
}

fn main() {
    let emit_json = std::env::args().any(|a| a == "--json");
    let quick = std::env::var("CEH_QUICK").is_ok();

    // Gate 1: the systematic sweep. CEH_QUICK trims the workload (and
    // with it the number of durability points) for pre-merge runs.
    let cfg = CrashConfig {
        ops: if quick { 48 } else { 96 },
        ..Default::default()
    };
    let report = run_sweep(&cfg).unwrap_or_else(|e| fail(&e));
    let clean = report.outcomes.iter().filter(|o| o.verdict.is_ok()).count();
    if !report.ok() {
        for o in report.outcomes.iter().filter(|o| o.verdict.is_err()) {
            eprintln!(
                "crash_smoke: point {}/{}: {}",
                o.point,
                report.points,
                o.verdict.as_ref().unwrap_err()
            );
        }
        for f in &report.failures {
            eprintln!("--- minimized fixture ---\n{}---", f.serialize());
        }
        fail(&format!(
            "{}/{} crash points violated the durability oracle",
            report.points as usize - clean,
            report.points
        ));
    }
    println!(
        "crash_smoke: sweep clean: {clean}/{} durability points recovered (seed {}, {} ops)",
        report.points, cfg.seed, cfg.ops
    );

    // Gate 1b: the same sweep over real files. The durability-point
    // sequence is backend-independent, so the identical points are cut
    // — but every tear, write, and recovery now goes through
    // frames.ceh/wal.ceh in a temp dir, and the fsync-ordering oracle
    // (nothing acked before its sync may be lost) must hold there too.
    let file_cfg = CrashConfig {
        ops: if quick { 24 } else { 48 },
        backend: ceh_storage::BackendKind::File,
        ..Default::default()
    };
    let file_report = run_sweep(&file_cfg).unwrap_or_else(|e| fail(&e));
    if !file_report.ok() {
        for o in file_report.outcomes.iter().filter(|o| o.verdict.is_err()) {
            eprintln!(
                "crash_smoke: file backend point {}/{}: {}",
                o.point,
                file_report.points,
                o.verdict.as_ref().unwrap_err()
            );
        }
        fail("file-backend crash sweep violated the durability oracle");
    }
    println!(
        "crash_smoke: file-backend sweep clean: {}/{} durability points recovered ({} ops)",
        file_report
            .outcomes
            .iter()
            .filter(|o| o.verdict.is_ok())
            .count(),
        file_report.points,
        file_cfg.ops
    );

    // Gate 2: the distributed round.
    dist_crash_round(cfg.seed, 24).unwrap_or_else(|e| fail(&format!("dist round: {e}")));
    println!("crash_smoke: dist crash_site/restart_site round clean");

    // Gate 3: the metrics plane.
    wal_metrics_report(emit_json);
    println!("crash_smoke: PASS");
}
