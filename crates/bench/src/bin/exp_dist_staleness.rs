//! **E8 — Directory staleness and recovery under asynchronous
//! replication** (DESIGN.md §6).
//!
//! Claim under test (§3): "obsolete directory information is usable" —
//! a replica that lags behind still routes every request correctly via
//! `next`-link recovery (wrongbucket forwarding), at a measurable cost.
//! This sweeps copyupdate latency and reports the stale-routing rate and
//! convergence behaviour.
//!
//! ```sh
//! cargo run -p ceh-bench --release --bin exp_dist_staleness
//! ```

use std::time::{Duration, Instant};

use ceh_bench::{md_table, quick_mode};
use ceh_dist::{Cluster, ClusterConfig};
use ceh_net::LatencyModel;
use ceh_types::{HashFileConfig, Key, Value};

fn main() {
    let keys = if quick_mode() { 300 } else { 2_000 };
    let delays_us: &[u64] = if quick_mode() {
        &[0, 1000]
    } else {
        &[0, 100, 500, 1000, 3000]
    };

    println!(
        "### E8 — stale-directory recovery vs copyupdate delay \
         (3 replicas, 2 sites, insert+read-your-write of {keys} keys)\n"
    );
    let mut rows = Vec::new();
    for &d in delays_us {
        // Replication traffic (copyupdate) lags request traffic by `d`:
        // the regime where a stale directory entry actually gets
        // dereferenced before the replica catches up.
        let latency = if d == 0 {
            LatencyModel::none()
        } else {
            LatencyModel::jittered(Duration::from_micros(10), Duration::from_micros(20), 0xE8)
                .with_class_extra("copyupdate", Duration::from_micros(d))
        };
        let c = Cluster::start(ClusterConfig {
            dir_managers: 3,
            bucket_managers: 2,
            file: HashFileConfig::tiny().with_bucket_capacity(4),
            page_quota: None,
            latency,
            data_dir: None,
            ..Default::default()
        })
        .unwrap();
        let client = c.client();
        let t0 = Instant::now();
        // Insert then immediately read through the *next* replica
        // (round-robin): the fresher the split, the likelier the read
        // hits a replica that hasn't heard of it.
        for k in 0..keys as u64 {
            client.insert(Key(k), Value(k)).unwrap();
            assert_eq!(
                client.find(Key(k)).unwrap(),
                Some(Value(k)),
                "read-your-write {k}"
            );
        }
        let work = t0.elapsed();
        let t1 = Instant::now();
        let quiesced = c.quiesce(Duration::from_secs(60));
        let settle = t1.elapsed();
        let stats = c.msg_stats();
        let converged = c.replicas_converged();
        let hops = c.total_recovery_hops();
        rows.push(vec![
            format!("{d} µs"),
            hops.to_string(),
            format!("{:.4}", hops as f64 / (2 * keys) as f64),
            stats.get("wrongbucket").to_string(),
            format!("{:.0} ms", work.as_secs_f64() * 1000.0),
            format!("{:.0} ms", settle.as_secs_f64() * 1000.0),
            format!("{}", quiesced && converged),
        ]);
        c.shutdown();
    }
    println!(
        "{}",
        md_table(
            &[
                "copyupdate delay",
                "recovery hops",
                "stale routes/op",
                "cross-site fwds",
                "workload time",
                "settle time",
                "converged"
            ],
            &rows
        )
    );
    println!("\nEvery row must show converged=true: staleness never becomes incorrectness.");
}
