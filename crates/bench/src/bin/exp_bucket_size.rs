//! **E5 — Bucket capacity trade-off** (DESIGN.md §6).
//!
//! Larger buckets mean fewer splits and a shallower directory but more
//! in-bucket scan work and bigger page transfers; smaller buckets the
//! reverse. This sweep shows the structure metrics and throughput per
//! capacity.
//!
//! ```sh
//! cargo run -p ceh-bench --release --bin exp_bucket_size
//! ```

use std::sync::Arc;

use ceh_bench::{md_table, preload, quick_mode, throughput, RunConfig};
use ceh_core::{ConcurrentHashFile, Solution2};
use ceh_types::HashFileConfig;
use ceh_workload::{KeyDist, OpMix};

fn main() {
    let threads = 8;
    let keys = if quick_mode() { 20_000 } else { 200_000 };
    let total_ops = if quick_mode() { 1_600 } else { 16_000 };
    let caps: &[usize] = if quick_mode() {
        &[4, 64]
    } else {
        &[4, 16, 64, 250]
    };

    println!("### E5 — bucket capacity sweep (Solution 2, {keys} keys preloaded)\n");
    let mut rows = Vec::new();
    for &cap in caps {
        let cfg = HashFileConfig::default()
            .with_bucket_capacity(cap)
            .with_max_depth(24);
        let file = Arc::new(Solution2::new(cfg).unwrap());
        preload(&*file, keys, 1 << 22);
        file.set_io_latency_ns(ceh_bench::SIM_IO_LATENCY_NS);
        let depth = file.core().dir().depth();
        let pages = file.core().store().allocated_pages();
        let load_factor = keys as f64 / (pages as f64 * cap as f64);
        file.core().stats().reset();
        let r = throughput(
            &file,
            &RunConfig {
                threads,
                ops_per_thread: total_ops / threads as usize,
                key_space: 1 << 22,
                dist: KeyDist::Uniform,
                mix: OpMix::BALANCED,
                latency_sample_every: 0,
                seed: 0xE5,
            },
        );
        let s = file.core().stats().snapshot();
        rows.push(vec![
            cap.to_string(),
            depth.to_string(),
            pages.to_string(),
            format!("{load_factor:.2}"),
            format!("{:.0}", r.ops_per_sec()),
            s.splits.to_string(),
            s.merges.to_string(),
        ]);
    }
    println!(
        "{}",
        md_table(
            &[
                "bucket cap",
                "dir depth",
                "buckets",
                "load factor",
                "ops/s (50/25/25)",
                "splits",
                "merges"
            ],
            &rows
        )
    );
}
