//! CI smoke test for end-to-end causal tracing.
//!
//! Runs a seeded mixed workload against a two-site cluster with the
//! tracer enabled, reassembles the [`ceh_obs::TraceReport`], and checks
//! that
//!
//! 1. the Chrome trace-format JSON validates against
//!    `schemas/trace.schema.json` (parsed and enforced by
//!    `ceh_obs::json` — no external JSON dependency);
//! 2. at least one trace carries a request's full causal chain — the
//!    client-side `request` root span, the directory manager's
//!    `dispatch` child, and the bucket slave's execution span — all
//!    under a single trace id;
//! 3. every reassembled trace has exactly one root span (no orphaned
//!    request fragments), and the ring dropped nothing.
//!
//! Exits non-zero (with a diagnostic on stderr) on any failure, so
//! `scripts/ci.sh` can gate on it. Pass `--json` to print the Chrome
//! JSON on stdout (the default prints the human timeline).

use ceh_dist::{Cluster, ClusterConfig};
use ceh_obs::json;
use ceh_types::{HashFileConfig, Key, Value};

fn fail(msg: &str) -> ! {
    eprintln!("trace_smoke: FAIL: {msg}");
    std::process::exit(1);
}

fn main() {
    let emit_json = std::env::args().any(|a| a == "--json");

    let cluster = Cluster::start(ClusterConfig {
        dir_managers: 2,
        bucket_managers: 2,
        file: HashFileConfig::tiny(),
        ..Default::default()
    })
    .unwrap_or_else(|e| fail(&format!("cluster start: {e}")));
    cluster.metrics().tracer().enable(1 << 17);

    // Seeded mixed workload; the multiplicative spread forces splits
    // and cross-site routing so dispatch and bucket spans land on
    // different managers.
    let client = cluster.client();
    let spread = |i: u64| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 16;
    for i in 0..96u64 {
        let key = Key(spread(i));
        let out = match i % 3 {
            0 => client.insert(key, Value(i)).map(|_| ()),
            1 => client.find(Key(spread(i - 1))).map(|_| ()),
            _ => client.delete(Key(spread(i - 2))).map(|_| ()),
        };
        out.unwrap_or_else(|e| fail(&format!("op {i}: {e}")));
    }
    cluster.quiesce(std::time::Duration::from_secs(30));
    let report = cluster.trace_report();
    cluster.shutdown();

    // 1. Schema validation of the Chrome export.
    let schema_path = std::env::var("CEH_TRACE_SCHEMA")
        .unwrap_or_else(|_| "schemas/trace.schema.json".to_string());
    let schema_src = std::fs::read_to_string(&schema_path)
        .unwrap_or_else(|e| fail(&format!("cannot read schema {schema_path}: {e}")));
    let schema =
        json::parse(&schema_src).unwrap_or_else(|e| fail(&format!("schema does not parse: {e}")));
    let chrome = report.to_chrome_json();
    let doc =
        json::parse(&chrome).unwrap_or_else(|e| fail(&format!("trace JSON does not parse: {e}")));
    let violations = json::validate(&doc, &schema);
    if !violations.is_empty() {
        fail(&format!(
            "trace violates {schema_path}:\n  {}",
            violations.join("\n  ")
        ));
    }

    // 2. Full causal chain under one trace id.
    if report.dropped > 0 {
        fail(&format!("tracer dropped {} events", report.dropped));
    }
    let full_chain = report
        .traces()
        .iter()
        .filter(|t| {
            t.has_event("dist", "request")
                && t.has_event("dist", "dispatch")
                && (t.has_event("dist", "bucket.find")
                    || t.has_event("dist", "bucket.insert")
                    || t.has_event("dist", "bucket.delete"))
        })
        .count();
    if full_chain == 0 {
        fail("no trace carries the full request → dispatch → bucket chain");
    }

    // 3. Exactly one root span per trace: a reassembled request must
    //    not fragment into several parentless spans.
    for tree in report.traces() {
        let roots = tree.root_spans().len();
        if roots != 1 {
            fail(&format!(
                "trace {:#x} has {roots} root spans (want 1)",
                tree.trace_id
            ));
        }
    }

    if emit_json {
        println!("{chrome}");
    } else {
        println!("{}", report.to_timeline());
        println!("{}", report.contention_table());
    }
    eprintln!(
        "trace_smoke: OK ({} traces, {} full chains, schema valid)",
        report.traces().len(),
        full_chain
    );
}
