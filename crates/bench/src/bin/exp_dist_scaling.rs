//! **E9 — What distribution buys: capacity growth and its overhead**
//! (DESIGN.md §6).
//!
//! §3 motivates distribution by "increased availability and ease of
//! growth" — NOT by single-request speed: with any replication factor a
//! request costs the same round trips, so end-to-end throughput under a
//! fixed client population is bounded by client round-trip time and is
//! expected to stay roughly flat (or dip slightly as copyupdate overhead
//! rises). What *does* scale is where the data can live. This experiment
//! reports, per cluster shape: throughput (≈flat — the honest result),
//! storage spread across sites (the growth claim), messages per
//! operation (the replication overhead), and cross-site protocol traffic.
//!
//! ```sh
//! cargo run -p ceh-bench --release --bin exp_dist_scaling
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use ceh_bench::{md_table, quick_mode};
use ceh_dist::{Cluster, ClusterConfig};
use ceh_net::LatencyModel;
use ceh_types::{HashFileConfig, Value};
use ceh_workload::{KeyDist, Op, OpMix, WorkloadGen};

const CLIENTS: u64 = 8;

struct Shape {
    dirs: usize,
    sites: usize,
    ops_per_sec: f64,
    pages: Vec<usize>,
    msgs_per_op: f64,
    cross_site: u64,
}

fn run(dirs: usize, sites: usize, ops_per_client: usize) -> Shape {
    let c = Arc::new(
        Cluster::start(ClusterConfig {
            dir_managers: dirs,
            bucket_managers: sites,
            file: HashFileConfig::default().with_bucket_capacity(16),
            page_quota: Some(64), // spread buckets across sites as the file grows
            latency: LatencyModel::fixed(Duration::from_micros(150)),
            data_dir: None,
            ..Default::default()
        })
        .unwrap(),
    );
    // Preload through one client.
    {
        let client = c.client();
        for key in ceh_workload::prefill_keys(2_000, 1 << 16) {
            client.insert(key, Value(key.0)).unwrap();
        }
    }
    assert!(c.quiesce(Duration::from_secs(60)));
    c.net().reset_stats();

    let start = Instant::now();
    let workers: Vec<_> = (0..CLIENTS)
        .map(|t| {
            let c = Arc::clone(&c);
            std::thread::spawn(move || {
                let client = c.client();
                let mut gen =
                    WorkloadGen::new(0xE9 + t, KeyDist::Uniform, 1 << 16, OpMix::BALANCED);
                for op in gen.batch(ops_per_client) {
                    match op {
                        Op::Find(k) => {
                            client.find(k).unwrap();
                        }
                        Op::Insert(k, v) => {
                            client.insert(k, v).unwrap();
                        }
                        Op::Delete(k) => {
                            client.delete(k).unwrap();
                        }
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let total_ops = CLIENTS as usize * ops_per_client;
    let ops_per_sec = total_ops as f64 / start.elapsed().as_secs_f64();
    assert!(c.quiesce(Duration::from_secs(60)));
    let stats = c.msg_stats();
    let cross_site = stats.get("wrongbucket")
        + stats.get("splitbucket")
        + stats.get("mergedown")
        + stats.get("mergeup");
    let shape = Shape {
        dirs,
        sites,
        ops_per_sec,
        pages: c.pages_per_site(),
        msgs_per_op: stats.total() as f64 / total_ops as f64,
        cross_site,
    };
    match Arc::try_unwrap(c) {
        Ok(c) => c.shutdown(),
        Err(_) => unreachable!(),
    }
    shape
}

fn main() {
    let ops = if quick_mode() { 150 } else { 1_000 };
    let shapes: &[(usize, usize)] = if quick_mode() {
        &[(1, 1), (2, 2)]
    } else {
        &[(1, 1), (1, 2), (1, 4), (2, 2), (3, 3), (4, 4)]
    };

    println!(
        "### E9 — capacity growth vs overhead \
         ({CLIENTS} clients, mix 50/25/25, 150 µs message latency, page quota 64/site)\n"
    );
    let mut rows = Vec::new();
    let mut baseline = None;
    for &(dirs, sites) in shapes {
        let s = run(dirs, sites, ops);
        let base = *baseline.get_or_insert(s.ops_per_sec);
        rows.push(vec![
            s.dirs.to_string(),
            s.sites.to_string(),
            format!("{:.0}", s.ops_per_sec),
            format!("{:.2}x", s.ops_per_sec / base),
            format!("{:?}", s.pages),
            format!("{:.2}", s.msgs_per_op),
            s.cross_site.to_string(),
        ]);
    }
    println!(
        "{}",
        md_table(
            &[
                "dir replicas",
                "bucket sites",
                "ops/s",
                "vs 1x1",
                "pages/site",
                "msgs/op",
                "cross-site msgs"
            ],
            &rows
        )
    );
    println!(
        "\nThroughput is client-round-trip bound by design (§3 promises growth and \
         availability, not per-request speed); the pages/site column is the growth claim."
    );
}
