//! **A3 — Ablation: merge-threshold policy** (extension; DESIGN.md §3.1).
//!
//! The paper's "simplest interpretation" of *too empty* merges only when
//! the record being deleted is the bucket's last. This library
//! generalizes: a delete attempts a merge when at most `merge_threshold`
//! records would remain. The sweep shows the trade: larger thresholds
//! reclaim space sooner (more merges, shallower directories after
//! shrink) at the cost of more merge work per delete — and, in
//! Solution 2, more label-A revalidation traffic.
//!
//! Workload: grow to N keys, then churn (delete+insert), then shrink to
//! N/8, reporting structure metrics at each phase.
//!
//! ```sh
//! cargo run -p ceh-bench --release --bin exp_merge_threshold
//! ```

use std::sync::Arc;

use ceh_bench::{md_table, quick_mode};
use ceh_core::{ConcurrentHashFile, Solution2};
use ceh_types::{HashFileConfig, Value};
use ceh_workload::prefill_keys;

fn main() {
    let n = if quick_mode() { 4_000 } else { 40_000 };
    let cap = 8usize;

    println!("### A3 — merge threshold sweep (Solution 2, capacity {cap}, {n} keys grow → shrink to n/8)\n");
    let mut rows = Vec::new();
    for threshold in [0usize, 1, 2, 4] {
        let cfg = HashFileConfig::default()
            .with_bucket_capacity(cap)
            .with_merge_threshold(threshold);
        let file = Arc::new(Solution2::new(cfg).unwrap());
        let keys = prefill_keys(n, 1 << 24);
        for &k in &keys {
            file.insert(k, Value(k.0)).unwrap();
        }
        let peak_pages = file.core().store().allocated_pages();
        let peak_depth = file.core().dir().depth();

        // Shrink to n/8.
        for &k in &keys[n / 8..] {
            file.delete(k).unwrap();
        }
        let end_pages = file.core().store().allocated_pages();
        let end_depth = file.core().dir().depth();
        let s = file.core().stats().snapshot();
        let residual_load = (n / 8) as f64 / (end_pages as f64 * cap as f64);
        ceh_core::invariants::check_concurrent_file(file.core()).unwrap();
        rows.push(vec![
            threshold.to_string(),
            format!("{peak_pages} @ d{peak_depth}"),
            format!("{end_pages} @ d{end_depth}"),
            format!("{residual_load:.2}"),
            s.merges.to_string(),
            s.halvings.to_string(),
            s.delete_retries.to_string(),
        ]);
    }
    println!(
        "{}",
        md_table(
            &[
                "threshold",
                "peak pages@depth",
                "end pages@depth",
                "residual load",
                "merges",
                "halvings",
                "delete retries"
            ],
            &rows
        )
    );
    println!("\nthreshold 0 is the paper's policy; larger thresholds trade merge work for space.");
}
