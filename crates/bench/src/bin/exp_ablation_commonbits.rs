//! **A2 — Ablation: the `commonbits` field vs. rehashing a resident key**
//! (DESIGN.md §6).
//!
//! §2.1 offers two wrong-bucket tests: a stored `commonbits` pattern, or
//! "reapply the hash function to any key stored in the bucket … as long
//! as the possibility of an empty bucket is taken care of". This ablation
//! measures both: the per-check cost, and how often the rehash variant's
//! empty-bucket conservatism would force spurious `next` chases on a real
//! structure.
//!
//! ```sh
//! cargo run -p ceh-bench --release --bin exp_ablation_commonbits
//! ```

use std::sync::Arc;
use std::time::Instant;

use ceh_bench::{md_table, preload, quick_mode};
use ceh_core::{invariants, ConcurrentHashFile, Solution2};
use ceh_types::{hash_key, HashFileConfig, Key, Pseudokey};

fn main() {
    let keys = if quick_mode() { 10_000 } else { 100_000 };

    // Build a realistic structure to check against.
    let file =
        Arc::new(Solution2::new(HashFileConfig::default().with_bucket_capacity(16)).unwrap());
    preload(&*file, keys, 1 << 22);
    // Delete a slice to create some emptier buckets.
    for key in ceh_workload::prefill_keys(keys / 4, 1 << 22) {
        file.delete(key).unwrap();
    }
    let snap = invariants::snapshot_core(file.core()).unwrap();
    let buckets: Vec<_> = snap.buckets.values().cloned().collect();
    let probes: Vec<Pseudokey> = (0..100_000u64).map(|i| hash_key(Key(i))).collect();

    // Timed check loops.
    let iters = if quick_mode() { 2 } else { 20 };
    let t0 = Instant::now();
    let mut acc = 0u64;
    for _ in 0..iters {
        for (b, p) in buckets.iter().zip(probes.iter().cycle()) {
            acc += b.owns(*p) as u64;
        }
    }
    let commonbits_ns = t0.elapsed().as_nanos() as f64 / (iters * buckets.len()) as f64;

    let t1 = Instant::now();
    let mut acc2 = 0u64;
    for _ in 0..iters {
        for (b, p) in buckets.iter().zip(probes.iter().cycle()) {
            acc2 += b.owns_by_rehash(*p, hash_key) as u64;
        }
    }
    let rehash_ns = t1.elapsed().as_nanos() as f64 / (iters * buckets.len()) as f64;

    // Disagreement = buckets where the rehash variant is conservative
    // (empty buckets): each such bucket costs an extra next-hop whenever
    // a search lands on it.
    let empty = buckets.iter().filter(|b| b.records.is_empty()).count();

    println!("### A2 — wrong-bucket test: commonbits field vs rehash-resident-key\n");
    println!(
        "{}",
        md_table(
            &[
                "variant",
                "ns/check",
                "bytes/bucket",
                "false 'wrong bucket' on empties"
            ],
            &[
                vec![
                    "commonbits".into(),
                    format!("{commonbits_ns:.1}"),
                    "8".into(),
                    "never".into()
                ],
                vec![
                    "rehash resident".into(),
                    format!("{rehash_ns:.1}"),
                    "0".into(),
                    format!(
                        "{empty} of {} buckets ({:.1}%)",
                        buckets.len(),
                        100.0 * empty as f64 / buckets.len() as f64
                    ),
                ],
            ]
        )
    );
    println!(
        "(checksums {acc} / {acc2}, structure of {} buckets at depth {})",
        buckets.len(),
        snap.depth
    );
}
