//! **E1 — Throughput vs. thread count** (DESIGN.md §6).
//!
//! Claim under test: both locking protocols scale with readers and mixed
//! load, the global lock does not; Solution 2 leads under update-heavy
//! mixes.
//!
//! ```sh
//! cargo run -p ceh-bench --release --bin exp_scaling
//! ```

use std::sync::Arc;

use ceh_bench::{md_table, preload, quick_mode, throughput, RunConfig};
use ceh_core::{ConcurrentHashFile, GlobalLockFile, Solution1, Solution2};
use ceh_types::HashFileConfig;
use ceh_workload::{KeyDist, OpMix};

fn run_one(file: Arc<dyn ConcurrentHashFile>, threads: u64, mix: OpMix, ops: usize) -> f64 {
    preload(&*file, 50_000, 1 << 17);
    // Charge for page I/O only in the measured phase.
    file.set_io_latency_ns(ceh_bench::SIM_IO_LATENCY_NS);
    let cfg = RunConfig {
        threads,
        ops_per_thread: ops / threads as usize,
        key_space: 1 << 17,
        dist: KeyDist::Uniform,
        mix,
        latency_sample_every: 0,
        seed: 0xE1,
    };
    throughput(&file, &cfg).ops_per_sec()
}

fn main() {
    let cfg = HashFileConfig::default().with_bucket_capacity(64);
    let total_ops = if quick_mode() { 1_600 } else { 12_000 };
    let threads: &[u64] = if quick_mode() {
        &[1, 4]
    } else {
        &[1, 2, 4, 8, 16]
    };

    for (label, mix) in OpMix::STANDARD_SWEEP {
        println!("\n### E1 — mix {label} (find/insert/delete), {total_ops} ops\n");
        let mut rows = Vec::new();
        for &t in threads {
            let g = run_one(
                Arc::new(GlobalLockFile::new(cfg.clone()).unwrap()),
                t,
                mix,
                total_ops,
            );
            let s1 = run_one(
                Arc::new(Solution1::new(cfg.clone()).unwrap()),
                t,
                mix,
                total_ops,
            );
            let s2 = run_one(
                Arc::new(Solution2::new(cfg.clone()).unwrap()),
                t,
                mix,
                total_ops,
            );
            rows.push(vec![
                t.to_string(),
                format!("{g:.0}"),
                format!("{s1:.0}"),
                format!("{s2:.0}"),
                format!("{:.2}x", s1 / g),
                format!("{:.2}x", s2 / g),
            ]);
        }
        println!(
            "{}",
            md_table(
                &[
                    "threads",
                    "global-lock ops/s",
                    "solution1 ops/s",
                    "solution2 ops/s",
                    "s1/global",
                    "s2/global"
                ],
                &rows
            )
        );
    }
}
