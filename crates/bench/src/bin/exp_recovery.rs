//! **E4 — Wrong-bucket recovery frequency and cost** and
//! **E11 — Durability: WAL overhead and crash-recovery cost**
//! (DESIGN.md §6, §10).
//!
//! E4's claim under test: the `next`-link recovery path (the structural
//! price of letting readers run under updaters) is taken rarely and the
//! chains chased are short — most recoveries are one hop to the freshly
//! split partner.
//!
//! E11's claims: (a) the redo WAL's steady-state tax on an update-heavy
//! workload is modest and governed by the checkpoint interval (longer
//! interval → fewer frame flushes but a longer log to replay); (b)
//! crash recovery replays exactly the post-checkpoint suffix, so its
//! cost scales with the interval, not the file size; (c) the seeded
//! crash-point sweep (the `ceh-check` recovery fuzzer) finds zero
//! durability-oracle violations. The E11 rows are also written as
//! machine-readable JSON to `results/exp_durability.json`.
//!
//! ```sh
//! cargo run -p ceh-bench --release --bin exp_recovery
//! ```

use std::fmt::Write as _;
use std::sync::Arc;

use ceh_bench::{md_table, preload, quick_mode, throughput, RunConfig};
use ceh_core::{ConcurrentHashFile, FileCore, Solution2};
use ceh_locks::LockManager;
use ceh_obs::MetricsHandle;
use ceh_storage::{DurableConfig, DurableStore, PageStoreConfig};
use ceh_types::{hash_key, Bucket, HashFileConfig, Key, Value};
use ceh_workload::{KeyDist, OpMix};

/// One E11 measurement row: a durable lifetime at one checkpoint
/// interval — workload, power cut, recovery.
struct DurabilityRow {
    checkpoint_every: usize,
    ops_per_sec: f64,
    wal_syncs: u64,
    wal_bytes: u64,
    checkpoints: u64,
    recovery_ms: f64,
    wal_records_replayed: usize,
    redo_applied: usize,
}

fn durable_lifetime(checkpoint_every: usize, total_ops: usize, threads: u64) -> DurabilityRow {
    let cfg = HashFileConfig::default().with_bucket_capacity(16);
    let metrics = MetricsHandle::new();
    let dcfg = DurableConfig {
        page: PageStoreConfig {
            page_size: Bucket::page_size_for(cfg.bucket_capacity),
            ..Default::default()
        },
        checkpoint_every,
        ..Default::default()
    };
    let wal = DurableStore::new(dcfg.clone(), &metrics);
    let disk = wal.disk();
    let core = FileCore::with_durable_metrics(
        cfg.clone(),
        Arc::clone(&wal),
        Arc::new(LockManager::default()),
        hash_key,
        &metrics,
    )
    .expect("durable file");
    let file = Arc::new(Solution2::from_core(core));
    for k in 0..2_000u64 {
        file.insert(Key(k), Value(k)).expect("preload");
    }
    let r = throughput(
        &file,
        &RunConfig {
            threads,
            ops_per_thread: total_ops / threads as usize,
            key_space: 1 << 13,
            dist: KeyDist::Uniform,
            mix: OpMix::UPDATE_HEAVY,
            latency_sample_every: 0,
            seed: 0xE11,
        },
    );
    let snap = metrics.snapshot();
    wal.power_off();
    drop(file);
    let t0 = std::time::Instant::now();
    let (_recovered, rep) = FileCore::recover_durable_metrics(
        cfg,
        &disk,
        dcfg,
        Arc::new(LockManager::default()),
        hash_key,
        &metrics,
    )
    .expect("recovery");
    let recovery_ms = t0.elapsed().as_secs_f64() * 1e3;
    DurabilityRow {
        checkpoint_every,
        ops_per_sec: r.ops_per_sec(),
        wal_syncs: snap.counter("storage.wal.syncs"),
        wal_bytes: snap.counter("storage.wal.sync_bytes"),
        checkpoints: snap.counter("storage.wal.checkpoints"),
        recovery_ms,
        wal_records_replayed: rep.wal_records,
        redo_applied: rep.redo_applied,
    }
}

/// The volatile baseline for the same workload (what durability costs).
fn volatile_baseline(total_ops: usize, threads: u64) -> f64 {
    let cfg = HashFileConfig::default().with_bucket_capacity(16);
    let file = Arc::new(Solution2::new(cfg).expect("file"));
    for k in 0..2_000u64 {
        file.insert(Key(k), Value(k)).expect("preload");
    }
    throughput(
        &file,
        &RunConfig {
            threads,
            ops_per_thread: total_ops / threads as usize,
            key_space: 1 << 13,
            dist: KeyDist::Uniform,
            mix: OpMix::UPDATE_HEAVY,
            latency_sample_every: 0,
            seed: 0xE11,
        },
    )
    .ops_per_sec()
}

fn experiment_e11() {
    let threads = 4u64;
    let total_ops = if quick_mode() { 2_000 } else { 20_000 };
    println!("\n### E11 — durability: WAL overhead and crash-recovery cost ({threads} threads, {total_ops} update-heavy ops)\n");

    let baseline = volatile_baseline(total_ops, threads);
    let rows: Vec<DurabilityRow> = [8usize, 32, 128, 512]
        .iter()
        .map(|&ck| durable_lifetime(ck, total_ops, threads))
        .collect();

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.checkpoint_every.to_string(),
                format!("{:.0}", r.ops_per_sec),
                format!("{:.0}%", 100.0 * r.ops_per_sec / baseline),
                r.wal_syncs.to_string(),
                (r.wal_bytes / 1024).to_string(),
                r.checkpoints.to_string(),
                format!("{:.2}", r.recovery_ms),
                r.wal_records_replayed.to_string(),
                r.redo_applied.to_string(),
            ]
        })
        .collect();
    println!(
        "volatile baseline: {baseline:.0} ops/s (same workload, no WAL)\n\n{}",
        md_table(
            &[
                "ckpt every",
                "ops/s",
                "vs volatile",
                "wal syncs",
                "wal KiB",
                "ckpts",
                "recovery ms",
                "records replayed",
                "redo applied",
            ],
            &table
        )
    );

    // The sweep: the durability claim is only as good as its oracle.
    let sweep_cfg = ceh_check::CrashConfig {
        ops: if quick_mode() { 32 } else { 96 },
        ..Default::default()
    };
    let sweep = ceh_check::run_sweep(&sweep_cfg).expect("sweep");
    let clean = sweep.outcomes.iter().filter(|o| o.verdict.is_ok()).count();
    println!(
        "crash-point sweep: {clean}/{} durability points recovered clean (seed {}, {} ops){}",
        sweep.points,
        sweep_cfg.seed,
        sweep_cfg.ops,
        if sweep.ok() { "" } else { "  ** VIOLATIONS **" }
    );

    // Machine-readable copy for results/.
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"experiment\": \"E11\",");
    let _ = writeln!(j, "  \"threads\": {threads},");
    let _ = writeln!(j, "  \"total_ops\": {total_ops},");
    let _ = writeln!(j, "  \"volatile_baseline_ops_per_sec\": {baseline:.1},");
    let _ = writeln!(j, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"checkpoint_every\": {}, \"ops_per_sec\": {:.1}, \"wal_syncs\": {}, \
             \"wal_bytes\": {}, \"checkpoints\": {}, \"recovery_ms\": {:.3}, \
             \"wal_records_replayed\": {}, \"redo_applied\": {}}}{}",
            r.checkpoint_every,
            r.ops_per_sec,
            r.wal_syncs,
            r.wal_bytes,
            r.checkpoints,
            r.recovery_ms,
            r.wal_records_replayed,
            r.redo_applied,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(j, "  ],");
    let _ = writeln!(
        j,
        "  \"crash_sweep\": {{\"seed\": {}, \"ops\": {}, \"points\": {}, \"clean\": {clean}, \"ok\": {}}}",
        sweep_cfg.seed,
        sweep_cfg.ops,
        sweep.points,
        sweep.ok()
    );
    let _ = writeln!(j, "}}");
    if let Err(e) = std::fs::write("results/exp_durability.json", &j) {
        eprintln!("exp_recovery: could not write results/exp_durability.json: {e}");
    } else {
        println!("\n(JSON copy written to results/exp_durability.json)");
    }
}

fn main() {
    let threads = 8;
    let total_ops = if quick_mode() { 1_600 } else { 16_000 };

    println!("### E4 — wrong-bucket recoveries (Solution 2, {threads} threads, {total_ops} ops)\n");
    let mut rows = Vec::new();
    for (label, mix) in OpMix::STANDARD_SWEEP {
        // Small buckets → frequent splits → maximal recovery pressure.
        for cap in [4usize, 64] {
            let cfg = HashFileConfig::default()
                .with_bucket_capacity(cap)
                .with_io_latency_ns(ceh_bench::SIM_IO_LATENCY_NS);
            let file = Arc::new(Solution2::new(cfg).unwrap());
            preload(&*file, 30_000, 1 << 16);
            file.set_io_latency_ns(ceh_bench::SIM_IO_LATENCY_NS);
            file.core().stats().reset();
            let r = throughput(
                &file,
                &RunConfig {
                    threads,
                    ops_per_thread: total_ops / threads as usize,
                    key_space: 1 << 16,
                    dist: KeyDist::Uniform,
                    mix,
                    latency_sample_every: 0,
                    seed: 0xE4,
                },
            );
            let s = file.core().stats().snapshot();
            rows.push(vec![
                label.to_string(),
                cap.to_string(),
                format!("{:.0}", r.ops_per_sec()),
                s.wrong_bucket_recoveries.to_string(),
                format!(
                    "{:.4}%",
                    100.0 * s.wrong_bucket_recoveries as f64 / s.total_ops() as f64
                ),
                format!("{:.2}", s.mean_recovery_hops()),
                s.splits.to_string(),
                s.merges.to_string(),
            ]);
        }
    }
    println!(
        "{}",
        md_table(
            &[
                "mix",
                "bucket cap",
                "ops/s",
                "recoveries",
                "recovery rate",
                "mean hops",
                "splits",
                "merges"
            ],
            &rows
        )
    );

    experiment_e11();
}
