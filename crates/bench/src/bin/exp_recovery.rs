//! **E4 — Wrong-bucket recovery frequency and cost** (DESIGN.md §6).
//!
//! Claim under test: the `next`-link recovery path (the structural price
//! of letting readers run under updaters) is taken rarely and the chains
//! chased are short — most recoveries are one hop to the freshly split
//! partner.
//!
//! ```sh
//! cargo run -p ceh-bench --release --bin exp_recovery
//! ```

use std::sync::Arc;

use ceh_bench::{md_table, preload, quick_mode, throughput, RunConfig};
use ceh_core::{ConcurrentHashFile, Solution2};
use ceh_types::HashFileConfig;
use ceh_workload::{KeyDist, OpMix};

fn main() {
    let threads = 8;
    let total_ops = if quick_mode() { 1_600 } else { 16_000 };

    println!("### E4 — wrong-bucket recoveries (Solution 2, {threads} threads, {total_ops} ops)\n");
    let mut rows = Vec::new();
    for (label, mix) in OpMix::STANDARD_SWEEP {
        // Small buckets → frequent splits → maximal recovery pressure.
        for cap in [4usize, 64] {
            let cfg = HashFileConfig::default()
                .with_bucket_capacity(cap)
                .with_io_latency_ns(ceh_bench::SIM_IO_LATENCY_NS);
            let file = Arc::new(Solution2::new(cfg).unwrap());
            preload(&*file, 30_000, 1 << 16);
            file.set_io_latency_ns(ceh_bench::SIM_IO_LATENCY_NS);
            file.core().stats().reset();
            let r = throughput(
                &file,
                &RunConfig {
                    threads,
                    ops_per_thread: total_ops / threads as usize,
                    key_space: 1 << 16,
                    dist: KeyDist::Uniform,
                    mix,
                    latency_sample_every: 0,
                    seed: 0xE4,
                },
            );
            let s = file.core().stats().snapshot();
            rows.push(vec![
                label.to_string(),
                cap.to_string(),
                format!("{:.0}", r.ops_per_sec()),
                s.wrong_bucket_recoveries.to_string(),
                format!(
                    "{:.4}%",
                    100.0 * s.wrong_bucket_recoveries as f64 / s.total_ops() as f64
                ),
                format!("{:.2}", s.mean_recovery_hops()),
                s.splits.to_string(),
                s.merges.to_string(),
            ]);
        }
    }
    println!(
        "{}",
        md_table(
            &[
                "mix",
                "bucket cap",
                "ops/s",
                "recoveries",
                "recovery rate",
                "mean hops",
                "splits",
                "merges"
            ],
            &rows
        )
    );
}
