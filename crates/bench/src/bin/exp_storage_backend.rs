//! **E13 — Storage backends: the price of real files and what the
//! buffer cache buys** (DESIGN.md §12; grows E11's durability rows).
//!
//! E11 measured the WAL's tax against a *simulated* medium — an
//! in-memory byte image whose "fsync" is free. E13 re-runs that
//! comparison on the real [`FileBackend`] (frames + WAL files,
//! `fsync` on every group commit) and adds the two measurements only a
//! real medium makes meaningful:
//!
//! 1. **WAL tax by medium** — the same update-heavy workload volatile,
//!    durable-over-memory, and durable-over-files, with the backend
//!    sync-latency histogram (`storage.backend.sync_ns`) alongside;
//! 2. **Timed recovery by medium** — power cut, cold reopen, replay;
//! 3. **Cache hit ratio vs. capacity** — the CLOCK buffer cache's
//!    hit/miss/eviction/writeback counters as `cache_pages` shrinks
//!    below the working set.
//!
//! Results land in `results/exp_storage_backend.{json,md}`.
//!
//! ```sh
//! cargo run -p ceh-bench --release --bin exp_storage_backend
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;

use ceh_bench::{md_table, quick_mode, throughput, RunConfig};
use ceh_core::{ConcurrentHashFile, FileCore, Solution2};
use ceh_locks::LockManager;
use ceh_obs::MetricsHandle;
use ceh_storage::{BackendKind, DiskHandle, DurableConfig, DurableStore, PageStoreConfig};
use ceh_types::{hash_key, Bucket, HashFileConfig, Key, Value};
use ceh_workload::{KeyDist, OpMix};

const BUCKET_CAP: usize = 16;
const CHECKPOINT_EVERY: usize = 128;

/// RAII temp dir for the file-backend runs.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let p = std::env::temp_dir().join(format!("ceh-e13-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        TempDir(p)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn durable_cfg(cache_pages: usize) -> DurableConfig {
    DurableConfig {
        page: PageStoreConfig {
            page_size: Bucket::page_size_for(BUCKET_CAP),
            ..Default::default()
        },
        checkpoint_every: CHECKPOINT_EVERY,
        cache_pages,
        ..Default::default()
    }
}

fn make_disk(kind: BackendKind, dir: &PathBuf) -> DiskHandle {
    match kind {
        BackendKind::Memory => DiskHandle::new(Bucket::page_size_for(BUCKET_CAP)),
        BackendKind::File => {
            DiskHandle::create_file(dir, Bucket::page_size_for(BUCKET_CAP)).expect("file backend")
        }
    }
}

struct MediumRow {
    label: String,
    ops_per_sec: f64,
    wal_syncs: u64,
    backend_syncs: u64,
    sync_p50_us: f64,
    sync_p99_us: f64,
    frame_writes: u64,
    recovery_ms: f64,
    redo_applied: usize,
}

/// One durable lifetime on the given backend: preload, update-heavy
/// run, power cut, timed cold recovery.
fn durable_lifetime(kind: BackendKind, total_ops: usize, threads: u64) -> MediumRow {
    let tmp = TempDir::new(&format!("life-{kind}"));
    let cfg = HashFileConfig::default().with_bucket_capacity(BUCKET_CAP);
    let metrics = MetricsHandle::new();
    let dcfg = durable_cfg(DurableConfig::default().cache_pages);
    let disk = make_disk(kind, &tmp.0);
    let wal = DurableStore::with_disk(disk.clone(), dcfg.clone(), &metrics).expect("store");
    let core = FileCore::with_durable_metrics(
        cfg.clone(),
        Arc::clone(&wal),
        Arc::new(LockManager::default()),
        hash_key,
        &metrics,
    )
    .expect("durable file");
    let file = Arc::new(Solution2::from_core(core));
    for k in 0..2_000u64 {
        file.insert(Key(k), Value(k)).expect("preload");
    }
    let r = throughput(
        &file,
        &RunConfig {
            threads,
            ops_per_thread: total_ops / threads as usize,
            key_space: 1 << 13,
            dist: KeyDist::Uniform,
            mix: OpMix::UPDATE_HEAVY,
            latency_sample_every: 0,
            seed: 0xE13,
        },
    );
    let snap = metrics.snapshot();
    wal.power_off();
    drop(file);

    // Cold reopen for the file backend: recovery must come from the
    // files, not the warm handle.
    let disk = match kind {
        BackendKind::Memory => disk,
        BackendKind::File => {
            drop(disk);
            DiskHandle::open_file(&tmp.0, Bucket::page_size_for(BUCKET_CAP)).expect("reopen")
        }
    };
    let t0 = std::time::Instant::now();
    let (_recovered, rep) = FileCore::recover_durable_metrics(
        cfg,
        &disk,
        dcfg,
        Arc::new(LockManager::default()),
        hash_key,
        &metrics,
    )
    .expect("recovery");
    let recovery_ms = t0.elapsed().as_secs_f64() * 1e3;

    let sync_ns = snap.hist("storage.backend.sync_ns");
    MediumRow {
        label: format!("durable/{kind}"),
        ops_per_sec: r.ops_per_sec(),
        wal_syncs: snap.counter("storage.wal.syncs"),
        backend_syncs: snap.counter("storage.backend.syncs"),
        sync_p50_us: sync_ns.map_or(0.0, |h| h.p50 as f64 / 1e3),
        sync_p99_us: sync_ns.map_or(0.0, |h| h.p99 as f64 / 1e3),
        frame_writes: snap.counter("storage.backend.frame_writes"),
        recovery_ms,
        redo_applied: rep.redo_applied,
    }
}

fn volatile_baseline(total_ops: usize, threads: u64) -> f64 {
    let cfg = HashFileConfig::default().with_bucket_capacity(BUCKET_CAP);
    let file = Arc::new(Solution2::new(cfg).expect("file"));
    for k in 0..2_000u64 {
        file.insert(Key(k), Value(k)).expect("preload");
    }
    throughput(
        &file,
        &RunConfig {
            threads,
            ops_per_thread: total_ops / threads as usize,
            key_space: 1 << 13,
            dist: KeyDist::Uniform,
            mix: OpMix::UPDATE_HEAVY,
            latency_sample_every: 0,
            seed: 0xE13,
        },
    )
    .ops_per_sec()
}

struct CacheRow {
    cache_pages: usize,
    hits: u64,
    misses: u64,
    hit_ratio: f64,
    evictions: u64,
    writebacks: u64,
    ops_per_sec: f64,
}

/// A single-threaded durable run (memory backend — cache behavior is
/// backend-independent) touching many more pages than the cache holds.
fn cache_sweep_point(cache_pages: usize, total_ops: usize) -> CacheRow {
    // Capacity 4 → many small buckets → a working set of dozens of
    // pages, so small caches genuinely thrash.
    let cfg = HashFileConfig::default().with_bucket_capacity(4);
    let metrics = MetricsHandle::new();
    let dcfg = DurableConfig {
        page: PageStoreConfig {
            page_size: Bucket::page_size_for(4),
            ..Default::default()
        },
        checkpoint_every: usize::MAX, // evictions, not checkpoints, drain it
        cache_pages,
        ..Default::default()
    };
    let wal = DurableStore::new(dcfg, &metrics);
    let core = FileCore::with_durable_metrics(
        cfg,
        Arc::clone(&wal),
        Arc::new(LockManager::default()),
        hash_key,
        &metrics,
    )
    .expect("durable file");
    let file = Arc::new(Solution2::from_core(core));
    for k in 0..1_000u64 {
        file.insert(Key(k), Value(k)).expect("preload");
    }
    let r = throughput(
        &file,
        &RunConfig {
            threads: 1,
            ops_per_thread: total_ops,
            key_space: 1 << 11,
            dist: KeyDist::Zipf { theta: 0.9 },
            mix: OpMix::UPDATE_HEAVY,
            latency_sample_every: 0,
            seed: 0xE13,
        },
    );
    let snap = metrics.snapshot();
    let (hits, misses) = (
        snap.counter("storage.cache.hits"),
        snap.counter("storage.cache.misses"),
    );
    wal.power_off();
    CacheRow {
        cache_pages,
        hits,
        misses,
        hit_ratio: hits as f64 / (hits + misses).max(1) as f64,
        evictions: snap.counter("storage.cache.evictions"),
        writebacks: snap.counter("storage.cache.writebacks"),
        ops_per_sec: r.ops_per_sec(),
    }
}

fn main() {
    let threads = 4u64;
    let total_ops = if quick_mode() { 2_000 } else { 20_000 };
    let mut md = String::new();
    let _ = writeln!(
        md,
        "# E13 — storage backends: real files vs. the simulated medium\n"
    );
    let _ = writeln!(
        md,
        "{threads} threads, {total_ops} update-heavy ops, bucket capacity {BUCKET_CAP}, \
         checkpoint every {CHECKPOINT_EVERY} commits.\n"
    );

    // 1. WAL tax by medium.
    let baseline = volatile_baseline(total_ops, threads);
    let rows = [
        durable_lifetime(BackendKind::Memory, total_ops, threads),
        durable_lifetime(BackendKind::File, total_ops, threads),
    ];
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                format!("{:.0}", r.ops_per_sec),
                format!("{:.0}%", 100.0 * r.ops_per_sec / baseline),
                r.wal_syncs.to_string(),
                r.backend_syncs.to_string(),
                format!("{:.1}", r.sync_p50_us),
                format!("{:.1}", r.sync_p99_us),
                r.frame_writes.to_string(),
                format!("{:.2}", r.recovery_ms),
                r.redo_applied.to_string(),
            ]
        })
        .collect();
    let _ = writeln!(md, "## WAL tax and timed recovery by medium\n");
    let _ = writeln!(
        md,
        "volatile baseline: {baseline:.0} ops/s (same workload, no WAL)\n\n{}",
        md_table(
            &[
                "medium",
                "ops/s",
                "vs volatile",
                "wal syncs",
                "fsyncs",
                "sync p50 µs",
                "sync p99 µs",
                "frame writes",
                "recovery ms",
                "redo applied",
            ],
            &table
        )
    );
    let _ = writeln!(
        md,
        "\nThe file rows pay one real `fsync` per group commit (and two per\n\
         checkpoint: frames then the truncated log); the memory rows run the\n\
         identical durability-point sequence with free syncs, which is what\n\
         makes them a *medium simulator* rather than a different protocol.\n\
         Recovery on files includes a cold reopen — page images come back\n\
         off `frames.ceh`/`wal.ceh`, not from any warm state.\n"
    );

    // 2. Cache hit ratio vs. capacity.
    let cache_ops = if quick_mode() { 2_000 } else { 10_000 };
    let cache_rows: Vec<CacheRow> = [4usize, 8, 16, 32, 64, 256]
        .iter()
        .map(|&cp| cache_sweep_point(cp, cache_ops))
        .collect();
    let cache_table: Vec<Vec<String>> = cache_rows
        .iter()
        .map(|r| {
            vec![
                r.cache_pages.to_string(),
                r.hits.to_string(),
                r.misses.to_string(),
                format!("{:.1}%", 100.0 * r.hit_ratio),
                r.evictions.to_string(),
                r.writebacks.to_string(),
                format!("{:.0}", r.ops_per_sec),
            ]
        })
        .collect();
    let _ = writeln!(
        md,
        "## Buffer cache: hit ratio vs. capacity (zipf updates, 1 thread, {cache_ops} ops)\n"
    );
    let _ = writeln!(
        md,
        "{}",
        md_table(
            &[
                "cache pages",
                "hits",
                "misses",
                "hit ratio",
                "evictions",
                "writebacks",
                "ops/s",
            ],
            &cache_table
        )
    );
    let _ = writeln!(
        md,
        "\nA hit is a commit folding into a page already dirty in the cache;\n\
         an eviction writes the victim's frame early (log-first, so the\n\
         crash story is unchanged — see DESIGN.md §12). Once the cache\n\
         covers the hot set, evictions stop and every commit costs only\n\
         its WAL append.\n"
    );

    print!("{md}");

    // Machine-readable copy.
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"experiment\": \"E13\",");
    let _ = writeln!(j, "  \"threads\": {threads},");
    let _ = writeln!(j, "  \"total_ops\": {total_ops},");
    let _ = writeln!(j, "  \"checkpoint_every\": {CHECKPOINT_EVERY},");
    let _ = writeln!(j, "  \"volatile_baseline_ops_per_sec\": {baseline:.1},");
    let _ = writeln!(j, "  \"media\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"medium\": \"{}\", \"ops_per_sec\": {:.1}, \"wal_syncs\": {}, \
             \"backend_syncs\": {}, \"sync_p50_us\": {:.2}, \"sync_p99_us\": {:.2}, \
             \"frame_writes\": {}, \"recovery_ms\": {:.3}, \"redo_applied\": {}}}{}",
            r.label,
            r.ops_per_sec,
            r.wal_syncs,
            r.backend_syncs,
            r.sync_p50_us,
            r.sync_p99_us,
            r.frame_writes,
            r.recovery_ms,
            r.redo_applied,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(j, "  ],");
    let _ = writeln!(j, "  \"cache_sweep\": [");
    for (i, r) in cache_rows.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"cache_pages\": {}, \"hits\": {}, \"misses\": {}, \"hit_ratio\": {:.4}, \
             \"evictions\": {}, \"writebacks\": {}, \"ops_per_sec\": {:.1}}}{}",
            r.cache_pages,
            r.hits,
            r.misses,
            r.hit_ratio,
            r.evictions,
            r.writebacks,
            r.ops_per_sec,
            if i + 1 < cache_rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(j, "  ]");
    let _ = writeln!(j, "}}");

    for (path, body) in [
        ("results/exp_storage_backend.md", &md),
        ("results/exp_storage_backend.json", &j),
    ] {
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("exp_storage_backend: could not write {path}: {e}");
        } else {
            println!("({path} written)");
        }
    }
}
