//! CI smoke test for the unified metrics plane.
//!
//! Runs a 10k-operation mixed workload against Solution 2, collects the
//! one [`ceh_obs::RunReport`] the run produced, and checks that
//!
//! 1. the emitted JSON validates against
//!    `schemas/run_report.schema.json` (parsed and enforced by
//!    `ceh_obs::json` — no external JSON dependency);
//! 2. the report actually carries cross-layer signal: lock grants,
//!    page I/O, and the core operation counters are all non-zero, and
//!    the core counters conserve (ops issued == ops counted).
//!
//! Exits non-zero (with a diagnostic on stderr) on any failure, so
//! `scripts/ci.sh` can gate on it. Pass `--json` to print the report
//! JSON on stdout (the default prints the human table).

use std::sync::Arc;

use ceh_bench::{preload, run_report, throughput, RunConfig};
use ceh_core::Solution2;
use ceh_obs::json;
use ceh_types::HashFileConfig;
use ceh_workload::OpMix;

fn fail(msg: &str) -> ! {
    eprintln!("metrics_smoke: FAIL: {msg}");
    std::process::exit(1);
}

fn main() {
    let emit_json = std::env::args().any(|a| a == "--json");

    let file =
        Arc::new(Solution2::new(HashFileConfig::tiny().with_bucket_capacity(8)).expect("file"));
    preload(&*file, 500, 1 << 14);
    let cfg = RunConfig {
        threads: 4,
        ops_per_thread: 2_500, // 10k ops total
        key_space: 1 << 14,
        mix: OpMix::BALANCED,
        latency_sample_every: 0,
        ..Default::default()
    };
    let result = throughput(&file, &cfg);
    let report = run_report("metrics_smoke", &*file, &cfg, &result);

    // 1. Schema validation.
    let schema_path = std::env::var("CEH_SCHEMA")
        .unwrap_or_else(|_| "schemas/run_report.schema.json".to_string());
    let schema_src = std::fs::read_to_string(&schema_path)
        .unwrap_or_else(|e| fail(&format!("cannot read schema {schema_path}: {e}")));
    let schema =
        json::parse(&schema_src).unwrap_or_else(|e| fail(&format!("schema does not parse: {e}")));
    let doc = json::parse(&report.to_json())
        .unwrap_or_else(|e| fail(&format!("report JSON does not parse: {e}")));
    let violations = json::validate(&doc, &schema);
    if !violations.is_empty() {
        fail(&format!(
            "report violates {schema_path}:\n  {}",
            violations.join("\n  ")
        ));
    }

    // 2. Cross-layer signal + conservation.
    let m = report.metrics.clone();
    let issued = 10_500u64; // 500 preload inserts + 10k measured ops
    let counted = m.counter("core.finds_hit")
        + m.counter("core.finds_miss")
        + m.counter("core.inserts")
        + m.counter("core.inserts_duplicate")
        + m.counter("core.deletes")
        + m.counter("core.deletes_miss");
    if counted != issued {
        fail(&format!("ops issued {issued} != ops counted {counted}"));
    }
    for required in ["locks.grants.rho", "storage.reads", "storage.writes"] {
        if m.counter(required) == 0 {
            fail(&format!("expected nonzero {required}"));
        }
    }

    if emit_json {
        println!("{}", report.to_json());
    } else {
        println!("{}", report.to_table());
    }
    eprintln!("metrics_smoke: OK ({} ops, schema valid)", result.ops);
}
