//! CI smoke test for the unified metrics plane.
//!
//! Runs a 10k-operation mixed workload against Solution 2, collects the
//! one [`ceh_obs::RunReport`] the run produced, and checks that
//!
//! 1. the emitted JSON validates against
//!    `schemas/run_report.schema.json` (parsed and enforced by
//!    `ceh_obs::json` — no external JSON dependency);
//! 2. the report actually carries cross-layer signal: lock grants,
//!    page I/O, and the core operation counters are all non-zero, and
//!    the core counters conserve (ops issued == ops counted);
//! 3. a second, durable run over the real file backend (small buffer
//!    cache, temp dir) emits a report that also validates, with the
//!    `storage.backend.*` and `storage.cache.*` family non-zero —
//!    fsyncs happened, the cache hit and evicted, victims were written
//!    back.
//!
//! Exits non-zero (with a diagnostic on stderr) on any failure, so
//! `scripts/ci.sh` can gate on it. Pass `--json` to print the report
//! JSON on stdout (the default prints the human table).

use std::sync::Arc;

use ceh_bench::{preload, run_report, throughput, RunConfig};
use ceh_core::{FileCore, Solution2};
use ceh_locks::LockManager;
use ceh_obs::{json, MetricsHandle};
use ceh_storage::{DiskHandle, DurableConfig, DurableStore, PageStoreConfig};
use ceh_types::{hash_key, Bucket, HashFileConfig};
use ceh_workload::OpMix;

fn fail(msg: &str) -> ! {
    eprintln!("metrics_smoke: FAIL: {msg}");
    std::process::exit(1);
}

fn validate_against_schema(report: &ceh_obs::RunReport, label: &str) {
    let schema_path = std::env::var("CEH_SCHEMA")
        .unwrap_or_else(|_| "schemas/run_report.schema.json".to_string());
    let schema_src = std::fs::read_to_string(&schema_path)
        .unwrap_or_else(|e| fail(&format!("cannot read schema {schema_path}: {e}")));
    let schema =
        json::parse(&schema_src).unwrap_or_else(|e| fail(&format!("schema does not parse: {e}")));
    let doc = json::parse(&report.to_json())
        .unwrap_or_else(|e| fail(&format!("{label} report JSON does not parse: {e}")));
    let violations = json::validate(&doc, &schema);
    if !violations.is_empty() {
        fail(&format!(
            "{label} report violates {schema_path}:\n  {}",
            violations.join("\n  ")
        ));
    }
}

/// The durable leg: a real file backend in a temp dir, a buffer cache
/// far smaller than the working set, an update-heavy run. The report
/// must validate and carry the whole storage.backend.*/storage.cache.*
/// family.
fn durable_file_backend_leg() {
    let dir = std::env::temp_dir().join(format!("ceh-metrics-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = HashFileConfig::tiny().with_bucket_capacity(8);
    let page_size = Bucket::page_size_for(8);
    let metrics = MetricsHandle::new();
    let dcfg = DurableConfig {
        page: PageStoreConfig {
            page_size,
            ..Default::default()
        },
        checkpoint_every: 64,
        cache_pages: 8, // far under the working set: force evictions
        ..Default::default()
    };
    let disk = DiskHandle::create_file(&dir, page_size)
        .unwrap_or_else(|e| fail(&format!("create file backend: {e}")));
    let wal = DurableStore::with_disk(disk, dcfg, &metrics)
        .unwrap_or_else(|e| fail(&format!("durable store: {e}")));
    let core = FileCore::with_durable_metrics(
        cfg,
        Arc::clone(&wal),
        Arc::new(LockManager::default()),
        hash_key,
        &metrics,
    )
    .unwrap_or_else(|e| fail(&format!("durable file: {e}")));
    let file = Arc::new(Solution2::from_core(core));
    preload(&*file, 500, 1 << 10);
    let run = RunConfig {
        threads: 2,
        ops_per_thread: 1_000,
        key_space: 1 << 10,
        mix: OpMix::UPDATE_HEAVY,
        latency_sample_every: 0,
        ..Default::default()
    };
    let result = throughput(&file, &run);
    let report = run_report("metrics_smoke_file_backend", &*file, &run, &result);
    validate_against_schema(&report, "file-backend");
    let m = &report.metrics;
    for required in [
        "storage.backend.syncs",
        "storage.backend.frame_writes",
        "storage.backend.wal_appends",
        "storage.cache.hits",
        "storage.cache.misses",
        "storage.cache.evictions",
        "storage.cache.writebacks",
    ] {
        if m.counter(required) == 0 {
            fail(&format!("expected nonzero {required} on the file backend"));
        }
    }
    if m.hist("storage.backend.sync_ns").map_or(0, |h| h.count) == 0 {
        fail("expected storage.backend.sync_ns samples on the file backend");
    }
    wal.power_off();
    drop(file);
    let _ = std::fs::remove_dir_all(&dir);
    eprintln!(
        "metrics_smoke: file-backend leg OK ({} ops, backend + cache counters live)",
        result.ops
    );
}

fn main() {
    let emit_json = std::env::args().any(|a| a == "--json");

    let file =
        Arc::new(Solution2::new(HashFileConfig::tiny().with_bucket_capacity(8)).expect("file"));
    preload(&*file, 500, 1 << 14);
    let cfg = RunConfig {
        threads: 4,
        ops_per_thread: 2_500, // 10k ops total
        key_space: 1 << 14,
        mix: OpMix::BALANCED,
        latency_sample_every: 0,
        ..Default::default()
    };
    let result = throughput(&file, &cfg);
    let report = run_report("metrics_smoke", &*file, &cfg, &result);

    // 1. Schema validation.
    validate_against_schema(&report, "volatile");

    // 2. Cross-layer signal + conservation.
    let m = report.metrics.clone();
    let issued = 10_500u64; // 500 preload inserts + 10k measured ops
    let counted = m.counter("core.finds_hit")
        + m.counter("core.finds_miss")
        + m.counter("core.inserts")
        + m.counter("core.inserts_duplicate")
        + m.counter("core.deletes")
        + m.counter("core.deletes_miss");
    if counted != issued {
        fail(&format!("ops issued {issued} != ops counted {counted}"));
    }
    for required in ["locks.grants.rho", "storage.reads", "storage.writes"] {
        if m.counter(required) == 0 {
            fail(&format!("expected nonzero {required}"));
        }
    }

    // 3. The durable leg: real files, small cache, full counter family.
    durable_file_backend_leg();

    if emit_json {
        println!("{}", report.to_json());
    } else {
        println!("{}", report.to_table());
    }
    eprintln!("metrics_smoke: OK ({} ops, schema valid)", result.ops);
}
