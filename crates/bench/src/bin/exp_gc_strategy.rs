//! **A4 — Ablation: inline vs. background garbage collection**
//! (extension; see `ceh_core::GcStrategy`).
//!
//! Figure 9 runs the ξ-locked GC phase inline in every deleting process.
//! The extension hands tombstones to a collector thread that batches
//! many pages under one directory ξ-lock. Inline pays two extra
//! exclusive-lock acquisitions per merge on the deleter's critical path;
//! background amortizes them at the cost of tombstones lingering
//! slightly longer (they remain valid recovery paths throughout — the
//! structure is never incorrect either way).
//!
//! ```sh
//! cargo run -p ceh-bench --release --bin exp_gc_strategy
//! ```

use std::sync::Arc;

use ceh_bench::{md_table, preload, quick_mode, throughput, RunConfig};
use ceh_core::{ConcurrentHashFile, GcStrategy, Solution2, Solution2Options};
use ceh_types::HashFileConfig;
use ceh_workload::{KeyDist, OpMix};

fn main() {
    let threads = 8u64;
    let total_ops = if quick_mode() { 1_600 } else { 16_000 };
    // Small buckets + aggressive merging so deletes actually merge.
    let cfg = HashFileConfig::default()
        .with_bucket_capacity(8)
        .with_merge_threshold(2);

    println!("### A4 — GC strategy (Solution 2, capacity 8, merge threshold 2, churn mix, {threads} threads)\n");
    let mut rows = Vec::new();
    let strategies: Vec<(&str, GcStrategy)> = vec![
        ("inline (paper)", GcStrategy::Inline),
        ("background x1", GcStrategy::Background { batch: 1 }),
        ("background x16", GcStrategy::Background { batch: 16 }),
        ("background x64", GcStrategy::Background { batch: 64 }),
    ];
    for (label, gc) in strategies {
        let file = Arc::new(
            Solution2::with_options(
                cfg.clone(),
                Solution2Options {
                    max_retries: 10_000,
                    gc,
                },
            )
            .unwrap(),
        );
        preload(&*file, 30_000, 1 << 16);
        file.set_io_latency_ns(ceh_bench::SIM_IO_LATENCY_NS);
        file.core().stats().reset();
        let r = throughput(
            &file,
            &RunConfig {
                threads,
                ops_per_thread: total_ops / threads as usize,
                key_space: 1 << 16,
                dist: KeyDist::Uniform,
                mix: OpMix::CHURN,
                latency_sample_every: 4,
                seed: 0xA4,
            },
        );
        file.flush_gc();
        let s = file.core().stats().snapshot();
        ceh_core::invariants::check_concurrent_file(file.core()).unwrap();
        rows.push(vec![
            label.to_string(),
            format!("{:.0}", r.ops_per_sec()),
            format!("{:.0}", r.latency_us(50.0)),
            format!("{:.0}", r.latency_us(99.0)),
            s.merges.to_string(),
            s.gc_phases.to_string(),
        ]);
    }
    println!(
        "{}",
        md_table(
            &[
                "strategy",
                "ops/s",
                "p50 µs",
                "p99 µs",
                "merges",
                "gc passes"
            ],
            &rows
        )
    );
    println!("\ninvariants checked after each run (post-flush): structure identical either way.");
}
