//! **E10 — Throughput and tail latency under message loss** (DESIGN.md
//! §7, "Fault model & recovery guarantees").
//!
//! The paper assumes a perfectly reliable network; this experiment
//! measures what the resilience plane (client retry/failover, request
//! dedupe, acked replication) costs when that assumption is dropped.
//! Seeded fault plans drop and duplicate messages on the request/reply
//! and replication paths at increasing rates; we report client-visible
//! throughput and p50/p99 operation latency, and verify that every run
//! still converges to the exact expected state.
//!
//! ```sh
//! cargo run -p ceh-bench --release --bin exp_fault_tolerance
//! ```

use std::time::{Duration, Instant};

use ceh_bench::{md_table, quick_mode};
use ceh_dist::{Cluster, ClusterConfig};
use ceh_net::{FaultPlan, LatencyModel};
use ceh_types::{HashFileConfig, Key, RetryPolicy, Value};

const FAULTABLE: &[&str] = &[
    "request",
    "user-reply",
    "find",
    "insert",
    "delete",
    "bucketdone",
    "copyupdate",
    "copy-ack",
    "garbagecollect",
    "gc-ack",
];

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn main() {
    let clients: u64 = 4;
    let ops_per_client: u64 = if quick_mode() { 250 } else { 1_500 };
    let drop_rates: &[f64] = &[0.0, 0.01, 0.05];

    println!(
        "### E10 — resilience cost vs drop probability \
         ({clients} clients × {ops_per_client} ops, 3 replicas, 3 sites, \
         duplication at drop/5)\n"
    );
    let mut rows = Vec::new();
    for &drop in drop_rates {
        let faults = (drop > 0.0).then(|| {
            FaultPlan::new(0x0E10_0000 + (drop * 1000.0) as u64)
                .drop_classes(FAULTABLE, drop)
                .duplicate_classes(FAULTABLE, drop / 5.0)
        });
        let cluster = Cluster::start(ClusterConfig {
            dir_managers: 3,
            bucket_managers: 3,
            file: HashFileConfig::tiny().with_bucket_capacity(8),
            page_quota: Some(32),
            latency: LatencyModel::none(),
            data_dir: None,
            faults,
            retry: RetryPolicy {
                attempts: 80,
                timeout_ms: 150,
                base_backoff_ms: 1,
                max_backoff_ms: 10,
            },
            resend_ms: 100,
            reply_timeout_ms: 2_000,
            durable: false,
            backend: Default::default(),
        })
        .unwrap();

        let t0 = Instant::now();
        let handles: Vec<_> = (0..clients)
            .map(|t| {
                let client = cluster.client();
                std::thread::spawn(move || {
                    let mut lat = Vec::with_capacity(ops_per_client as usize);
                    let mut live = 0usize;
                    for i in 0..ops_per_client {
                        let k = i * clients + t; // disjoint per client
                        let op0 = Instant::now();
                        if i % 4 == 3 {
                            client.find(Key(k - 3 * clients)).unwrap();
                        } else {
                            client.insert(Key(k), Value(i)).unwrap();
                            live += 1;
                        }
                        lat.push(op0.elapsed());
                    }
                    (lat, live)
                })
            })
            .collect();
        let mut latencies = Vec::new();
        let mut expected = 0usize;
        for h in handles {
            let (lat, live) = h.join().unwrap();
            latencies.extend(lat);
            expected += live;
        }
        let wall = t0.elapsed();

        // Heal, drain, and hold the run to the correctness bar: a
        // throughput number from a diverged cluster would be meaningless.
        cluster.net().set_fault_plan(None);
        let quiesced = cluster.quiesce(Duration::from_secs(60));
        let exact = cluster.total_records().unwrap() == expected;
        let converged = cluster.replicas_converged();
        let stats = cluster.msg_stats();

        latencies.sort_unstable();
        let total_ops = clients * ops_per_client;
        rows.push(vec![
            format!("{:.0}%", drop * 100.0),
            format!("{:.0}", total_ops as f64 / wall.as_secs_f64()),
            format!("{:.2} ms", percentile(&latencies, 0.50).as_secs_f64() * 1e3),
            format!("{:.2} ms", percentile(&latencies, 0.99).as_secs_f64() * 1e3),
            stats.dropped_total().to_string(),
            stats.duplicated_total().to_string(),
            format!("{}", quiesced && converged && exact),
        ]);
        cluster.shutdown();
    }
    println!(
        "{}",
        md_table(
            &[
                "drop rate",
                "ops/s",
                "p50 latency",
                "p99 latency",
                "dropped",
                "duplicated",
                "exact+converged"
            ],
            &rows
        )
    );
    println!(
        "\nEvery row must end exact+converged=true: loss degrades latency, never correctness."
    );
}
