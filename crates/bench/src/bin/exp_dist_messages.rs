//! **E7 — Distributed message cost per operation** (DESIGN.md §6).
//!
//! §3's second design goal is "to minimize message traffic. Whenever
//! possible, the information needed for decision-making should be
//! available locally." This experiment counts messages by Figure-11
//! class per completed operation, sweeping the directory replication
//! factor — the cost of the availability the replication buys.
//!
//! ```sh
//! cargo run -p ceh-bench --release --bin exp_dist_messages
//! ```

use std::time::Duration;

use ceh_bench::{md_table, quick_mode};
use ceh_dist::{Cluster, ClusterConfig};
use ceh_net::LatencyModel;
use ceh_types::{HashFileConfig, Key, Value};
use ceh_workload::{KeyDist, Op, OpMix, WorkloadGen};

fn main() {
    let ops = if quick_mode() { 600 } else { 6_000 };
    let replicas: &[usize] = if quick_mode() { &[1, 3] } else { &[1, 2, 3, 5] };

    println!(
        "### E7 — messages per operation vs directory replication (2 bucket sites, mix 50/25/25)\n"
    );
    let mut rows = Vec::new();
    for &r in replicas {
        let c = Cluster::start(ClusterConfig {
            dir_managers: r,
            bucket_managers: 2,
            file: HashFileConfig::tiny().with_bucket_capacity(8),
            page_quota: None,
            latency: LatencyModel::none(),
            data_dir: None,
            ..Default::default()
        })
        .unwrap();
        let client = c.client();
        // Preload.
        for k in 0..500u64 {
            client.insert(Key(k), Value(k)).unwrap();
        }
        assert!(c.quiesce(Duration::from_secs(30)));
        c.net().reset_stats();

        let mut gen = WorkloadGen::new(0xE7, KeyDist::Uniform, 2000, OpMix::BALANCED);
        for op in gen.batch(ops) {
            match op {
                Op::Find(k) => {
                    client.find(k).unwrap();
                }
                Op::Insert(k, v) => {
                    client.insert(k, v).unwrap();
                }
                Op::Delete(k) => {
                    client.delete(k).unwrap();
                }
            }
        }
        assert!(c.quiesce(Duration::from_secs(30)));
        let stats = c.msg_stats();
        let per_op = |class: &str| format!("{:.3}", stats.get(class) as f64 / ops as f64);
        rows.push(vec![
            r.to_string(),
            format!("{:.2}", stats.total() as f64 / ops as f64),
            per_op("request"),
            per_op("find"),
            per_op("insert"),
            per_op("delete"),
            per_op("bucketdone"),
            per_op("update"),
            per_op("copyupdate"),
            per_op("copy-ack"),
            per_op("wrongbucket"),
            per_op("garbagecollect"),
        ]);
        c.shutdown();
    }
    println!(
        "{}",
        md_table(
            &[
                "replicas",
                "total/op",
                "request",
                "find",
                "insert",
                "delete",
                "bucketdone",
                "update",
                "copyupdate",
                "copy-ack",
                "wrongbucket",
                "gc"
            ],
            &rows
        )
    );
    println!("(status probes excluded from totals only in spirit; they are O(1) per run)");
}
