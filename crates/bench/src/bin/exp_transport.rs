//! **E12 — Real transport: loopback TCP vs the simulated plane**
//! (DESIGN.md §11).
//!
//! The simulated network (`SimNetwork`) moves messages through
//! in-process channels; the TCP plane (`TcpPlane`) moves the same
//! Figure 10–14 messages through length-prefixed, CRC-checked frames
//! over real sockets with a connection supervisor. This experiment
//! prices that realism: the same mixed workload runs against
//! (a) an in-process simulated cluster and (b) the same topology as
//! `ServeNode`s on loopback TCP, reporting ops/s and p50/p99 latency —
//! then measures how long a client is stalled when its connection to a
//! directory manager is severed mid-stream (supervisor redial + client
//! retry = time to next successful operation).
//!
//! Writes a machine-readable copy to `results/exp_transport.json`.
//!
//! ```sh
//! cargo run -p ceh-bench --release --bin exp_transport
//! ```

use std::fmt::Write as _;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

use ceh_bench::{md_table, quick_mode};
use ceh_dist::{
    Cluster, ClusterConfig, ClusterSpec, DistClient, NodeOptions, NodeRole, ServeNode,
    TcpClusterClient,
};
use ceh_net::{FaultPlan, LatencyModel, Transport};
use ceh_types::{HashFileConfig, Key, RetryPolicy, Value};

/// One measured run: total ops, wall clock, and latency percentiles.
struct RunStats {
    ops: u64,
    elapsed: Duration,
    p50_us: f64,
    p99_us: f64,
}

impl RunStats {
    fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64()
    }
}

fn file_config() -> HashFileConfig {
    HashFileConfig::tiny().with_bucket_capacity(64)
}

fn free_addrs(n: usize) -> Vec<SocketAddr> {
    let listeners: Vec<std::net::TcpListener> = (0..n)
        .map(|_| std::net::TcpListener::bind("127.0.0.1:0").expect("bind :0"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("addr"))
        .collect()
}

/// Drive the standard 60/20/20 insert/find/delete mix from `clients`
/// closed-loop threads against whatever plane `make_client` fronts,
/// timing every operation individually.
fn run_workload<F>(make_client: F, clients: u64, ops_per_client: u64, seed: u64) -> RunStats
where
    F: Fn() -> DistClient + Sync,
{
    let start = Instant::now();
    let mk = &make_client;
    let lats: Vec<Vec<u64>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                s.spawn(move || {
                    let client = mk();
                    let mut rng = seed ^ ((c + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                    let mut next = move || {
                        rng ^= rng << 13;
                        rng ^= rng >> 7;
                        rng ^= rng << 17;
                        rng
                    };
                    let base = (c + 1) << 32;
                    let span = (ops_per_client / 2).max(1);
                    let mut lat = Vec::with_capacity(ops_per_client as usize);
                    for _ in 0..ops_per_client {
                        let key = Key(base | (next() % span));
                        let t = Instant::now();
                        match next() % 10 {
                            0..=5 => {
                                client.insert(key, Value(next())).expect("insert");
                            }
                            6..=7 => {
                                client.find(key).expect("find");
                            }
                            _ => {
                                client.delete(key).expect("delete");
                            }
                        }
                        lat.push(t.elapsed().as_nanos() as u64);
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let elapsed = start.elapsed();
    let mut all: Vec<u64> = lats.into_iter().flatten().collect();
    all.sort_unstable();
    let pct = |p: f64| all[((all.len() - 1) as f64 * p) as usize] as f64 / 1_000.0;
    RunStats {
        ops: clients * ops_per_client,
        elapsed,
        p50_us: pct(0.50),
        p99_us: pct(0.99),
    }
}

/// The in-process simulated plane: 2 directory + 2 bucket managers,
/// zero modeled wire latency — the floor the TCP plane is priced
/// against.
fn simulated(clients: u64, ops_per_client: u64, seed: u64) -> RunStats {
    let c = Cluster::start(ClusterConfig {
        dir_managers: 2,
        bucket_managers: 2,
        file: file_config(),
        page_quota: None,
        latency: LatencyModel::none(),
        data_dir: None,
        ..Default::default()
    })
    .expect("start simulated cluster");
    let stats = run_workload(|| c.client(), clients, ops_per_client, seed);
    c.shutdown();
    stats
}

/// The same topology over loopback TCP: every manager a `ServeNode` on
/// its own socket, the client a `TcpClusterClient` on a fourth plane.
fn tcp(clients: u64, ops_per_client: u64, seed: u64, trials: usize) -> (RunStats, Vec<f64>) {
    let addrs = free_addrs(4);
    let spec = ClusterSpec {
        nodes: vec![
            (NodeRole::Dir, addrs[0]),
            (NodeRole::Dir, addrs[1]),
            (NodeRole::Bucket, addrs[2]),
            (NodeRole::Bucket, addrs[3]),
        ],
    };
    let opts = NodeOptions {
        file: file_config(),
        seed,
        ..Default::default()
    };
    let nodes: Vec<ServeNode> = (0..spec.nodes.len())
        .map(|i| ServeNode::start(&spec, i, &opts).expect("start node"))
        .collect();

    let conn =
        TcpClusterClient::connect(&spec, 500, RetryPolicy::default(), &opts).expect("connect");
    let stats = run_workload(|| conn.client(), clients, ops_per_client, seed);
    conn.close();

    let recovery = measure_recovery(&spec, &opts, trials);

    let shutdown =
        TcpClusterClient::connect(&spec, 502, RetryPolicy::default(), &opts).expect("connect");
    shutdown.shutdown_cluster();
    for n in nodes {
        n.join().expect("clean exit");
    }
    (stats, recovery)
}

/// Sever the client→directory connection mid-stream and time how long
/// until the link is *Healthy again*: supervisor detection + backoff +
/// redial. (A sever never loses the frame that triggered it — the frame
/// is written first — so "time to next successful op" would mostly
/// measure nothing; the cost of a sever is the heal, paid by whichever
/// operation next needs the torn-down reply path.)
fn measure_recovery(spec: &ClusterSpec, opts: &NodeOptions, trials: usize) -> Vec<f64> {
    let retry = RetryPolicy {
        attempts: 200,
        timeout_ms: 100,
        base_backoff_ms: 1,
        max_backoff_ms: 20,
    };
    let conn = TcpClusterClient::connect(spec, 501, retry, opts).expect("connect");
    let client = conn.client();
    let metrics = conn.metrics();
    client.find(Key(1)).expect("warm find");

    let mut out = Vec::with_capacity(trials);
    for trial in 0..trials {
        let reconnects = metrics.counter("net.tcp.reconnect").get();
        // Arm a one-shot guillotine: the next data frame is written and
        // then its connection is torn down.
        conn.plane()
            .set_fault_plan(Some(FaultPlan::new(trial as u64).sever_all(1.0)));
        let t0 = Instant::now();
        client.find(Key(1)).expect("find across sever");
        conn.plane().set_fault_plan(None);
        // The heal is a counted reconnect with every link Healthy.
        let deadline = Instant::now() + Duration::from_secs(30);
        while metrics.counter("net.tcp.reconnect").get() == reconnects
            || (1..=spec.nodes.len() as u16)
                .any(|n| conn.plane().peer_state(n) != Some(ceh_net::PeerState::Healthy))
        {
            assert!(Instant::now() < deadline, "link never healed after sever");
            std::thread::sleep(Duration::from_micros(200));
        }
        out.push(t0.elapsed().as_secs_f64() * 1_000.0);
    }
    conn.close();
    out.sort_by(|a, b| a.partial_cmp(b).expect("ordered"));
    out
}

fn main() {
    let total_ops: u64 = if quick_mode() { 2_000 } else { 20_000 };
    let trials = if quick_mode() { 5 } else { 10 };
    let seed = 0xE12_5EED;

    println!(
        "### E12 — loopback TCP vs simulated plane (2 dir + 2 bucket managers, mix 60/20/20)\n"
    );
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut recovery_json = String::new();
    for &clients in &[1u64, 4] {
        let per_client = total_ops / clients;
        let sim = simulated(clients, per_client, seed);
        let (net, recovery) = tcp(
            clients,
            per_client,
            seed,
            if clients == 1 { trials } else { 0 },
        );
        for (plane, r) in [("simulated", &sim), ("tcp", &net)] {
            rows.push(vec![
                plane.to_string(),
                clients.to_string(),
                r.ops.to_string(),
                format!("{:.0}", r.ops_per_sec()),
                format!("{:.1}", r.p50_us),
                format!("{:.1}", r.p99_us),
            ]);
            json_rows.push(format!(
                "    {{\"plane\": \"{plane}\", \"clients\": {clients}, \"ops\": {}, \
                 \"ops_per_sec\": {:.1}, \"p50_us\": {:.1}, \"p99_us\": {:.1}}}",
                r.ops,
                r.ops_per_sec(),
                r.p50_us,
                r.p99_us
            ));
        }
        if !recovery.is_empty() {
            let med = recovery[recovery.len() / 2];
            println!(
                "sever recovery, time to a healed (reconnected) link ({} trials): \
                 min {:.1} ms / median {med:.1} ms / max {:.1} ms",
                recovery.len(),
                recovery[0],
                recovery[recovery.len() - 1],
            );
            let mut j = String::new();
            let _ = writeln!(j, "  \"recovery\": {{");
            let _ = writeln!(j, "    \"trials\": {},", recovery.len());
            let _ = writeln!(j, "    \"min_ms\": {:.2},", recovery[0]);
            let _ = writeln!(j, "    \"median_ms\": {med:.2},");
            let _ = writeln!(j, "    \"max_ms\": {:.2}", recovery[recovery.len() - 1]);
            let _ = write!(j, "  }},");
            recovery_json = j;
        }
    }
    println!();
    println!(
        "{}",
        md_table(
            &["plane", "clients", "ops", "ops/s", "p50 µs", "p99 µs"],
            &rows
        )
    );

    // Machine-readable copy for results/.
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"experiment\": \"E12\",");
    let _ = writeln!(j, "  \"total_ops\": {total_ops},");
    if !recovery_json.is_empty() {
        let _ = writeln!(j, "{recovery_json}");
    }
    let _ = writeln!(j, "  \"rows\": [");
    let _ = writeln!(j, "{}", json_rows.join(",\n"));
    let _ = writeln!(j, "  ]");
    let _ = writeln!(j, "}}");
    if let Err(e) = std::fs::write("results/exp_transport.json", &j) {
        eprintln!("exp_transport: could not write results/exp_transport.json: {e}");
    } else {
        println!("\n(JSON copy written to results/exp_transport.json)");
    }
}
