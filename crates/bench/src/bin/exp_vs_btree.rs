//! **E6 — Extendible hashing vs. the B-link tree** (DESIGN.md §6).
//!
//! The comparison the paper's §4 promises: "we will evaluate the
//! performance of these algorithms and comparable B-tree solutions."
//! Point operations only (the hash file does not support range scans —
//! the B-tree's actual advantage, noted in EXPERIMENTS.md).
//!
//! ```sh
//! cargo run -p ceh-bench --release --bin exp_vs_btree
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use ceh_bench::{md_table, preload, quick_mode, throughput, RunConfig};
use ceh_btree::{BLinkTree, BLinkTreeConfig};
use ceh_core::{ConcurrentHashFile, Solution2};
use ceh_types::{HashFileConfig, Value};
use ceh_workload::{KeyDist, Op, OpMix, WorkloadGen};

const KEY_SPACE: u64 = 1 << 17;

/// The B-link tree doesn't implement `ConcurrentHashFile` (different
/// crate layer), so it gets a parallel little driver.
fn btree_throughput(tree: Arc<BLinkTree>, threads: u64, ops_per_thread: usize, mix: OpMix) -> f64 {
    let flag = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let tree = Arc::clone(&tree);
            let flag = Arc::clone(&flag);
            std::thread::spawn(move || {
                let mut gen = WorkloadGen::new(0xE6 + t, KeyDist::Uniform, KEY_SPACE, mix);
                let ops = gen.batch(ops_per_thread);
                while !flag.load(Ordering::Acquire) {
                    std::hint::spin_loop();
                }
                for op in ops {
                    match op {
                        Op::Find(k) => {
                            tree.find(k).unwrap();
                        }
                        Op::Insert(k, v) => {
                            tree.insert(k, v).unwrap();
                        }
                        Op::Delete(k) => {
                            tree.delete(k).unwrap();
                        }
                    }
                }
            })
        })
        .collect();
    let start = Instant::now();
    flag.store(true, Ordering::Release);
    for h in handles {
        h.join().unwrap();
    }
    (threads as usize * ops_per_thread) as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let total_ops = if quick_mode() { 40_000 } else { 400_000 };
    let threads: &[u64] = if quick_mode() { &[4] } else { &[1, 4, 8, 16] };

    for (label, mix) in OpMix::STANDARD_SWEEP {
        println!("\n### E6 — mix {label}, Solution 2 vs B-link tree (capacity/fanout 64)\n");
        let mut rows = Vec::new();
        for &t in threads {
            let hash = Arc::new(
                Solution2::new(HashFileConfig::default().with_bucket_capacity(64)).unwrap(),
            );
            preload(&*hash, 50_000, KEY_SPACE);
            let h = throughput(
                &hash,
                &RunConfig {
                    threads: t,
                    ops_per_thread: total_ops / t as usize,
                    key_space: KEY_SPACE,
                    dist: KeyDist::Uniform,
                    mix,
                    latency_sample_every: 0,
                    seed: 0xE6,
                },
            )
            .ops_per_sec();

            let tree = Arc::new(BLinkTree::new(BLinkTreeConfig { fanout: 64 }));
            for key in ceh_workload::prefill_keys(50_000, KEY_SPACE) {
                tree.insert(key, Value(key.0)).unwrap();
            }
            let b = btree_throughput(Arc::clone(&tree), t, total_ops / t as usize, mix);
            rows.push(vec![
                t.to_string(),
                format!("{h:.0}"),
                format!("{b:.0}"),
                format!("{:.2}x", h / b),
            ]);
        }
        println!(
            "{}",
            md_table(
                &["threads", "ext-hash ops/s", "b-link ops/s", "hash/btree"],
                &rows
            )
        );
    }

    // The structural difference the point-op tables can't show: ordered
    // range scans. The B-link tree walks its leaf chain; the hash file's
    // only option is a full sweep + filter (adjacent keys are scattered
    // across buckets by the pseudokey hash).
    println!("\n### E6b — range scan of 1000 consecutive keys (50k-key structures)\n");
    let hash =
        Arc::new(Solution2::new(HashFileConfig::default().with_bucket_capacity(64)).unwrap());
    let tree = Arc::new(BLinkTree::new(BLinkTreeConfig { fanout: 64 }));
    for k in 0..50_000u64 {
        hash.insert(ceh_types::Key(k), Value(k)).unwrap();
        tree.insert(ceh_types::Key(k), Value(k)).unwrap();
    }
    let reps = if quick_mode() { 20 } else { 200 };
    let t0 = Instant::now();
    let mut got = 0usize;
    for i in 0..reps {
        let lo = (i as u64 * 37) % 49_000;
        got += tree
            .range(ceh_types::Key(lo), ceh_types::Key(lo + 999))
            .len();
    }
    let tree_us = t0.elapsed().as_secs_f64() * 1e6 / reps as f64;
    let t1 = Instant::now();
    let mut got2 = 0usize;
    for i in 0..reps {
        let lo = (i as u64 * 37) % 49_000;
        // The hash file's "range scan": sweep every bucket, filter.
        let snap = ceh_core::invariants::snapshot_core(hash.core()).unwrap();
        got2 += snap
            .buckets
            .values()
            .flat_map(|b| b.records.iter())
            .filter(|r| r.key.0 >= lo && r.key.0 <= lo + 999)
            .count();
    }
    let hash_us = t1.elapsed().as_secs_f64() * 1e6 / reps as f64;
    assert_eq!(got, got2, "both scans agree on the result set");
    println!(
        "{}",
        md_table(
            &["structure", "µs/scan", "notes"],
            &[
                vec![
                    "b-link range".into(),
                    format!("{tree_us:.0}"),
                    "leaf-chain walk".into()
                ],
                vec![
                    "ext-hash sweep".into(),
                    format!("{hash_us:.0}"),
                    format!("{:.0}x slower: full-file sweep", hash_us / tree_us),
                ],
            ]
        )
    );
}
