//! **E2 — Update-fraction sweep** (DESIGN.md §6).
//!
//! Claim under test (§2.4): Solution 1 serializes updaters on the
//! directory for their entire operation, while Solution 2 α-locks it only
//! when the directory actually changes — so Solution 2's advantage grows
//! with the update fraction.
//!
//! ```sh
//! cargo run -p ceh-bench --release --bin exp_update_sweep
//! ```

use std::sync::Arc;

use ceh_bench::{md_table, preload, quick_mode, throughput, RunConfig};
use ceh_core::{ConcurrentHashFile, Solution1, Solution2};
use ceh_types::HashFileConfig;
use ceh_workload::{KeyDist, OpMix};

fn main() {
    let cfg = HashFileConfig::default().with_bucket_capacity(64);
    let threads = 8u64;
    let total_ops = if quick_mode() { 1_600 } else { 16_000 };
    let fractions: &[u32] = if quick_mode() {
        &[0, 50, 100]
    } else {
        &[0, 10, 20, 40, 60, 80, 100]
    };

    println!("### E2 — throughput vs update fraction, {threads} threads\n");
    let mut rows = Vec::new();
    for &pct in fractions {
        let mix = OpMix::with_update_pct(pct);
        let run = |file: Arc<dyn ConcurrentHashFile>| {
            preload(&*file, 50_000, 1 << 17);
            file.set_io_latency_ns(ceh_bench::SIM_IO_LATENCY_NS);
            throughput(
                &file,
                &RunConfig {
                    threads,
                    ops_per_thread: total_ops / threads as usize,
                    key_space: 1 << 17,
                    dist: KeyDist::Uniform,
                    mix,
                    latency_sample_every: 0,
                    seed: 0xE2,
                },
            )
            .ops_per_sec()
        };
        let s1_file = Arc::new(Solution1::new(cfg.clone()).unwrap());
        let s1 = run(Arc::clone(&s1_file) as _);
        let s1_waits = s1_file.core().locks().stats();
        let s2_file = Arc::new(Solution2::new(cfg.clone()).unwrap());
        let s2 = run(Arc::clone(&s2_file) as _);
        let s2_waits = s2_file.core().locks().stats();
        rows.push(vec![
            format!("{pct}%"),
            format!("{s1:.0}"),
            format!("{s2:.0}"),
            format!("{:.2}x", s2 / s1),
            format!("{:.3}", s1_waits.contention_ratio()),
            format!("{:.3}", s2_waits.contention_ratio()),
        ]);
    }
    println!(
        "{}",
        md_table(
            &[
                "updates",
                "solution1 ops/s",
                "solution2 ops/s",
                "s2/s1",
                "s1 wait ratio",
                "s2 wait ratio"
            ],
            &rows
        )
    );
}
