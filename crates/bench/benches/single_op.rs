//! Single-threaded operation latency across the four centralized
//! implementations and the B-link tree: what each protocol's locking
//! discipline costs before any contention exists.

use ceh_btree::{BLinkTree, BLinkTreeConfig};
use ceh_core::{ConcurrentHashFile, GlobalLockFile, Solution1, Solution2};
use ceh_sequential::SequentialHashFile;
use ceh_types::{HashFileConfig, Key, Value};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const PRELOAD: u64 = 100_000;

fn preload_concurrent(f: &dyn ConcurrentHashFile) {
    for k in 0..PRELOAD {
        f.insert(Key(k), Value(k)).unwrap();
    }
}

fn bench_find(c: &mut Criterion) {
    let mut group = c.benchmark_group("find_hot");
    let cfg = HashFileConfig::default().with_bucket_capacity(64);

    let mut seq = SequentialHashFile::new(cfg.clone()).unwrap();
    for k in 0..PRELOAD {
        seq.insert(Key(k), Value(k)).unwrap();
    }
    let mut i = 0u64;
    group.bench_function("sequential", |b| {
        b.iter(|| {
            i = (i + 7919) % PRELOAD;
            black_box(seq.find(Key(i)).unwrap())
        })
    });

    let s1 = Solution1::new(cfg.clone()).unwrap();
    preload_concurrent(&s1);
    group.bench_function("solution1", |b| {
        b.iter(|| {
            i = (i + 7919) % PRELOAD;
            black_box(s1.find(Key(i)).unwrap())
        })
    });

    let s2 = Solution2::new(cfg.clone()).unwrap();
    preload_concurrent(&s2);
    group.bench_function("solution2", |b| {
        b.iter(|| {
            i = (i + 7919) % PRELOAD;
            black_box(s2.find(Key(i)).unwrap())
        })
    });

    let gl = GlobalLockFile::new(cfg.clone()).unwrap();
    preload_concurrent(&gl);
    group.bench_function("global_lock", |b| {
        b.iter(|| {
            i = (i + 7919) % PRELOAD;
            black_box(gl.find(Key(i)).unwrap())
        })
    });

    let bt = BLinkTree::new(BLinkTreeConfig { fanout: 64 });
    for k in 0..PRELOAD {
        bt.insert(Key(k), Value(k)).unwrap();
    }
    group.bench_function("blink_tree", |b| {
        b.iter(|| {
            i = (i + 7919) % PRELOAD;
            black_box(bt.find(Key(i)).unwrap())
        })
    });
    group.finish();
}

fn bench_insert_delete_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("insert_delete_cycle");
    let cfg = HashFileConfig::default().with_bucket_capacity(64);

    let s1 = Solution1::new(cfg.clone()).unwrap();
    preload_concurrent(&s1);
    let mut k = PRELOAD;
    group.bench_function("solution1", |b| {
        b.iter(|| {
            k += 1;
            s1.insert(Key(k), Value(k)).unwrap();
            s1.delete(Key(k)).unwrap();
        })
    });

    let s2 = Solution2::new(cfg.clone()).unwrap();
    preload_concurrent(&s2);
    group.bench_function("solution2", |b| {
        b.iter(|| {
            k += 1;
            s2.insert(Key(k), Value(k)).unwrap();
            s2.delete(Key(k)).unwrap();
        })
    });

    let gl = GlobalLockFile::new(cfg).unwrap();
    preload_concurrent(&gl);
    group.bench_function("global_lock", |b| {
        b.iter(|| {
            k += 1;
            gl.insert(Key(k), Value(k)).unwrap();
            gl.delete(Key(k)).unwrap();
        })
    });

    let bt = BLinkTree::new(BLinkTreeConfig { fanout: 64 });
    for kk in 0..PRELOAD {
        bt.insert(Key(kk), Value(kk)).unwrap();
    }
    group.bench_function("blink_tree", |b| {
        b.iter(|| {
            k += 1;
            bt.insert(Key(k), Value(k)).unwrap();
            bt.delete(Key(k)).unwrap();
        })
    });
    group.finish();
}

criterion_group! {
    name = single_op;
    config = Criterion::default()
        .sample_size(30)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_find, bench_insert_delete_cycle
}
criterion_main!(single_op);
