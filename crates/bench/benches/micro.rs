//! Micro-benchmarks of the primitives every operation is built from:
//! pseudokey hashing, the bucket page codec, atomic page I/O, and the
//! three lock modes (including the ρ→α conversion that Solution 2's
//! deadlock-freedom argument leans on).

use std::sync::Arc;

use ceh_locks::{LockId, LockManager, LockMode};
use ceh_storage::{PageStore, PageStoreConfig};
use ceh_types::bucket::Bucket;
use ceh_types::{hash_key, Key, PageId, Pseudokey, Record};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn bench_hash(c: &mut Criterion) {
    c.bench_function("hash_key", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = k.wrapping_add(1);
            black_box(hash_key(Key(k)))
        })
    });
}

fn bench_codec(c: &mut Criterion) {
    let mut bucket = Bucket::new(8, 0xAB);
    for i in 0..250u64 {
        bucket.add(Record::new(i * 256 + 0xAB, i));
    }
    let mut page = vec![0u8; Bucket::page_size_for(250)];
    c.bench_function("bucket_encode_250", |b| {
        b.iter(|| bucket.encode(black_box(&mut page)).unwrap())
    });
    bucket.encode(&mut page).unwrap();
    c.bench_function("bucket_decode_250", |b| {
        b.iter(|| black_box(Bucket::decode(black_box(&page)).unwrap()))
    });
    c.bench_function("bucket_owns_check", |b| {
        let pk = Pseudokey(0x1AB);
        b.iter(|| black_box(bucket.owns(black_box(pk))))
    });
    c.bench_function("bucket_owns_by_rehash", |b| {
        let pk = Pseudokey(0x1AB);
        b.iter(|| black_box(bucket.owns_by_rehash(black_box(pk), hash_key)))
    });
}

fn bench_page_io(c: &mut Criterion) {
    let store = PageStore::new_shared(PageStoreConfig {
        page_size: 4096,
        ..Default::default()
    });
    let p = store.alloc().unwrap();
    let buf = store.new_buf();
    store.write(p, &buf).unwrap();
    c.bench_function("page_write_4k", |b| {
        b.iter(|| store.write(p, black_box(&buf)).unwrap())
    });
    c.bench_function("page_read_4k", |b| {
        let mut out = store.new_buf();
        b.iter(|| store.read(p, black_box(&mut out)).unwrap())
    });
}

fn bench_locks(c: &mut Criterion) {
    let mgr = Arc::new(LockManager::default());
    let id = LockId::Page(PageId(1));
    for (name, mode) in [
        ("lock_unlock_rho", LockMode::Rho),
        ("lock_unlock_alpha", LockMode::Alpha),
        ("lock_unlock_xi", LockMode::Xi),
    ] {
        c.bench_function(name, |b| {
            b.iter_batched(
                || mgr.new_owner(),
                |o| {
                    mgr.lock(o, id, mode);
                    mgr.unlock(o, id, mode);
                },
                BatchSize::SmallInput,
            )
        });
    }
    // The Figure-8 conversion pattern: hold ρ, take α, release both.
    c.bench_function("rho_then_alpha_conversion", |b| {
        b.iter_batched(
            || mgr.new_owner(),
            |o| {
                mgr.lock(o, LockId::Directory, LockMode::Rho);
                mgr.lock(o, LockId::Directory, LockMode::Alpha);
                mgr.unlock(o, LockId::Directory, LockMode::Alpha);
                mgr.unlock(o, LockId::Directory, LockMode::Rho);
            },
            BatchSize::SmallInput,
        )
    });
    // Contended ρ: background readers holding the lock.
    c.bench_function("rho_under_shared_readers", |b| {
        let bg = mgr.new_owner();
        mgr.lock(bg, id, LockMode::Rho);
        b.iter_batched(
            || mgr.new_owner(),
            |o| {
                mgr.lock(o, id, LockMode::Rho);
                mgr.unlock(o, id, LockMode::Rho);
            },
            BatchSize::SmallInput,
        );
        mgr.unlock(bg, id, LockMode::Rho);
    });
}

criterion_group! {
    name = micro;
    config = Criterion::default()
        .sample_size(30)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_hash, bench_codec, bench_page_io, bench_locks
}
criterion_main!(micro);
