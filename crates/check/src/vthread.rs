//! Cooperative virtual-thread scheduler over the lock manager's wait
//! points.
//!
//! Each *virtual thread* is a real OS thread, but a token-passing
//! [`Scheduler`] guarantees at most one of them executes at a time: a
//! thread runs until its next *yield point* — a lock acquire, a blocking
//! wait, or a release, surfaced by a [`ceh_locks::WaitHook`]
//! ([`ExplorerHook`]) — then parks until the controller hands it the
//! token again. The sequence of "which thread got the token" choices is
//! the **schedule**; replaying the same choices replays the same
//! execution bit for bit, which is what makes exploration and fixture
//! replay deterministic.
//!
//! Blocking is virtualized too: when the lock manager would put a thread
//! on a condvar, [`ExplorerHook::at_block`] parks it in the scheduler
//! instead, marked *blocked on* that lock. A release wakes every thread
//! blocked on the released lock back to ready; the manager then re-checks
//! grantability when the thread is next scheduled (and the thread simply
//! parks again if a FIFO-earlier waiter still excludes it). If no thread
//! is ready and not all are done, the virtual threads have genuinely
//! deadlocked — the scheduler reports it and aborts the run by panicking
//! the parked workers with a sentinel payload.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use ceh_locks::{LockId, LockMode, OwnerId, WaitHook};
use parking_lot::{Condvar, Mutex};

thread_local! {
    static VTHREAD: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Panic payload used to tear parked workers out of the lock manager
/// when a run is aborted (deadlock or divergence). Expected; the worker
/// wrapper swallows it.
pub const ABORT_MSG: &str = "ceh-check: schedule aborted";

/// The id of the virtual thread running on this OS thread, if any.
/// Threads not registered with a scheduler (the controller running
/// setup, for example) see `None` and bypass all yield points.
pub fn current_vthread() -> Option<usize> {
    VTHREAD.with(|c| c.get())
}

/// The next action a ready virtual thread will take when scheduled —
/// the granularity at which the explorer reasons about independence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pending {
    /// Not started yet; first action unknown.
    Start,
    /// Will attempt to acquire this lock.
    Acquire(LockId),
    /// Just released this lock; next visible action unknown.
    AfterRelease(LockId),
}

impl Pending {
    /// Two pending actions are *dependent* if reordering them could
    /// change the execution. Acquires on distinct locks commute; any
    /// action whose footprint is unknown is conservatively dependent
    /// with everything.
    pub fn dependent(self, other: Pending) -> bool {
        match (self, other) {
            (Pending::Acquire(a), Pending::Acquire(b)) => a == b,
            _ => true,
        }
    }
}

/// One scheduling decision: which ready thread got the token, and which
/// *other* choices would have been legal under the preemption bound (the
/// explorer forks a new schedule prefix for each alternative).
#[derive(Debug, Clone)]
pub struct Decision {
    /// The thread that was scheduled.
    pub chosen: usize,
    /// Ready threads that could legally have been scheduled instead.
    pub alternatives: Vec<usize>,
}

/// Everything one serialized execution produced.
#[derive(Debug)]
pub struct RunOutcome {
    /// The decision at every scheduling point, in order. The `chosen`
    /// projection is the full replayable schedule.
    pub decisions: Vec<Decision>,
    /// First execution failure: an operation error, a worker panic, or
    /// a virtual-thread deadlock. `None` for a clean run.
    pub failure: Option<String>,
    /// The prefix named a thread that was not ready, so the run fell
    /// back to the default policy. Never happens when replaying choices
    /// recorded from a deterministic workload; minimization uses it to
    /// discard mangled candidate schedules.
    pub diverged: bool,
}

impl RunOutcome {
    /// The schedule that reproduces this execution when passed back as
    /// a prefix.
    pub fn choices(&self) -> Vec<usize> {
        self.decisions.iter().map(|d| d.chosen).collect()
    }
}

/// Knobs for the controller's choice enumeration.
#[derive(Debug, Clone, Copy)]
pub struct ControllerConfig {
    /// Maximum number of *preemptions* (switching away from a thread
    /// that could have kept running) per execution. Forced switches —
    /// the running thread blocked or finished — are free.
    pub preemption_bound: usize,
    /// Prune preemptions between threads whose pending actions are
    /// provably independent (acquires on distinct locks). A big cut for
    /// 3+-thread workloads; heuristic, so the small acceptance workloads
    /// are also run with it off.
    pub dpor: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum St {
    Ready,
    Running,
    Blocked,
    Done,
}

struct Inner {
    st: Vec<St>,
    pending: Vec<Pending>,
    blocked_on: Vec<Option<LockId>>,
    /// The thread currently holding the execution token.
    current: Option<usize>,
    /// The last thread scheduled (for preemption accounting).
    last: Option<usize>,
    abort: bool,
    failure: Option<String>,
    diverged: bool,
}

/// Token-passing scheduler for one serialized execution. Create one per
/// run with [`Scheduler::new`], install an [`ExplorerHook`] pointing at
/// it, then call [`Scheduler::run`].
pub struct Scheduler {
    inner: Mutex<Inner>,
    cv: Condvar,
}

/// A virtual thread's body: runs the ops, returns `Err` with a
/// description on the first operation failure.
pub type Body<'env> = Box<dyn FnOnce() -> Result<(), String> + Send + 'env>;

impl Scheduler {
    /// A scheduler for `n` virtual threads, all initially ready.
    pub fn new(n: usize) -> Arc<Self> {
        Arc::new(Scheduler {
            inner: Mutex::new(Inner {
                st: vec![St::Ready; n],
                pending: vec![Pending::Start; n],
                blocked_on: vec![None; n],
                current: None,
                last: None,
                abort: false,
                failure: None,
                diverged: false,
            }),
            cv: Condvar::new(),
        })
    }

    /// Run the bodies to completion under `prefix`: decisions at
    /// positions covered by the prefix follow it; beyond it the default
    /// policy applies (keep running the previous thread, else the
    /// lowest-index ready one), with every legal alternative recorded
    /// for the explorer to fork on.
    pub fn run<'env>(
        self: &Arc<Self>,
        bodies: Vec<Body<'env>>,
        prefix: &[usize],
        cfg: &ControllerConfig,
    ) -> RunOutcome {
        assert_eq!(bodies.len(), self.inner.lock().st.len());
        std::thread::scope(|s| {
            for (i, body) in bodies.into_iter().enumerate() {
                let sched = Arc::clone(self);
                s.spawn(move || worker_main(sched, i, body));
            }
            self.run_controller(prefix, cfg)
        })
    }

    fn run_controller(&self, prefix: &[usize], cfg: &ControllerConfig) -> RunOutcome {
        let mut decisions: Vec<Decision> = Vec::new();
        let mut preemptions = 0usize;
        let mut inner = self.inner.lock();
        loop {
            while inner.current.is_some() {
                self.cv.wait(&mut inner);
            }
            if inner.st.iter().all(|&s| s == St::Done) {
                break;
            }
            let ready: Vec<usize> = (0..inner.st.len())
                .filter(|&i| inner.st[i] == St::Ready)
                .collect();
            if ready.is_empty() {
                // Genuine deadlock among the virtual threads (or a
                // worker errored out and released locks behind the
                // hook's back, stranding its waiters — the recorded op
                // failure then takes precedence).
                if inner.failure.is_none() {
                    let blocked: Vec<String> = (0..inner.st.len())
                        .filter(|&i| inner.st[i] == St::Blocked)
                        .map(|i| format!("t{} on {:?}", i, inner.blocked_on[i]))
                        .collect();
                    inner.failure = Some(format!(
                        "virtual-thread deadlock: no runnable thread ({})",
                        blocked.join(", ")
                    ));
                }
                inner.abort = true;
                self.cv.notify_all();
                while !inner.st.iter().all(|&s| s == St::Done) {
                    self.cv.wait(&mut inner);
                }
                break;
            }

            let prev_ready = inner.last.filter(|&p| inner.st[p] == St::Ready);
            let default = prev_ready.unwrap_or(ready[0]);
            let pos = decisions.len();
            let mut chosen = prefix.get(pos).copied().unwrap_or(default);
            if inner.st.get(chosen).copied() != Some(St::Ready) {
                // Either the workload is nondeterministic (a real
                // problem the caller must surface) or a minimization
                // candidate mangled the prefix (routine; the candidate
                // is discarded). Flag it and fall back to the default.
                inner.diverged = true;
                chosen = default;
            }

            let mut alternatives = Vec::new();
            for &r in &ready {
                if r == chosen {
                    continue;
                }
                let legal = match prev_ready {
                    // The previous thread blocked or finished: any
                    // switch is forced, hence free and always legal.
                    None => true,
                    // Returning to the thread that could keep running
                    // is the zero-cost default.
                    Some(p) if r == p => true,
                    Some(p) => {
                        preemptions < cfg.preemption_bound
                            && (!cfg.dpor || inner.pending[p].dependent(inner.pending[r]))
                    }
                };
                if legal {
                    alternatives.push(r);
                }
            }
            if let Some(p) = prev_ready {
                if chosen != p {
                    preemptions += 1;
                }
            }
            decisions.push(Decision {
                chosen,
                alternatives,
            });
            inner.st[chosen] = St::Running;
            inner.current = Some(chosen);
            inner.last = Some(chosen);
            self.cv.notify_all();
        }
        RunOutcome {
            decisions,
            failure: inner.failure.take(),
            diverged: inner.diverged,
        }
    }

    /// Park until the controller hands `me` the token. Returns `false`
    /// if the run was aborted instead — the caller must drop the guard
    /// and panic with [`ABORT_MSG`] (panicking while the guard is held
    /// would poison the mutex under the std-backed compat parking_lot).
    #[must_use]
    fn wait_for_turn(&self, inner: &mut parking_lot::MutexGuard<'_, Inner>, me: usize) -> bool {
        loop {
            if inner.abort {
                return false;
            }
            if inner.current == Some(me) {
                return true;
            }
            self.cv.wait(inner);
        }
    }

    fn start_point(&self, me: usize) {
        let mut inner = self.inner.lock();
        if !self.wait_for_turn(&mut inner, me) {
            drop(inner);
            panic!("{ABORT_MSG}");
        }
        inner.st[me] = St::Running;
    }

    pub(crate) fn yield_point(&self, me: usize, pending: Pending) {
        let mut inner = self.inner.lock();
        inner.st[me] = St::Ready;
        inner.pending[me] = pending;
        inner.current = None;
        self.cv.notify_all();
        if !self.wait_for_turn(&mut inner, me) {
            drop(inner);
            panic!("{ABORT_MSG}");
        }
        inner.st[me] = St::Running;
    }

    fn block_point(&self, me: usize, id: LockId) {
        let mut inner = self.inner.lock();
        inner.st[me] = St::Blocked;
        inner.blocked_on[me] = Some(id);
        // When a release wakes us, our next action is retrying this
        // acquire.
        inner.pending[me] = Pending::Acquire(id);
        inner.current = None;
        self.cv.notify_all();
        if !self.wait_for_turn(&mut inner, me) {
            drop(inner);
            panic!("{ABORT_MSG}");
        }
        inner.st[me] = St::Running;
        inner.blocked_on[me] = None;
    }

    fn release_point(&self, me: usize, id: LockId) {
        let mut inner = self.inner.lock();
        for j in 0..inner.st.len() {
            if inner.st[j] == St::Blocked && inner.blocked_on[j] == Some(id) {
                inner.st[j] = St::Ready;
                inner.blocked_on[j] = None;
            }
        }
        inner.st[me] = St::Ready;
        inner.pending[me] = Pending::AfterRelease(id);
        inner.current = None;
        self.cv.notify_all();
        if !self.wait_for_turn(&mut inner, me) {
            drop(inner);
            panic!("{ABORT_MSG}");
        }
        inner.st[me] = St::Running;
    }

    fn record_failure(&self, me: usize, msg: &str) {
        let mut inner = self.inner.lock();
        if inner.failure.is_none() {
            inner.failure = Some(format!("t{me}: {msg}"));
        }
    }

    fn finish(&self, me: usize) {
        let mut inner = self.inner.lock();
        inner.st[me] = St::Done;
        if inner.current == Some(me) {
            inner.current = None;
        }
        self.cv.notify_all();
    }
}

fn worker_main(sched: Arc<Scheduler>, me: usize, body: Body<'_>) {
    VTHREAD.with(|c| c.set(Some(me)));
    let r = catch_unwind(AssertUnwindSafe(|| {
        sched.start_point(me);
        body()
    }));
    match r {
        Ok(Ok(())) => {}
        Ok(Err(msg)) => sched.record_failure(me, &msg),
        Err(payload) => {
            let msg = panic_message(payload.as_ref());
            if msg != ABORT_MSG {
                sched.record_failure(me, &format!("panic: {msg}"));
            }
        }
    }
    sched.finish(me);
    VTHREAD.with(|c| c.set(None));
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The [`WaitHook`] that routes a lock manager's wait points into a
/// [`Scheduler`]. Threads without a virtual-thread id (the controller
/// doing setup, stray background threads) pass straight through.
pub struct ExplorerHook {
    sched: Arc<Scheduler>,
}

impl ExplorerHook {
    /// A hook feeding `sched`.
    pub fn new(sched: Arc<Scheduler>) -> Self {
        ExplorerHook { sched }
    }
}

impl WaitHook for ExplorerHook {
    fn at_acquire(&self, _owner: OwnerId, id: LockId, _mode: LockMode) {
        if let Some(me) = current_vthread() {
            self.sched.yield_point(me, Pending::Acquire(id));
        }
    }

    fn at_block(&self, _owner: OwnerId, id: LockId, _mode: LockMode) {
        match current_vthread() {
            Some(me) => self.sched.block_point(me, id),
            // An unregistered thread blocking while the hook is
            // installed would otherwise busy-spin in the manager's
            // hook-driven wait loop.
            None => std::thread::yield_now(),
        }
    }

    fn at_release(&self, _owner: OwnerId, id: LockId, _mode: LockMode) {
        if let Some(me) = current_vthread() {
            self.sched.release_point(me, id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceh_locks::{LockManager, LockManagerConfig};
    use ceh_types::PageId;

    fn manager_with_hook(sched: &Arc<Scheduler>) -> Arc<LockManager> {
        let m = Arc::new(LockManager::new(LockManagerConfig::default()));
        m.set_wait_hook(Some(Arc::new(ExplorerHook::new(Arc::clone(sched)))));
        m
    }

    #[test]
    fn serializes_two_contending_threads() {
        let sched = Scheduler::new(2);
        let m = manager_with_hook(&sched);
        let out = sched.run(
            (0..2)
                .map(|_| {
                    let m = Arc::clone(&m);
                    Box::new(move || {
                        let o = m.new_owner();
                        m.lock(o, LockId::Page(PageId(1)), LockMode::Xi);
                        m.unlock(o, LockId::Page(PageId(1)), LockMode::Xi);
                        Ok(())
                    }) as Body<'_>
                })
                .collect(),
            &[],
            &ControllerConfig {
                preemption_bound: 3,
                dpor: false,
            },
        );
        assert!(out.failure.is_none(), "{:?}", out.failure);
        assert!(!out.decisions.is_empty());
    }

    #[test]
    fn reports_virtual_thread_deadlock() {
        let sched = Scheduler::new(2);
        let m = manager_with_hook(&sched);
        let a = LockId::Page(PageId(1));
        let b = LockId::Page(PageId(2));
        // Classic AB/BA: force the interleaving where both grab their
        // first lock before either tries the second.
        let mk = |first: LockId, second: LockId| {
            let m = Arc::clone(&m);
            Box::new(move || {
                let o = m.new_owner();
                m.lock(o, first, LockMode::Xi);
                m.lock(o, second, LockMode::Xi);
                Ok(())
            }) as Body<'_>
        };
        let out = sched.run(
            vec![mk(a, b), mk(b, a)],
            // t0 runs to its second acquire attempt, then t1 does.
            &[0, 0, 1, 1, 0, 1],
            &ControllerConfig {
                preemption_bound: 4,
                dpor: false,
            },
        );
        let failure = out.failure.expect("AB/BA must deadlock");
        assert!(failure.contains("deadlock"), "{failure}");
    }

    #[test]
    fn replaying_choices_reproduces_decisions() {
        let run_once = |prefix: &[usize]| {
            let sched = Scheduler::new(2);
            let m = manager_with_hook(&sched);
            sched.run(
                (0..2)
                    .map(|i| {
                        let m = Arc::clone(&m);
                        Box::new(move || {
                            let o = m.new_owner();
                            let id = LockId::Page(PageId(i));
                            m.lock(o, id, LockMode::Alpha);
                            m.lock(o, LockId::Directory, LockMode::Rho);
                            m.unlock(o, LockId::Directory, LockMode::Rho);
                            m.unlock(o, id, LockMode::Alpha);
                            Ok(())
                        }) as Body<'_>
                    })
                    .collect(),
                prefix,
                &ControllerConfig {
                    preemption_bound: 2,
                    dpor: false,
                },
            )
        };
        let first = run_once(&[]);
        assert!(first.failure.is_none());
        let replay = run_once(&first.choices());
        assert!(replay.failure.is_none());
        assert_eq!(first.choices(), replay.choices());
    }
}
