//! Small named workloads for the schedule explorer.
//!
//! A workload is a deterministic recipe: which solution to run, a tiny
//! bucket capacity (so two inserts force a split and two deletes force a
//! merge), a single-threaded setup phase, and per-thread operation lists
//! for the concurrent phase. Keys are hashed with the **identity**
//! pseudokey function so the bucket each key lands in is written into
//! the workload itself.

use std::collections::HashMap;
use std::sync::Arc;

use ceh_core::{ConcurrentHashFile, FileCore, GcStrategy, Solution1, Solution2, Solution2Options};
use ceh_locks::{LockManager, LockManagerConfig};
use ceh_obs::MetricsHandle;
use ceh_storage::{PageStore, PageStoreConfig};
use ceh_types::{identity_pseudokey, HashFileConfig, Key, Value};

/// One hash-file operation in a workload script.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `find(key)`.
    Find(u64),
    /// `insert(key, value)`.
    Insert(u64, u64),
    /// `delete(key)`.
    Delete(u64),
}

impl Op {
    /// Run the op against `file`, mapping errors to a description.
    pub fn apply(self, file: &dyn ConcurrentHashFile) -> Result<(), String> {
        let r = match self {
            Op::Find(k) => file.find(Key(k)).map(|_| ()),
            Op::Insert(k, v) => file.insert(Key(k), Value(v)).map(|_| ()),
            Op::Delete(k) => file.delete(Key(k)).map(|_| ()),
        };
        r.map_err(|e| format!("{self:?} failed: {e}"))
    }
}

/// Which of the paper's two protocols the workload exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Solution {
    /// Solution 1 (Figures 5–7): top-down, pessimistic.
    S1,
    /// Solution 2 (Figures 8–9): optimistic with ρ→α conversion,
    /// tombstones, and label-A re-validation. Inline GC so there is no
    /// background thread outside the explorer's control.
    S2,
}

/// A workload's freshly built hash file — concrete so the explorer can
/// reach the [`FileCore`] for post-run invariant checks.
pub enum BuiltFile {
    /// A Solution 1 file (boxed: with the `check-race` instrumentation
    /// compiled in it is much larger than the `S2` variant).
    S1(Box<Solution1>),
    /// A Solution 2 file (inline GC).
    S2(Solution2),
}

impl BuiltFile {
    /// The file as the trait object the workload ops run against.
    pub fn as_dyn(&self) -> &dyn ConcurrentHashFile {
        match self {
            BuiltFile::S1(f) => f.as_ref(),
            BuiltFile::S2(f) => f,
        }
    }

    /// The shared core, for [`ceh_core::invariants`].
    pub fn core(&self) -> &FileCore {
        match self {
            BuiltFile::S1(f) => f.core(),
            BuiltFile::S2(f) => f.core(),
        }
    }
}

/// A named, fully deterministic concurrent workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Stable name (used by the CLI and in schedule fixtures).
    pub name: &'static str,
    /// What the workload is designed to provoke.
    pub description: &'static str,
    /// Protocol under test.
    pub solution: Solution,
    /// Bucket capacity (2 makes splits/merges trivial to force).
    pub bucket_capacity: usize,
    /// Ops applied single-threaded before the concurrent phase.
    pub setup: Vec<Op>,
    /// One op list per virtual thread.
    pub threads: Vec<Vec<Op>>,
}

impl Workload {
    /// All built-in workloads, in display order.
    pub fn all() -> Vec<Workload> {
        vec![
            s1_insert_insert_split(),
            s2_insert_insert_split(),
            s2_delete_delete_merge(),
            s2_mixed(),
        ]
    }

    /// Look a workload up by its stable name.
    pub fn by_name(name: &str) -> Option<Workload> {
        Self::all().into_iter().find(|w| w.name == name)
    }

    /// Build a fresh file (identity pseudokeys, tiny pages, hookable
    /// lock manager), apply the setup ops, and return it with the lock
    /// manager (for installing the explorer hook) and the metrics
    /// handle (for the history log). History recording is still off.
    pub fn build(&self) -> Result<(BuiltFile, Arc<LockManager>, MetricsHandle), String> {
        let metrics = MetricsHandle::new();
        let store = PageStore::new_shared(PageStoreConfig::small(4096));
        let locks = Arc::new(LockManager::with_metrics(
            LockManagerConfig::default(),
            &metrics,
        ));
        let cfg = HashFileConfig::tiny().with_bucket_capacity(self.bucket_capacity);
        let core = FileCore::with_parts_metrics(
            cfg,
            store,
            Arc::clone(&locks),
            identity_pseudokey,
            &metrics,
        )
        .map_err(|e| format!("workload {}: build failed: {e}", self.name))?;
        let file = match self.solution {
            Solution::S1 => BuiltFile::S1(Box::new(Solution1::from_core(core))),
            Solution::S2 => BuiltFile::S2(Solution2::from_core_with_options(
                core,
                Solution2Options {
                    gc: GcStrategy::Inline,
                    ..Default::default()
                },
            )),
        };
        for op in &self.setup {
            op.apply(file.as_dyn())
                .map_err(|e| format!("workload {}: setup {e}", self.name))?;
        }
        Ok((file, locks, metrics))
    }

    /// The key→value map after setup — the linearizability checker's
    /// initial state.
    pub fn initial_map(&self) -> HashMap<u64, u64> {
        let mut m = HashMap::new();
        for op in &self.setup {
            match *op {
                Op::Find(_) => {}
                Op::Insert(k, v) => {
                    m.entry(k).or_insert(v);
                }
                Op::Delete(k) => {
                    m.remove(&k);
                }
            }
        }
        m
    }

    /// Total ops in the concurrent phase.
    pub fn concurrent_ops(&self) -> usize {
        self.threads.iter().map(|t| t.len()).sum()
    }
}

/// Two inserts racing into the same capacity-2 bucket, each forcing a
/// split — the acceptance workload for Solution 1.
fn s1_insert_insert_split() -> Workload {
    Workload {
        name: "s1-insert-insert-split",
        description: "two Solution 1 inserts force splits of the same bucket",
        solution: Solution::S1,
        bucket_capacity: 2,
        // Bucket 0 (depth 0) holds {0, 1}: one more insert splits it.
        setup: vec![Op::Insert(0, 100), Op::Insert(1, 101)],
        threads: vec![
            vec![Op::Insert(2, 102), Op::Find(0)],
            vec![Op::Insert(3, 103), Op::Find(1)],
        ],
    }
}

/// The same race through Solution 2's optimistic ρ→α conversion path.
fn s2_insert_insert_split() -> Workload {
    Workload {
        name: "s2-insert-insert-split",
        description: "two Solution 2 inserts force splits of the same bucket",
        ..s1_insert_insert_split()
    }
    .with_solution(Solution::S2)
}

/// Two Solution 2 deletes racing a merge: T2's delete of key 5 merges
/// the {B01, B11} pair and tombstones B11 while T1's delete of key 7
/// takes the second-of-pair path through the stale directory entry —
/// exactly the race Figure 9's label-A re-validation exists to close.
fn s2_delete_delete_merge() -> Workload {
    Workload {
        name: "s2-delete-delete-merge",
        description: "racing deletes drive a merge + tombstone through the label-A path",
        solution: Solution::S2,
        bucket_capacity: 2,
        // With identity pseudokeys and capacity 2 this leaves three
        // buckets: B0 (ld 1) = {0, 2}, B01 (ld 2) = {5}, B11 (ld 2) =
        // {7}; both concurrent deletes hit near-empty depth-2 buckets.
        setup: vec![
            Op::Insert(0, 100),
            Op::Insert(1, 101),
            Op::Insert(2, 102),
            Op::Insert(3, 103),
            Op::Insert(5, 105),
            Op::Insert(7, 107),
            Op::Delete(1),
            Op::Delete(3),
        ],
        threads: vec![
            vec![Op::Delete(7), Op::Find(5)],
            vec![Op::Delete(5), Op::Find(7)],
        ],
    }
}

/// A three-thread mix: a split, a merge, and a reader crossing both.
fn s2_mixed() -> Workload {
    Workload {
        name: "s2-mixed",
        description: "insert-driven split, delete-driven merge, and a reader, concurrently",
        solution: Solution::S2,
        bucket_capacity: 2,
        setup: vec![
            Op::Insert(0, 100),
            Op::Insert(1, 101),
            Op::Insert(2, 102),
            Op::Insert(3, 103),
            Op::Insert(5, 105),
            Op::Insert(7, 107),
            Op::Delete(1),
            Op::Delete(3),
        ],
        threads: vec![
            vec![Op::Insert(4, 104)],
            vec![Op::Delete(5)],
            vec![Op::Find(7), Op::Find(0)],
        ],
    }
}

impl Workload {
    fn with_solution(mut self, s: Solution) -> Workload {
        self.solution = s;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_workloads_build_and_setup() {
        for w in Workload::all() {
            let (file, _locks, _metrics) = w.build().expect(w.name);
            assert_eq!(file.as_dyn().len(), w.initial_map().len(), "{}", w.name);
            ceh_core::invariants::check_concurrent_file(file.core()).expect(w.name);
        }
    }

    #[test]
    fn merge_workload_setup_shape() {
        // Pin the hand-computed bucket layout the delete/merge workload
        // depends on: 4 live keys across B0={0,2}, B01={5}, B11={7}.
        let w = Workload::by_name("s2-delete-delete-merge").unwrap();
        let (file, _l, _m) = w.build().unwrap();
        assert_eq!(file.as_dyn().len(), 4);
        for (k, v) in w.initial_map() {
            assert_eq!(file.as_dyn().find(Key(k)).unwrap(), Some(Value(v)));
        }
    }

    #[test]
    fn by_name_roundtrip() {
        for w in Workload::all() {
            assert_eq!(Workload::by_name(w.name).unwrap().name, w.name);
        }
        assert!(Workload::by_name("nope").is_none());
    }
}
