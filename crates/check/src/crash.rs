//! Recovery fuzzer: a systematic crash-point sweep with a durability
//! oracle.
//!
//! A seeded mixed workload (inserts, deletes, finds — sized so splits
//! and merges happen) runs against a durable Solution 2 file. A
//! count-only [`CrashPlan`] first *learns* how many durability points
//! the workload reaches — every WAL sync, every per-frame checkpoint
//! flush, every log truncation. The sweep then re-runs the identical
//! workload once per point with the plan armed: power is cut exactly
//! there, with a seeded torn tail. Recovery runs, and the oracle
//! asserts:
//!
//! * **structural**: the recovered file passes the full invariant suite
//!   ([`ceh_core::invariants::check_concurrent_file`]);
//! * **durability**: every operation acknowledged before the cut
//!   survives exactly (inserted keys present with their values, deleted
//!   keys absent);
//! * **atomicity**: the one in-flight operation is either fully applied
//!   or fully absent — never a partial multi-page effect;
//! * **silence**: keys the workload never acked an effect for are
//!   untouched.
//!
//! Failures minimize to a replayable [`CrashFixture`] in the same
//! line-oriented style as [`crate::ScheduleFixture`], meant for
//! `tests/fixtures/crashes/`. A committed fixture with no `violation`
//! line is a pinned regression: replay asserts the crash point recovers
//! cleanly.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

use ceh_core::{
    invariants::check_concurrent_file, ConcurrentHashFile, FileCore, GcStrategy, Solution2,
    Solution2Options,
};
use ceh_locks::LockManager;
use ceh_obs::MetricsHandle;
use ceh_storage::{
    BackendKind, CrashPlan, DiskHandle, DurableConfig, DurableStore, PageStoreConfig,
};
use ceh_types::bucket::Bucket;
use ceh_types::{hash_key, Error, HashFileConfig, Key, Value};

use crate::workload::Op;

/// Tuning for one crash-point sweep.
#[derive(Debug, Clone)]
pub struct CrashConfig {
    /// Seed for the workload generator and every tear.
    pub seed: u64,
    /// Operations in the seeded workload.
    pub ops: usize,
    /// Bucket capacity (small forces splits and merges).
    pub bucket_capacity: usize,
    /// WAL checkpoint interval, in commits (small puts checkpoint
    /// crash points inside the sweep's reach).
    pub checkpoint_every: usize,
    /// Keys are drawn from `0..keyspace`.
    pub keyspace: u64,
    /// Which storage backend the sweep runs on. The durability-point
    /// sequence is identical on both (fsyncs are not points), but the
    /// file backend makes every tear a real partial `pwrite` and every
    /// recovery a read back from actual files — the fsync-ordering
    /// oracle: nothing acked before its sync may be lost.
    pub backend: BackendKind,
}

impl Default for CrashConfig {
    fn default() -> Self {
        CrashConfig {
            seed: 0xCE11_C4A5,
            ops: 96,
            bucket_capacity: 3,
            checkpoint_every: 8,
            keyspace: 24,
            backend: BackendKind::Memory,
        }
    }
}

/// What happened at one armed crash point.
#[derive(Debug, Clone)]
pub struct PointOutcome {
    /// The 1-based durability point the plan was armed at.
    pub point: u64,
    /// Whether the plan actually fired (it always should: the armed run
    /// replays the run that counted the points).
    pub fired: bool,
    /// Operations acknowledged before the cut.
    pub acked: usize,
    /// The operation in flight when power died, if any.
    pub inflight: Option<Op>,
    /// Redo records replayed during recovery.
    pub redo_applied: u64,
    /// Torn frames found (and rebuilt from redo) during recovery.
    pub torn_frames: u64,
    /// Uncommitted transactions discarded during recovery.
    pub txns_discarded: u64,
    /// `Err` describes the oracle violation.
    pub verdict: Result<(), String>,
}

/// The sweep's aggregate result.
#[derive(Debug, Clone)]
pub struct CrashSweepReport {
    /// Configuration the sweep ran under.
    pub cfg: CrashConfig,
    /// Durability points the workload reaches (the sweep's width).
    pub points: u64,
    /// One outcome per armed point, in order.
    pub outcomes: Vec<PointOutcome>,
    /// Minimized fixtures for every violating point.
    pub failures: Vec<CrashFixture>,
}

impl CrashSweepReport {
    /// Did every crash point recover cleanly?
    pub fn ok(&self) -> bool {
        self.failures.is_empty() && self.outcomes.iter().all(|o| o.verdict.is_ok())
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The seeded mixed workload: ~50% inserts, ~30% deletes, ~20% finds
/// over a small keyspace, so buckets fill, split, empty, and merge.
pub fn generate_ops(seed: u64, n: usize, keyspace: u64) -> Vec<Op> {
    let mut ops = Vec::with_capacity(n);
    let mut s = seed ^ 0xC4A5_0001;
    for i in 0..n {
        s = splitmix64(s.wrapping_add(i as u64));
        let key = splitmix64(s ^ 0x5EED) % keyspace.max(1);
        ops.push(match s % 10 {
            0..=4 => Op::Insert(key, 1000 + (s % 1000)),
            5..=7 => Op::Delete(key),
            _ => Op::Find(key),
        });
    }
    ops
}

fn durable_cfg(cfg: &CrashConfig, plan: Option<CrashPlan>) -> DurableConfig {
    DurableConfig {
        page: PageStoreConfig {
            page_size: Bucket::page_size_for(cfg.bucket_capacity),
            ..Default::default()
        },
        checkpoint_every: cfg.checkpoint_every,
        plan,
        ..Default::default()
    }
}

/// RAII guard for a file-backend sweep's scratch directory: each armed
/// point builds its medium in a unique temp dir, removed when the
/// point's outcome is decided (open descriptors keep working on unix).
struct TempDir(Option<std::path::PathBuf>);

impl Drop for TempDir {
    fn drop(&mut self) {
        if let Some(p) = self.0.take() {
            let _ = std::fs::remove_dir_all(p);
        }
    }
}

fn crash_temp_dir() -> std::path::PathBuf {
    static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    std::env::temp_dir().join(format!("ceh-crash-{}-{n}", std::process::id()))
}

fn build_file(
    cfg: &CrashConfig,
    plan: Option<CrashPlan>,
) -> (
    DiskHandle,
    Arc<DurableStore>,
    Result<Solution2, Error>,
    TempDir,
) {
    let metrics = MetricsHandle::new();
    let dcfg = durable_cfg(cfg, plan);
    let (disk, tmp) = match cfg.backend {
        BackendKind::Memory => (DiskHandle::new(dcfg.page.page_size), TempDir(None)),
        BackendKind::File => {
            let dir = crash_temp_dir();
            let disk = DiskHandle::create_file(&dir, dcfg.page.page_size)
                .expect("create crash-sweep scratch medium");
            (disk, TempDir(Some(dir)))
        }
    };
    let wal =
        DurableStore::with_disk(disk.clone(), dcfg, &metrics).expect("fresh medium matches config");
    let file = FileCore::with_durable_metrics(
        HashFileConfig::tiny().with_bucket_capacity(cfg.bucket_capacity),
        Arc::clone(&wal),
        Arc::new(LockManager::default()),
        hash_key,
        &metrics,
    )
    .map(|core| {
        // Inline GC: every durable effect happens on the calling thread,
        // so a power cut surfaces as this op's error, not a background
        // panic.
        Solution2::from_core_with_options(
            core,
            Solution2Options {
                gc: GcStrategy::Inline,
                ..Default::default()
            },
        )
    });
    (disk, wal, file, tmp)
}

fn recover_file(cfg: &CrashConfig, disk: &DiskHandle) -> Result<(Solution2, u64, u64, u64), Error> {
    let metrics = MetricsHandle::new();
    let (core, report) = FileCore::recover_durable_metrics(
        HashFileConfig::tiny().with_bucket_capacity(cfg.bucket_capacity),
        disk,
        durable_cfg(cfg, None),
        Arc::new(LockManager::default()),
        hash_key,
        &metrics,
    )?;
    let file = Solution2::from_core_with_options(
        core,
        Solution2Options {
            gc: GcStrategy::Inline,
            ..Default::default()
        },
    );
    Ok((
        file,
        report.redo_applied as u64,
        report.torn as u64,
        report.txns_discarded as u64,
    ))
}

/// Apply `op` to the model the way the file semantics do (insert is
/// first-writer-wins; delete removes; find mutates nothing).
fn model_apply(model: &mut BTreeMap<u64, u64>, op: Op) {
    match op {
        Op::Insert(k, v) => {
            model.entry(k).or_insert(v);
        }
        Op::Delete(k) => {
            model.remove(&k);
        }
        Op::Find(_) => {}
    }
}

/// The durability oracle: recovered contents vs. the acked model, with
/// the in-flight operation allowed either atomically applied or absent.
fn check_oracle(
    file: &Solution2,
    model: &BTreeMap<u64, u64>,
    inflight: Option<Op>,
    keyspace: u64,
) -> Result<(), String> {
    check_concurrent_file(file.core()).map_err(|e| format!("structural invariants: {e}"))?;
    for k in 0..keyspace {
        let got = file
            .find(Key(k))
            .map_err(|e| format!("find({k}) on recovered file: {e}"))?
            .map(|v| v.0);
        let want = model.get(&k).copied();
        let allowed = match inflight {
            Some(Op::Insert(ik, iv)) if ik == k => {
                // Atomically applied (or_insert semantics) or absent.
                got == want || (want.is_none() && got == Some(iv))
            }
            Some(Op::Delete(ik)) if ik == k => got == want || (want.is_some() && got.is_none()),
            _ => got == want,
        };
        if !allowed {
            return Err(format!(
                "key {k}: recovered {got:?}, acked model {want:?}, in-flight {inflight:?}"
            ));
        }
    }
    Ok(())
}

/// Run `ops` with power cut at durability point `crash_at` (1-based),
/// recover, and judge the result. `crash_at == 0` never fires (used to
/// validate the workload itself).
pub fn run_point(cfg: &CrashConfig, ops: &[Op], crash_at: u64) -> PointOutcome {
    let plan = if crash_at == 0 {
        CrashPlan::count_only(cfg.seed)
    } else {
        CrashPlan::armed(cfg.seed, crash_at)
    };
    let (disk, wal, built, _tmp) = build_file(cfg, Some(plan.clone()));
    let mut model = BTreeMap::new();
    let mut acked = 0usize;
    let mut inflight = None;
    match built {
        Ok(file) => {
            for &op in ops {
                match op.apply(&file) {
                    Ok(()) => {
                        model_apply(&mut model, op);
                        acked += 1;
                    }
                    Err(e) if e.contains("power") => {
                        inflight = Some(op);
                        break;
                    }
                    Err(e) => {
                        return PointOutcome {
                            point: crash_at,
                            fired: plan.fired(),
                            acked,
                            inflight: Some(op),
                            redo_applied: 0,
                            torn_frames: 0,
                            txns_discarded: 0,
                            verdict: Err(format!("unexpected op failure: {e}")),
                        }
                    }
                }
            }
        }
        Err(Error::PowerLoss) => { /* cut during file creation: acked = 0 */ }
        Err(e) => {
            return PointOutcome {
                point: crash_at,
                fired: plan.fired(),
                acked: 0,
                inflight: None,
                redo_applied: 0,
                torn_frames: 0,
                txns_discarded: 0,
                verdict: Err(format!("file creation failed: {e}")),
            }
        }
    }
    // Whatever survived, power is now definitively off.
    wal.power_off();
    let fired = plan.fired();
    let (verdict, redo, torn, discarded) = match recover_file(cfg, &disk) {
        Ok((file, redo, torn, discarded)) => (
            check_oracle(&file, &model, inflight, cfg.keyspace),
            redo,
            torn,
            discarded,
        ),
        Err(e) => (Err(format!("recovery failed: {e}")), 0, 0, 0),
    };
    PointOutcome {
        point: crash_at,
        fired,
        acked,
        inflight,
        redo_applied: redo,
        torn_frames: torn,
        txns_discarded: discarded,
        verdict,
    }
}

/// Count the durability points `ops` reaches (the sweep's width). Every
/// op must succeed; a workload that fails without a crash plan armed is
/// reported as an error.
pub fn count_points(cfg: &CrashConfig, ops: &[Op]) -> Result<u64, String> {
    let plan = CrashPlan::count_only(cfg.seed);
    let (_disk, wal, built, _tmp) = build_file(cfg, Some(plan.clone()));
    let file = built.map_err(|e| format!("count run: build failed: {e}"))?;
    for &op in ops {
        op.apply(&file).map_err(|e| format!("count run: {e}"))?;
    }
    wal.power_off();
    Ok(plan.points())
}

/// The systematic sweep: every reachable durability point, once.
pub fn run_sweep(cfg: &CrashConfig) -> Result<CrashSweepReport, String> {
    let ops = generate_ops(cfg.seed, cfg.ops, cfg.keyspace);
    let points = count_points(cfg, &ops)?;
    let mut outcomes = Vec::with_capacity(points as usize);
    let mut failures = Vec::new();
    for p in 1..=points {
        let outcome = run_point(cfg, &ops, p);
        if let Err(v) = &outcome.verdict {
            failures.push(minimize(cfg, &ops, p, v.clone()));
        }
        outcomes.push(outcome);
    }
    Ok(CrashSweepReport {
        cfg: cfg.clone(),
        points,
        outcomes,
        failures,
    })
}

/// Greedy one-pass minimization: try dropping each op in turn; keep the
/// drop if *some* crash point of the reduced workload still violates.
fn minimize(cfg: &CrashConfig, ops: &[Op], crash_at: u64, violation: String) -> CrashFixture {
    let mut best: Vec<Op> = ops.to_vec();
    let mut best_at = crash_at;
    let mut best_violation = violation;
    let mut i = 0;
    while i < best.len() {
        let mut candidate = best.clone();
        candidate.remove(i);
        match first_violation(cfg, &candidate) {
            Some((at, v)) => {
                best = candidate;
                best_at = at;
                best_violation = v;
                // Do not advance: index i now names the next op.
            }
            None => i += 1,
        }
    }
    CrashFixture {
        seed: cfg.seed,
        bucket_capacity: cfg.bucket_capacity,
        checkpoint_every: cfg.checkpoint_every,
        keyspace: cfg.keyspace,
        crash_at: best_at,
        ops: best,
        violation: Some(best_violation),
    }
}

/// Sweep a reduced workload, returning its first violating point.
fn first_violation(cfg: &CrashConfig, ops: &[Op]) -> Option<(u64, String)> {
    let points = count_points(cfg, ops).ok()?;
    for p in 1..=points {
        let o = run_point(cfg, ops, p);
        if let Err(v) = o.verdict {
            return Some((p, v));
        }
    }
    None
}

/// One distributed crash round: a small durable cluster takes acked
/// inserts, site 1 loses power mid-cluster, restarts from its durable
/// image, and every acked operation must survive with full cluster
/// invariants. Returns a description of the first failure.
pub fn dist_crash_round(seed: u64, keys: u64) -> Result<(), String> {
    use ceh_dist::{Cluster, ClusterConfig};
    let mut cluster = Cluster::start(ClusterConfig {
        dir_managers: 2,
        bucket_managers: 2,
        file: HashFileConfig::tiny().with_bucket_capacity(4),
        page_quota: Some(8),
        durable: true,
        ..Default::default()
    })
    .map_err(|e| format!("cluster start: {e}"))?;
    let client = cluster.client();
    for i in 0..keys {
        let k = splitmix64(seed.wrapping_add(i)) % (keys * 4);
        client
            .insert(Key(k), Value(k))
            .map_err(|e| format!("insert {k}: {e}"))?;
    }
    if !cluster.quiesce(std::time::Duration::from_secs(30)) {
        return Err("cluster did not quiesce before the crash".into());
    }
    if !cluster.crash_site(1) {
        return Err("site 1 was not up".into());
    }
    if !cluster
        .restart_site(1)
        .map_err(|e| format!("restart recovery: {e}"))?
    {
        return Err("site 1 was not down".into());
    }
    for i in 0..keys {
        let k = splitmix64(seed.wrapping_add(i)) % (keys * 4);
        let got = client.find(Key(k)).map_err(|e| format!("find {k}: {e}"))?;
        if got != Some(Value(k)) {
            return Err(format!("acked key {k} lost across the power cut: {got:?}"));
        }
    }
    if !cluster.quiesce(std::time::Duration::from_secs(30)) {
        return Err("cluster did not quiesce after the restart".into());
    }
    cluster
        .check_invariants()
        .map_err(|e| format!("post-restart invariants: {e}"))?;
    cluster.shutdown();
    Ok(())
}

/// A replayable crash fixture (see module docs; format mirrors
/// [`crate::ScheduleFixture`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashFixture {
    /// Workload + tear seed.
    pub seed: u64,
    /// Bucket capacity of the file under test.
    pub bucket_capacity: usize,
    /// Checkpoint interval, in commits.
    pub checkpoint_every: usize,
    /// Keyspace the oracle scans.
    pub keyspace: u64,
    /// The armed durability point.
    pub crash_at: u64,
    /// The exact operation list.
    pub ops: Vec<Op>,
    /// The original violation (advisory); `None` pins a clean recovery.
    pub violation: Option<String>,
}

const HEADER: &str = "# ceh-check crash fixture v1";

fn encode_op(op: Op) -> String {
    match op {
        Op::Insert(k, v) => format!("i:{k}:{v}"),
        Op::Delete(k) => format!("d:{k}"),
        Op::Find(k) => format!("f:{k}"),
    }
}

fn decode_op(tok: &str) -> Result<Op, String> {
    let parts: Vec<&str> = tok.split(':').collect();
    let num = |s: &str| -> Result<u64, String> {
        s.parse::<u64>().map_err(|e| format!("bad op {tok:?}: {e}"))
    };
    match parts.as_slice() {
        ["i", k, v] => Ok(Op::Insert(num(k)?, num(v)?)),
        ["d", k] => Ok(Op::Delete(num(k)?)),
        ["f", k] => Ok(Op::Find(num(k)?)),
        _ => Err(format!("bad op token {tok:?}")),
    }
}

impl CrashFixture {
    /// Serialize to the on-disk text format.
    pub fn serialize(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{HEADER}");
        let _ = writeln!(s, "seed: {}", self.seed);
        let _ = writeln!(s, "capacity: {}", self.bucket_capacity);
        let _ = writeln!(s, "checkpoint-every: {}", self.checkpoint_every);
        let _ = writeln!(s, "keyspace: {}", self.keyspace);
        let _ = writeln!(s, "crash-at: {}", self.crash_at);
        let ops: Vec<String> = self.ops.iter().map(|&o| encode_op(o)).collect();
        let _ = writeln!(s, "ops: {}", ops.join(" "));
        if let Some(v) = &self.violation {
            let _ = writeln!(s, "violation: {}", v.lines().next().unwrap_or(""));
        }
        s
    }

    /// Parse the on-disk text format.
    pub fn parse(text: &str) -> Result<CrashFixture, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some(h) if h.trim() == HEADER => {}
            other => return Err(format!("bad fixture header: {other:?} (want {HEADER:?})")),
        }
        let mut seed = None;
        let mut capacity = None;
        let mut checkpoint_every = None;
        let mut keyspace = None;
        let mut crash_at = None;
        let mut ops = None;
        let mut violation = None;
        for line in lines {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (field, value) = line
                .split_once(':')
                .ok_or_else(|| format!("fixture line without ':': {line:?}"))?;
            let value = value.trim();
            let parse_u64 = |v: &str| v.parse::<u64>().map_err(|e| format!("bad {v:?}: {e}"));
            match field.trim() {
                "seed" => seed = Some(parse_u64(value)?),
                "capacity" => capacity = Some(parse_u64(value)? as usize),
                "checkpoint-every" => checkpoint_every = Some(parse_u64(value)? as usize),
                "keyspace" => keyspace = Some(parse_u64(value)?),
                "crash-at" => crash_at = Some(parse_u64(value)?),
                "ops" => {
                    let parsed: Result<Vec<Op>, String> =
                        value.split_whitespace().map(decode_op).collect();
                    ops = Some(parsed?);
                }
                "violation" => violation = Some(value.to_string()),
                other => return Err(format!("unknown fixture field {other:?}")),
            }
        }
        Ok(CrashFixture {
            seed: seed.ok_or("fixture missing 'seed'")?,
            bucket_capacity: capacity.ok_or("fixture missing 'capacity'")?,
            checkpoint_every: checkpoint_every.ok_or("fixture missing 'checkpoint-every'")?,
            keyspace: keyspace.ok_or("fixture missing 'keyspace'")?,
            crash_at: crash_at.ok_or("fixture missing 'crash-at'")?,
            ops: ops.ok_or("fixture missing 'ops'")?,
            violation,
        })
    }
}

/// Replay a fixture: run its exact workload with power cut at its crash
/// point and recover. A fixture carrying a `violation` must reproduce
/// *some* violation (diagnostics may have improved); one without must
/// recover cleanly.
pub fn replay_crash(fixture: &CrashFixture) -> Result<PointOutcome, String> {
    let cfg = CrashConfig {
        seed: fixture.seed,
        ops: fixture.ops.len(),
        bucket_capacity: fixture.bucket_capacity,
        checkpoint_every: fixture.checkpoint_every,
        keyspace: fixture.keyspace,
        // Fixtures pin the deterministic backend; the point sequence is
        // the same on both, so a fixture's crash point is meaningful
        // everywhere.
        backend: BackendKind::Memory,
    };
    let outcome = run_point(&cfg, &fixture.ops, fixture.crash_at);
    match (&fixture.violation, &outcome.verdict) {
        (Some(_), Err(_)) | (None, Ok(())) => Ok(outcome),
        (Some(v), Ok(())) => Err(format!(
            "fixture expected a violation ({v}) but the crash point recovered cleanly"
        )),
        (None, Err(got)) => Err(format!(
            "fixture pins a clean recovery but replay violated: {got}"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_generation_is_deterministic_and_mixed() {
        let a = generate_ops(7, 200, 24);
        let b = generate_ops(7, 200, 24);
        assert_eq!(a, b);
        let inserts = a.iter().filter(|o| matches!(o, Op::Insert(..))).count();
        let deletes = a.iter().filter(|o| matches!(o, Op::Delete(_))).count();
        let finds = a.iter().filter(|o| matches!(o, Op::Find(_))).count();
        assert!(inserts > 50 && deletes > 20 && finds > 10);
        assert_ne!(generate_ops(8, 200, 24), a, "seed matters");
    }

    #[test]
    fn unarmed_run_reaches_many_points_and_matches_model() {
        let cfg = CrashConfig {
            ops: 48,
            ..Default::default()
        };
        let ops = generate_ops(cfg.seed, cfg.ops, cfg.keyspace);
        let points = count_points(&cfg, &ops).unwrap();
        // Every commit syncs, so there are at least as many points as ops
        // that mutate (plus checkpoint flushes).
        assert!(points as usize > cfg.ops / 2, "only {points} points");
    }

    #[test]
    fn a_small_sweep_is_clean() {
        let cfg = CrashConfig {
            ops: 24,
            ..Default::default()
        };
        let report = run_sweep(&cfg).unwrap();
        assert!(report.points > 0);
        assert_eq!(report.outcomes.len(), report.points as usize);
        for o in &report.outcomes {
            assert!(o.fired, "point {} never fired", o.point);
            assert!(o.verdict.is_ok(), "point {}: {:?}", o.point, o.verdict);
        }
        assert!(report.ok());
        // The sweep must actually exercise torn-state recovery somewhere.
        assert!(
            report
                .outcomes
                .iter()
                .any(|o| o.redo_applied > 0 || o.torn_frames > 0 || o.txns_discarded > 0),
            "no crash point tore anything — the sweep is toothless"
        );
    }

    #[test]
    fn a_small_sweep_is_clean_on_the_file_backend() {
        let cfg = CrashConfig {
            ops: 12,
            backend: BackendKind::File,
            ..Default::default()
        };
        let report = run_sweep(&cfg).unwrap();
        assert!(report.points > 0);
        for o in &report.outcomes {
            assert!(o.fired, "point {} never fired", o.point);
            assert!(o.verdict.is_ok(), "point {}: {:?}", o.point, o.verdict);
        }
        assert!(report.ok());
    }

    #[test]
    fn the_point_sequence_is_backend_independent() {
        // fsyncs are not durability points, so the same workload counts
        // the same width on files as in memory — fixtures and armed
        // points mean the same thing on either backend.
        let mem = CrashConfig {
            ops: 16,
            ..Default::default()
        };
        let file = CrashConfig {
            backend: BackendKind::File,
            ..mem.clone()
        };
        let ops = generate_ops(mem.seed, mem.ops, mem.keyspace);
        assert_eq!(
            count_points(&mem, &ops).unwrap(),
            count_points(&file, &ops).unwrap()
        );
    }

    #[test]
    fn fixture_roundtrip() {
        let f = CrashFixture {
            seed: 42,
            bucket_capacity: 3,
            checkpoint_every: 8,
            keyspace: 24,
            crash_at: 17,
            ops: vec![Op::Insert(1, 100), Op::Delete(1), Op::Find(2)],
            violation: Some("key 1 lost".into()),
        };
        assert_eq!(CrashFixture::parse(&f.serialize()).unwrap(), f);
        let clean = CrashFixture {
            violation: None,
            ..f
        };
        assert_eq!(CrashFixture::parse(&clean.serialize()).unwrap(), clean);
    }

    #[test]
    fn fixture_rejects_bad_input() {
        assert!(CrashFixture::parse("nope").is_err());
        assert!(CrashFixture::parse(HEADER).is_err());
        assert!(CrashFixture::parse(&format!("{HEADER}\nseed: 1\nops: x:1\n")).is_err());
    }

    #[test]
    fn replay_of_a_clean_point_checks_out() {
        let cfg = CrashConfig {
            ops: 16,
            ..Default::default()
        };
        let ops = generate_ops(cfg.seed, cfg.ops, cfg.keyspace);
        let fixture = CrashFixture {
            seed: cfg.seed,
            bucket_capacity: cfg.bucket_capacity,
            checkpoint_every: cfg.checkpoint_every,
            keyspace: cfg.keyspace,
            crash_at: 3,
            ops,
            violation: None,
        };
        let outcome = replay_crash(&fixture).unwrap();
        assert!(outcome.fired);
        assert!(outcome.verdict.is_ok());
    }

    #[test]
    fn dist_round_survives_a_power_cut() {
        dist_crash_round(0xD157_0001, 24).unwrap();
    }
}
