//! Bounded-exhaustive schedule exploration.
//!
//! [`explore`] runs a [`Workload`] under *every* interleaving reachable
//! with at most `preemption_bound` preemptions: a DFS over schedule
//! prefixes, where each execution records which alternative choices were
//! legal at each scheduling decision and the explorer forks a new prefix
//! per alternative. Each execution is independently verified:
//!
//! 1. **execution health** — no operation error, worker panic, or
//!    virtual-thread deadlock;
//! 2. **structural invariants** — [`ceh_core::invariants`] over the
//!    quiescent file (directory/bucket agreement, no reachable
//!    tombstones, record placement, length accounting);
//! 3. **linearizability** — the recorded operation history checks out
//!    against the sequential model ([`crate::linearize`], exact mode).
//!
//! The first violating schedule is [minimized](minimize) by re-running
//! candidate sub-schedules and shipped as a replayable
//! [`ScheduleFixture`].

use std::sync::Arc;

use crate::linearize::{check_linearizable, Strictness};
use crate::schedule::ScheduleFixture;
use crate::vthread::{Body, ControllerConfig, ExplorerHook, RunOutcome, Scheduler};
use crate::workload::Workload;

/// Exploration knobs.
#[derive(Debug, Clone, Copy)]
pub struct ExploreConfig {
    /// Maximum preemptions per execution (forced switches are free).
    pub preemption_bound: usize,
    /// Prune preemptions whose reordering provably commutes (acquires
    /// on distinct locks). Heuristic: big state-space cut on 3+-thread
    /// workloads, so it is on by default; the two-thread acceptance
    /// workloads are cheap enough that the smoke test also runs them
    /// unpruned.
    pub dpor: bool,
    /// Hard cap on executions (the report says if it was hit).
    pub max_schedules: usize,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            preemption_bound: 3,
            dpor: true,
            max_schedules: 500_000,
        }
    }
}

/// What one violating schedule did.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Workload that produced it.
    pub workload: String,
    /// Bound it was found under.
    pub preemption_bound: usize,
    /// Minimized replayable schedule.
    pub schedule: Vec<usize>,
    /// What went wrong (first failed check).
    pub detail: String,
}

impl Violation {
    /// Package as a fixture for `tests/fixtures/schedules/`.
    pub fn to_fixture(&self) -> ScheduleFixture {
        ScheduleFixture {
            workload: self.workload.clone(),
            preemption_bound: self.preemption_bound,
            schedule: self.schedule.clone(),
            violation: Some(self.detail.lines().next().unwrap_or("").to_string()),
        }
    }
}

/// The outcome of exploring one workload.
#[derive(Debug)]
pub struct ExploreReport {
    /// Workload explored.
    pub workload: String,
    /// Executions run.
    pub schedules: usize,
    /// True if `max_schedules` cut the search short — coverage is then
    /// *not* exhaustive and the caller should say so.
    pub truncated: bool,
    /// First violation found, already minimized. `None` = every
    /// explored schedule passed all checks.
    pub violation: Option<Violation>,
}

/// Explore every schedule of `w` up to the bound. `Err` is an
/// infrastructure failure (the workload would not even build), not a
/// verification result.
pub fn explore(w: &Workload, cfg: &ExploreConfig) -> Result<ExploreReport, String> {
    let ccfg = ControllerConfig {
        preemption_bound: cfg.preemption_bound,
        dpor: cfg.dpor,
    };
    // DFS over schedule prefixes. Decisions at positions < prefix.len()
    // were enumerated by the run that pushed this prefix; only new
    // positions fork further prefixes.
    let mut stack: Vec<Vec<usize>> = vec![Vec::new()];
    let mut schedules = 0usize;
    let mut truncated = false;
    while let Some(prefix) = stack.pop() {
        if schedules >= cfg.max_schedules {
            truncated = true;
            break;
        }
        schedules += 1;
        let (out, violation) = run_one(w, &prefix, &ccfg)?;
        if out.diverged {
            return Err(format!(
                "workload {} is nondeterministic: schedule replay diverged",
                w.name
            ));
        }
        if let Some(detail) = violation {
            let (schedule, detail) = minimize(w, &out.choices(), detail, &ccfg)?;
            return Ok(ExploreReport {
                workload: w.name.to_string(),
                schedules,
                truncated,
                violation: Some(Violation {
                    workload: w.name.to_string(),
                    preemption_bound: cfg.preemption_bound,
                    schedule,
                    detail,
                }),
            });
        }
        for i in prefix.len()..out.decisions.len() {
            for &alt in &out.decisions[i].alternatives {
                let mut p: Vec<usize> = out.decisions[..i].iter().map(|d| d.chosen).collect();
                p.push(alt);
                stack.push(p);
            }
        }
    }
    Ok(ExploreReport {
        workload: w.name.to_string(),
        schedules,
        truncated,
        violation: None,
    })
}

/// Replay a fixture. Returns the violation it reproduces, or `None` if
/// the schedule now runs clean (a fixed bug — the regression test wants
/// clean runs for checked-in fixtures of *fixed* bugs, and violations
/// for fixtures guarding known-injected ones).
pub fn replay(fix: &ScheduleFixture) -> Result<Option<String>, String> {
    let w = Workload::by_name(&fix.workload)
        .ok_or_else(|| format!("fixture names unknown workload {:?}", fix.workload))?;
    let ccfg = ControllerConfig {
        preemption_bound: fix.preemption_bound,
        dpor: false,
    };
    let (out, violation) = run_one(&w, &fix.schedule, &ccfg)?;
    if out.diverged {
        return Err(format!(
            "fixture schedule for {} diverged: the workload or protocol changed shape; \
             re-minimize the fixture",
            fix.workload
        ));
    }
    Ok(violation)
}

/// Run one serialized execution and verify it. Returns the outcome plus
/// the first violated check, if any.
fn run_one(
    w: &Workload,
    prefix: &[usize],
    ccfg: &ControllerConfig,
) -> Result<(RunOutcome, Option<String>), String> {
    let (file, locks, metrics) = w.build()?;
    let init = w.initial_map();
    metrics.history().enable();
    let sched = Scheduler::new(w.threads.len());
    locks.set_wait_hook(Some(Arc::new(ExplorerHook::new(Arc::clone(&sched)))));
    let file_ref = file.as_dyn();
    let bodies: Vec<Body<'_>> = w
        .threads
        .iter()
        .map(|ops| {
            let ops = ops.clone();
            Box::new(move || {
                for op in ops {
                    op.apply(file_ref)?;
                }
                Ok(())
            }) as Body<'_>
        })
        .collect();
    let out = sched.run(bodies, prefix, ccfg);
    locks.set_wait_hook(None);
    metrics.history().disable();
    let records = metrics.history().drain();

    let mut detail = out.failure.clone();
    if detail.is_none() {
        if let Err(e) = ceh_core::invariants::check_concurrent_file(file.core()) {
            detail = Some(format!("structural invariant violated at quiescence: {e}"));
        }
    }
    if detail.is_none() {
        if let Err(v) = check_linearizable(&init, &records, Strictness::Exact) {
            detail = Some(v.to_string());
        }
    }
    Ok((out, detail))
}

/// Shrink a violating schedule: first the shortest violating prefix
/// (default policy fills in the rest), then greedy single-choice drops.
/// Every candidate is validated by an actual re-run; diverged candidates
/// are discarded.
fn minimize(
    w: &Workload,
    choices: &[usize],
    original_detail: String,
    ccfg: &ControllerConfig,
) -> Result<(Vec<usize>, String), String> {
    let violates = |s: &[usize]| -> Result<Option<String>, String> {
        let (out, v) = run_one(w, s, ccfg)?;
        Ok(if out.diverged { None } else { v })
    };

    let mut best = choices.to_vec();
    let mut detail = original_detail;

    // Shortest violating prefix, by bisection on length. Monotone for
    // lengths past the point where the tail already follows the default
    // policy (which is how `choices` was produced), so this is exact
    // there and a safe heuristic below it.
    let mut lo = 0usize;
    let mut hi = best.len();
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        match violates(&best[..mid])? {
            Some(d) => {
                hi = mid;
                detail = d;
            }
            None => lo = mid + 1,
        }
    }
    best.truncate(hi);

    // Greedy elementwise drops.
    let mut i = 0;
    while i < best.len() {
        let mut cand = best.clone();
        cand.remove(i);
        match violates(&cand)? {
            Some(d) => {
                best = cand;
                detail = d;
            }
            None => i += 1,
        }
    }

    // The minimized schedule must still reproduce (guards against the
    // bisection landing on a fluke).
    if violates(&best)?.is_none() {
        best = choices.to_vec();
    }
    Ok((best, detail))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(dpor: bool) -> ExploreConfig {
        ExploreConfig {
            preemption_bound: 2,
            dpor,
            max_schedules: 50_000,
        }
    }

    #[test]
    fn s1_split_race_is_clean_bound_2() {
        let w = Workload::by_name("s1-insert-insert-split").unwrap();
        let r = explore(&w, &cfg(false)).unwrap();
        assert!(r.violation.is_none(), "{:?}", r.violation);
        assert!(!r.truncated);
        assert!(r.schedules > 1, "explored only {} schedules", r.schedules);
    }

    #[test]
    fn dpor_pruning_preserves_the_verdict() {
        let w = Workload::by_name("s1-insert-insert-split").unwrap();
        let full = explore(&w, &cfg(false)).unwrap();
        let pruned = explore(&w, &cfg(true)).unwrap();
        assert!(full.violation.is_none() && pruned.violation.is_none());
        assert!(
            pruned.schedules <= full.schedules,
            "pruning explored more ({}) than exhaustive ({})",
            pruned.schedules,
            full.schedules
        );
    }

    #[test]
    #[cfg_attr(
        feature = "check-inject",
        ignore = "injected bug makes this workload violate"
    )]
    fn s2_merge_race_is_clean_bound_2() {
        let w = Workload::by_name("s2-delete-delete-merge").unwrap();
        let r = explore(&w, &cfg(false)).unwrap();
        assert!(r.violation.is_none(), "{:?}", r.violation);
        assert!(!r.truncated);
    }

    #[test]
    fn max_schedules_truncates() {
        let w = Workload::by_name("s1-insert-insert-split").unwrap();
        let r = explore(
            &w,
            &ExploreConfig {
                preemption_bound: 2,
                dpor: false,
                max_schedules: 2,
            },
        )
        .unwrap();
        assert!(r.truncated);
        assert_eq!(r.schedules, 2);
    }
}
