//! Bounded-exhaustive schedule exploration.
//!
//! [`explore`] runs a [`Workload`] under *every* interleaving reachable
//! with at most `preemption_bound` preemptions: a DFS over schedule
//! prefixes, where each execution records which alternative choices were
//! legal at each scheduling decision and the explorer forks a new prefix
//! per alternative. Each execution is independently verified:
//!
//! 1. **execution health** — no operation error, worker panic, or
//!    virtual-thread deadlock;
//! 2. **structural invariants** — [`ceh_core::invariants`] over the
//!    quiescent file (directory/bucket agreement, no reachable
//!    tombstones, record placement, length accounting);
//! 3. **linearizability** — the recorded operation history checks out
//!    against the sequential model ([`crate::linearize`], exact mode).
//!
//! The first violating schedule is [minimized](minimize) by re-running
//! candidate sub-schedules and shipped as a replayable
//! [`ScheduleFixture`].

use std::sync::Arc;

use crate::linearize::{check_linearizable, Strictness};
use crate::schedule::ScheduleFixture;
use crate::vthread::{Body, ControllerConfig, ExplorerHook, RunOutcome, Scheduler};
use crate::workload::Workload;

/// Exploration knobs.
#[derive(Debug, Clone, Copy)]
pub struct ExploreConfig {
    /// Maximum preemptions per execution (forced switches are free).
    pub preemption_bound: usize,
    /// Prune preemptions whose reordering provably commutes (acquires
    /// on distinct locks). Heuristic: big state-space cut on 3+-thread
    /// workloads, so it is on by default; the two-thread acceptance
    /// workloads are cheap enough that the smoke test also runs them
    /// unpruned.
    pub dpor: bool,
    /// Hard cap on executions (the report says if it was hit).
    pub max_schedules: usize,
    /// Also run the happens-before race detector over every explored
    /// schedule (requires the `check-race` feature; exploring with this
    /// set on a build without it is an error, not a silent skip).
    pub race: bool,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            preemption_bound: 3,
            dpor: true,
            max_schedules: 500_000,
            race: false,
        }
    }
}

/// What one violating schedule did.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Workload that produced it.
    pub workload: String,
    /// Bound it was found under.
    pub preemption_bound: usize,
    /// Minimized replayable schedule.
    pub schedule: Vec<usize>,
    /// What went wrong (first failed check).
    pub detail: String,
    /// True if the run was race-checked (replay must re-enable the
    /// detector to reproduce a race violation).
    pub race: bool,
}

impl Violation {
    /// Package as a fixture for `tests/fixtures/schedules/` (or
    /// `tests/fixtures/races/` for race violations).
    pub fn to_fixture(&self) -> ScheduleFixture {
        ScheduleFixture {
            workload: self.workload.clone(),
            preemption_bound: self.preemption_bound,
            schedule: self.schedule.clone(),
            violation: Some(self.detail.lines().next().unwrap_or("").to_string()),
            race: self.race,
        }
    }
}

/// The outcome of exploring one workload.
#[derive(Debug)]
pub struct ExploreReport {
    /// Workload explored.
    pub workload: String,
    /// Executions run.
    pub schedules: usize,
    /// True if `max_schedules` cut the search short — coverage is then
    /// *not* exhaustive and the caller should say so.
    pub truncated: bool,
    /// First violation found, already minimized. `None` = every
    /// explored schedule passed all checks.
    pub violation: Option<Violation>,
}

/// Raw result of a [`dfs_explore`] pass: counts plus the first violating
/// schedule's un-minimized choices and detail.
pub(crate) struct DfsOutcome {
    pub schedules: usize,
    pub truncated: bool,
    pub violation: Option<(Vec<usize>, String)>,
}

/// DFS over schedule prefixes, generic over how one prefix is executed
/// (protocol workloads and litmus programs share this driver). Decisions
/// at positions < prefix.len() were enumerated by the run that pushed
/// the prefix; only new positions fork further prefixes.
pub(crate) fn dfs_explore<F>(
    mut run: F,
    cfg: &ExploreConfig,
    name: &str,
) -> Result<DfsOutcome, String>
where
    F: FnMut(&[usize]) -> Result<(RunOutcome, Option<String>), String>,
{
    let mut stack: Vec<Vec<usize>> = vec![Vec::new()];
    let mut schedules = 0usize;
    let mut truncated = false;
    while let Some(prefix) = stack.pop() {
        if schedules >= cfg.max_schedules {
            truncated = true;
            break;
        }
        schedules += 1;
        let (out, violation) = run(&prefix)?;
        if out.diverged {
            return Err(format!(
                "workload {name} is nondeterministic: schedule replay diverged"
            ));
        }
        if let Some(detail) = violation {
            return Ok(DfsOutcome {
                schedules,
                truncated,
                violation: Some((out.choices(), detail)),
            });
        }
        for i in prefix.len()..out.decisions.len() {
            for &alt in &out.decisions[i].alternatives {
                let mut p: Vec<usize> = out.decisions[..i].iter().map(|d| d.chosen).collect();
                p.push(alt);
                stack.push(p);
            }
        }
    }
    Ok(DfsOutcome {
        schedules,
        truncated,
        violation: None,
    })
}

/// Explore every schedule of `w` up to the bound. `Err` is an
/// infrastructure failure (the workload would not even build), not a
/// verification result.
pub fn explore(w: &Workload, cfg: &ExploreConfig) -> Result<ExploreReport, String> {
    let ccfg = ControllerConfig {
        preemption_bound: cfg.preemption_bound,
        dpor: cfg.dpor,
    };
    let dfs = dfs_explore(|prefix| run_one(w, prefix, &ccfg, cfg.race), cfg, w.name)?;
    let violation = match dfs.violation {
        Some((choices, detail)) => {
            let (schedule, detail) = minimize_with(
                |s| {
                    let (out, v) = run_one(w, s, &ccfg, cfg.race)?;
                    Ok(if out.diverged { None } else { v })
                },
                &choices,
                detail,
            )?;
            Some(Violation {
                workload: w.name.to_string(),
                preemption_bound: cfg.preemption_bound,
                schedule,
                detail,
                race: cfg.race,
            })
        }
        None => None,
    };
    Ok(ExploreReport {
        workload: w.name.to_string(),
        schedules: dfs.schedules,
        truncated: dfs.truncated,
        violation,
    })
}

/// Replay a fixture. Returns the violation it reproduces, or `None` if
/// the schedule now runs clean (a fixed bug — the regression test wants
/// clean runs for checked-in fixtures of *fixed* bugs, and violations
/// for fixtures guarding known-injected ones).
///
/// A fixture whose workload is `litmus:NAME` replays through the litmus
/// corpus instead (requires the `check-race` feature).
pub fn replay(fix: &ScheduleFixture) -> Result<Option<String>, String> {
    if let Some(litmus_name) = fix.workload.strip_prefix("litmus:") {
        #[cfg(feature = "check-race")]
        return crate::litmus::replay_litmus(litmus_name, &fix.schedule, fix.preemption_bound);
        #[cfg(not(feature = "check-race"))]
        return Err(format!(
            "fixture for litmus {litmus_name:?} requires ceh-check built with --features check-race"
        ));
    }
    let w = Workload::by_name(&fix.workload)
        .ok_or_else(|| format!("fixture names unknown workload {:?}", fix.workload))?;
    let ccfg = ControllerConfig {
        preemption_bound: fix.preemption_bound,
        dpor: false,
    };
    let (out, violation) = run_one(&w, &fix.schedule, &ccfg, fix.race)?;
    if out.diverged {
        return Err(format!(
            "fixture schedule for {} diverged: the workload or protocol changed shape; \
             re-minimize the fixture",
            fix.workload
        ));
    }
    Ok(violation)
}

/// Run one serialized execution and verify it. Returns the outcome plus
/// the first violated check, if any. With `race` set the run is also
/// race-checked: the detector is installed as the process-global shadow
/// sink for the duration (serialized by the global run lock) and any
/// race it finds outranks invariant/linearizability details.
fn run_one(
    w: &Workload,
    prefix: &[usize],
    ccfg: &ControllerConfig,
    race: bool,
) -> Result<(RunOutcome, Option<String>), String> {
    #[cfg(not(feature = "check-race"))]
    if race {
        return Err(
            "race checking requires ceh-check built with --features check-race".to_string(),
        );
    }
    // Build (setup inserts, preloading) runs before any hook or sink is
    // installed, so only the workload's own accesses are observed.
    let (file, locks, metrics) = w.build()?;
    let init = w.initial_map();
    metrics.history().enable();
    let sched = Scheduler::new(w.threads.len());
    #[cfg(feature = "check-race")]
    let race_run = race.then(|| {
        // Workloads keep access-level yields off: a happens-before
        // violation is visible in any serialization, and yielding at
        // every shadowed access would explode the schedule space.
        crate::race::RaceRun::begin(&sched, w.threads.len(), false)
    });
    #[cfg(feature = "check-race")]
    match &race_run {
        Some(rr) => locks.set_wait_hook(Some(rr.hook())),
        None => locks.set_wait_hook(Some(Arc::new(ExplorerHook::new(Arc::clone(&sched))))),
    }
    #[cfg(not(feature = "check-race"))]
    locks.set_wait_hook(Some(Arc::new(ExplorerHook::new(Arc::clone(&sched)))));
    let file_ref = file.as_dyn();
    let bodies: Vec<Body<'_>> = w
        .threads
        .iter()
        .map(|ops| {
            let ops = ops.clone();
            Box::new(move || {
                for op in ops {
                    op.apply(file_ref)?;
                }
                Ok(())
            }) as Body<'_>
        })
        .collect();
    let out = sched.run(bodies, prefix, ccfg);
    locks.set_wait_hook(None);
    metrics.history().disable();
    let records = metrics.history().drain();

    let mut detail = out.failure.clone();
    #[cfg(feature = "check-race")]
    if let Some(rr) = race_run {
        let races = rr.finish();
        if detail.is_none() {
            if let Some(r) = races.first() {
                detail = Some(r.to_string());
            }
        }
    }
    if detail.is_none() {
        if let Err(e) = ceh_core::invariants::check_concurrent_file(file.core()) {
            detail = Some(format!("structural invariant violated at quiescence: {e}"));
        }
    }
    if detail.is_none() {
        if let Err(v) = check_linearizable(&init, &records, Strictness::Exact) {
            detail = Some(v.to_string());
        }
    }
    Ok((out, detail))
}

/// Shrink a violating schedule: first the shortest violating prefix
/// (default policy fills in the rest), then greedy single-choice drops.
/// Every candidate is validated by an actual re-run through `violates`
/// (which must report diverged candidates as `None` so they are
/// discarded).
pub(crate) fn minimize_with<F>(
    violates: F,
    choices: &[usize],
    original_detail: String,
) -> Result<(Vec<usize>, String), String>
where
    F: Fn(&[usize]) -> Result<Option<String>, String>,
{
    let mut best = choices.to_vec();
    let mut detail = original_detail;

    // Shortest violating prefix, by bisection on length. Monotone for
    // lengths past the point where the tail already follows the default
    // policy (which is how `choices` was produced), so this is exact
    // there and a safe heuristic below it.
    let mut lo = 0usize;
    let mut hi = best.len();
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        match violates(&best[..mid])? {
            Some(d) => {
                hi = mid;
                detail = d;
            }
            None => lo = mid + 1,
        }
    }
    best.truncate(hi);

    // Greedy elementwise drops.
    let mut i = 0;
    while i < best.len() {
        let mut cand = best.clone();
        cand.remove(i);
        match violates(&cand)? {
            Some(d) => {
                best = cand;
                detail = d;
            }
            None => i += 1,
        }
    }

    // The minimized schedule must still reproduce (guards against the
    // bisection landing on a fluke).
    if violates(&best)?.is_none() {
        best = choices.to_vec();
    }
    Ok((best, detail))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(dpor: bool) -> ExploreConfig {
        ExploreConfig {
            preemption_bound: 2,
            dpor,
            max_schedules: 50_000,
            race: false,
        }
    }

    #[test]
    fn s1_split_race_is_clean_bound_2() {
        let w = Workload::by_name("s1-insert-insert-split").unwrap();
        let r = explore(&w, &cfg(false)).unwrap();
        assert!(r.violation.is_none(), "{:?}", r.violation);
        assert!(!r.truncated);
        assert!(r.schedules > 1, "explored only {} schedules", r.schedules);
    }

    #[test]
    fn dpor_pruning_preserves_the_verdict() {
        let w = Workload::by_name("s1-insert-insert-split").unwrap();
        let full = explore(&w, &cfg(false)).unwrap();
        let pruned = explore(&w, &cfg(true)).unwrap();
        assert!(full.violation.is_none() && pruned.violation.is_none());
        assert!(
            pruned.schedules <= full.schedules,
            "pruning explored more ({}) than exhaustive ({})",
            pruned.schedules,
            full.schedules
        );
    }

    #[test]
    #[cfg_attr(
        feature = "check-inject",
        ignore = "injected bug makes this workload violate"
    )]
    fn s2_merge_race_is_clean_bound_2() {
        let w = Workload::by_name("s2-delete-delete-merge").unwrap();
        let r = explore(&w, &cfg(false)).unwrap();
        assert!(r.violation.is_none(), "{:?}", r.violation);
        assert!(!r.truncated);
    }

    #[test]
    fn max_schedules_truncates() {
        let w = Workload::by_name("s1-insert-insert-split").unwrap();
        let r = explore(
            &w,
            &ExploreConfig {
                preemption_bound: 2,
                dpor: false,
                max_schedules: 2,
                race: false,
            },
        )
        .unwrap();
        assert!(r.truncated);
        assert_eq!(r.schedules, 2);
    }
}
