//! Wing–Gong linearizability checking over recorded operation histories.
//!
//! A history (a drained [`ceh_obs::HistoryLog`]) is linearizable if every
//! completed operation can be assigned a single atomic point between its
//! invoke and return edges such that the resulting sequential execution is
//! legal for a map. Because every operation here touches exactly one key,
//! the classical locality theorem applies: the map is linearizable iff
//! each per-key sub-history is, so the search partitions by key and runs
//! one small Wing–Gong DFS per key — states are just `Option<value>`,
//! memoized on (set of linearized ops, state).
//!
//! Operations that never returned, or returned an error
//! ([`ceh_obs::HistResult::Unknown`]), *may or may not* have taken
//! effect; the search branches on both. [`Strictness::AtLeastOnce`]
//! additionally coarsens write outcomes (an insert that reports
//! `AlreadyPresent` may be its own retried effect — the distributed
//! client resends lost requests, so exactly-once outcome reporting is
//! not promised); reads stay exact in both modes.
//!
//! Successful searches are re-validated: the per-key witness order is
//! replayed against [`ceh_sequential::SequentialHashFile`] so the
//! checker's transition model can never silently diverge from the
//! paper's sequential semantics.

use std::collections::{HashMap, HashSet};

use ceh_obs::{HistKind, HistRecord, HistResult};
use ceh_sequential::SequentialHashFile;
use ceh_types::{DeleteOutcome, HashFileConfig, InsertOutcome, Key, Value};

/// How literally to take reported write outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strictness {
    /// Outcomes are exact: `Inserted` means the key was absent,
    /// `AlreadyPresent` means it was present, and so on. Correct for
    /// in-process files (the explorer, chaos runs against one file).
    Exact,
    /// Write outcomes only prove the effect happened *at least once*
    /// (retried distributed requests may double-report). Reads are
    /// still checked exactly.
    AtLeastOnce,
}

/// Statistics from a successful linearizability check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinReport {
    /// Distinct keys in the history.
    pub keys: usize,
    /// Total operations checked.
    pub ops: usize,
    /// Operations that never returned (or returned `Unknown`) and were
    /// treated as optional.
    pub pending: usize,
}

/// A non-linearizable per-key sub-history.
#[derive(Debug, Clone)]
pub struct LinViolation {
    /// The offending key.
    pub key: u64,
    /// Human-readable explanation with the full per-key history.
    pub detail: String,
}

impl std::fmt::Display for LinViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "history for key {} is not linearizable:\n{}",
            self.key, self.detail
        )
    }
}

impl std::error::Error for LinViolation {}

/// Check `records` (plus `init`, the map state when recording started)
/// for linearizability. Returns per-history statistics on success.
pub fn check_linearizable(
    init: &HashMap<u64, u64>,
    records: &[HistRecord],
    strict: Strictness,
) -> Result<LinReport, LinViolation> {
    let mut by_key: HashMap<u64, Vec<HistRecord>> = HashMap::new();
    for r in records {
        by_key.entry(r.key).or_default().push(*r);
    }
    let mut keys: Vec<u64> = by_key.keys().copied().collect();
    keys.sort_unstable();

    let mut pending = 0;
    for &key in &keys {
        let mut ops = by_key.remove(&key).expect("key vanished");
        ops.sort_by_key(|o| o.invoke);
        pending += ops.iter().filter(|o| !o.completed()).count();
        check_key(key, init.get(&key).copied(), &ops, strict)?;
    }
    Ok(LinReport {
        keys: keys.len(),
        ops: records.len(),
        pending,
    })
}

fn check_key(
    key: u64,
    init: Option<u64>,
    ops: &[HistRecord],
    strict: Strictness,
) -> Result<(), LinViolation> {
    let completed = ops.iter().filter(|o| o.completed()).count();
    let mut search = Search {
        ops,
        strict,
        memo: HashSet::new(),
    };
    let words = ops.len().div_ceil(64);
    let mut done = vec![0u64; words];
    let mut witness = Vec::new();
    if !search.dfs(&mut done, completed, init, &mut witness) {
        return Err(LinViolation {
            key,
            detail: render_history(init, ops),
        });
    }
    if strict == Strictness::Exact {
        replay_witness(key, init, ops, &witness)?;
    }
    Ok(())
}

struct Search<'a> {
    ops: &'a [HistRecord],
    strict: Strictness,
    memo: HashSet<(Vec<u64>, Option<u64>)>,
}

impl Search<'_> {
    /// Depth-first Wing–Gong: `done` is the linearized-op bitset,
    /// `left` the count of completed ops still to place, `state` the
    /// current register value. Pending/unknown ops are optional.
    fn dfs(
        &mut self,
        done: &mut Vec<u64>,
        left: usize,
        state: Option<u64>,
        witness: &mut Vec<usize>,
    ) -> bool {
        if left == 0 {
            return true;
        }
        if !self.memo.insert((done.clone(), state)) {
            return false;
        }
        // The minimal-return rule: an op may be linearized next only if
        // no *other* unlinearized op returned before it was invoked.
        let min_ret = self
            .ops
            .iter()
            .enumerate()
            .filter(|(i, _)| done[i / 64] & (1 << (i % 64)) == 0)
            .map(|(_, o)| o.ret)
            .min()
            .unwrap_or(u64::MAX);
        for (i, op) in self.ops.iter().enumerate() {
            if done[i / 64] & (1 << (i % 64)) != 0 || op.invoke >= min_ret {
                continue;
            }
            let next_left = left - usize::from(op.completed());
            for next in transitions(op, state, self.strict) {
                done[i / 64] |= 1 << (i % 64);
                witness.push(i);
                if self.dfs(done, next_left, next, witness) {
                    return true;
                }
                witness.pop();
                done[i / 64] &= !(1 << (i % 64));
            }
        }
        false
    }
}

/// The register states reachable by linearizing `op` at state `state`.
/// Empty means "inconsistent here" (for uncertain ops, *not* linearizing
/// them is always also on the table — the caller simply skips them).
fn transitions(op: &HistRecord, state: Option<u64>, strict: Strictness) -> Vec<Option<u64>> {
    let present = state.is_some();
    let ensure_present = Some(state.unwrap_or(op.value));
    match (op.kind, op.result, op.completed()) {
        (HistKind::Find, HistResult::Found(v), true) => {
            if v == state {
                vec![state]
            } else {
                vec![]
            }
        }
        // A find that errored or never returned has no effect; skipping
        // it covers every behavior.
        (HistKind::Find, _, _) => vec![],
        (HistKind::Insert, HistResult::Inserted(new), true) => match strict {
            Strictness::Exact => {
                if new != present {
                    vec![if new { Some(op.value) } else { state }]
                } else {
                    vec![]
                }
            }
            Strictness::AtLeastOnce => vec![ensure_present],
        },
        // Uncertain insert: if it took effect, the key became present.
        (HistKind::Insert, _, _) => vec![ensure_present],
        (HistKind::Delete, HistResult::Deleted(hit), true) => match strict {
            Strictness::Exact => {
                if hit == present {
                    vec![None]
                } else {
                    vec![]
                }
            }
            Strictness::AtLeastOnce => vec![None],
        },
        // Uncertain delete: if it took effect, the key is gone.
        (HistKind::Delete, _, _) => vec![None],
    }
}

/// Replay the witness order against the real sequential model and insist
/// every completed op's recorded outcome matches. Guards the transition
/// table above against drift from `ceh-sequential`.
fn replay_witness(
    key: u64,
    init: Option<u64>,
    ops: &[HistRecord],
    witness: &[usize],
) -> Result<(), LinViolation> {
    let fail = |detail: String| LinViolation { key, detail };
    let mut file = SequentialHashFile::new(HashFileConfig::tiny()).map_err(|e| {
        fail(format!(
            "witness replay could not build a sequential file: {e}"
        ))
    })?;
    if let Some(v) = init {
        file.insert(Key(key), Value(v)).map_err(|e| {
            fail(format!(
                "witness replay could not seed the initial value: {e}"
            ))
        })?;
    }
    for (idx, &i) in witness.iter().enumerate() {
        let op = &ops[i];
        let observed = match op.kind {
            HistKind::Find => HistResult::Found(
                file.find(Key(op.key))
                    .map_err(|e| fail(format!("witness replay find failed: {e}")))?
                    .map(|v| v.0),
            ),
            HistKind::Insert => {
                let o = file
                    .insert(Key(op.key), Value(op.value))
                    .map_err(|e| fail(format!("witness replay insert failed: {e}")))?;
                HistResult::Inserted(o == InsertOutcome::Inserted)
            }
            HistKind::Delete => {
                let o = file
                    .delete(Key(op.key))
                    .map_err(|e| fail(format!("witness replay delete failed: {e}")))?;
                HistResult::Deleted(o == DeleteOutcome::Deleted)
            }
        };
        if op.completed() && observed != op.result {
            return Err(LinViolation {
                key,
                detail: format!(
                    "witness disagrees with the sequential model at step {idx}: \
                     {op:?} observed {observed:?} on replay\n{}",
                    render_history(init, ops)
                ),
            });
        }
    }
    Ok(())
}

fn render_history(init: Option<u64>, ops: &[HistRecord]) -> String {
    use std::fmt::Write as _;
    let mut s = format!("  initial value: {init:?}\n");
    for op in ops {
        let ret = if op.ret == HistRecord::PENDING {
            "pending".to_string()
        } else {
            op.ret.to_string()
        };
        let _ = writeln!(
            s,
            "  [{:>4}, {:>7}] {} key={} value={} -> {:?}",
            op.invoke, ret, op.kind, op.key, op.value, op.result
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(
        kind: HistKind,
        key: u64,
        value: u64,
        invoke: u64,
        ret: u64,
        result: HistResult,
    ) -> HistRecord {
        HistRecord {
            kind,
            key,
            value,
            invoke,
            ret,
            result,
        }
    }

    #[test]
    fn sequential_history_is_linearizable() {
        let h = vec![
            rec(HistKind::Insert, 1, 10, 0, 1, HistResult::Inserted(true)),
            rec(HistKind::Find, 1, 0, 2, 3, HistResult::Found(Some(10))),
            rec(HistKind::Delete, 1, 0, 4, 5, HistResult::Deleted(true)),
            rec(HistKind::Find, 1, 0, 6, 7, HistResult::Found(None)),
        ];
        let r = check_linearizable(&HashMap::new(), &h, Strictness::Exact).unwrap();
        assert_eq!((r.keys, r.ops, r.pending), (1, 4, 0));
    }

    #[test]
    fn overlapping_ops_may_commute() {
        // find overlaps the insert: both Found(None) and Found(Some)
        // would be linearizable; this one observed None.
        let h = vec![
            rec(HistKind::Insert, 1, 10, 0, 3, HistResult::Inserted(true)),
            rec(HistKind::Find, 1, 0, 1, 2, HistResult::Found(None)),
        ];
        check_linearizable(&HashMap::new(), &h, Strictness::Exact).unwrap();
    }

    #[test]
    fn stale_read_is_rejected() {
        // The insert returned before the find was invoked, so Found(None)
        // is a real-time violation.
        let h = vec![
            rec(HistKind::Insert, 1, 10, 0, 1, HistResult::Inserted(true)),
            rec(HistKind::Find, 1, 0, 2, 3, HistResult::Found(None)),
        ];
        let err = check_linearizable(&HashMap::new(), &h, Strictness::Exact).unwrap_err();
        assert_eq!(err.key, 1);
    }

    #[test]
    fn lost_delete_is_rejected() {
        // Sequential deletes of the same present key cannot both miss.
        let h = vec![
            rec(HistKind::Delete, 5, 0, 0, 1, HistResult::Deleted(false)),
            rec(HistKind::Find, 5, 0, 2, 3, HistResult::Found(Some(50))),
        ];
        let init = HashMap::from([(5, 50)]);
        assert!(check_linearizable(&init, &h, Strictness::Exact).is_err());
        // ...but without the initial value the NotFound is fine.
        check_linearizable(&HashMap::new(), &h[..1], Strictness::Exact).unwrap();
    }

    #[test]
    fn pending_ops_are_optional_both_ways() {
        // A pending insert may or may not have landed; either read is OK.
        let pending = rec(
            HistKind::Insert,
            2,
            20,
            0,
            HistRecord::PENDING,
            HistResult::Unknown,
        );
        for found in [HistResult::Found(None), HistResult::Found(Some(20))] {
            let h = vec![pending, rec(HistKind::Find, 2, 0, 1, 2, found)];
            check_linearizable(&HashMap::new(), &h, Strictness::Exact).unwrap();
        }
        // But a read of some *other* value is still wrong.
        let h = vec![
            pending,
            rec(HistKind::Find, 2, 0, 1, 2, HistResult::Found(Some(99))),
        ];
        assert!(check_linearizable(&HashMap::new(), &h, Strictness::Exact).is_err());
    }

    #[test]
    fn at_least_once_tolerates_double_reported_inserts() {
        // Two concurrent "Inserted(true)" for the same key: impossible
        // exactly-once, legal under retries.
        let h = vec![
            rec(HistKind::Insert, 3, 30, 0, 2, HistResult::Inserted(true)),
            rec(HistKind::Insert, 3, 30, 1, 3, HistResult::Inserted(true)),
        ];
        assert!(check_linearizable(&HashMap::new(), &h, Strictness::Exact).is_err());
        check_linearizable(&HashMap::new(), &h, Strictness::AtLeastOnce).unwrap();
    }

    #[test]
    fn keys_are_checked_independently() {
        let h = vec![
            rec(HistKind::Insert, 1, 10, 0, 1, HistResult::Inserted(true)),
            rec(HistKind::Insert, 2, 20, 2, 3, HistResult::Inserted(true)),
            rec(HistKind::Find, 2, 0, 4, 5, HistResult::Found(Some(20))),
        ];
        let r = check_linearizable(&HashMap::new(), &h, Strictness::Exact).unwrap();
        assert_eq!(r.keys, 2);
    }
}
