//! Minimized failing-schedule fixtures.
//!
//! When the explorer finds a violating interleaving it minimizes the
//! schedule and serializes it in a tiny line-oriented text format meant
//! to be checked into `tests/fixtures/schedules/` as a regression corpus;
//! the harness replays every fixture on every test run. The format:
//!
//! ```text
//! # ceh-check schedule fixture v1
//! # free-form comment lines are ignored
//! workload: s2-delete-delete-merge
//! preemption-bound: 3
//! schedule: 0 0 1 1 0 1 0
//! violation: history for key 7 is not linearizable
//! ```
//!
//! `schedule` is the thread index chosen at each scheduling decision;
//! replaying it through [`crate::replay`] deterministically reproduces
//! the execution. `violation` is advisory (what the schedule originally
//! produced) — replay asserts only that *some* violation recurs, so
//! fixtures stay stable across improved diagnostics.

use std::fmt::Write as _;

/// A parsed schedule fixture (see module docs for the on-disk format).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleFixture {
    /// Name of the [`crate::Workload`] the schedule drives.
    pub workload: String,
    /// Preemption bound the schedule was found under.
    pub preemption_bound: usize,
    /// The thread chosen at each scheduling decision.
    pub schedule: Vec<usize>,
    /// One-line description of the original violation (advisory).
    pub violation: Option<String>,
    /// True if replay must run the happens-before race detector (the
    /// fixture reproduces a data race, not a protocol violation).
    /// Serialized as `race: true`; absent means false, so pre-existing
    /// fixtures parse unchanged.
    pub race: bool,
}

const HEADER: &str = "# ceh-check schedule fixture v1";

impl ScheduleFixture {
    /// Serialize to the on-disk text format.
    pub fn serialize(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{HEADER}");
        let _ = writeln!(s, "workload: {}", self.workload);
        let _ = writeln!(s, "preemption-bound: {}", self.preemption_bound);
        let sched: Vec<String> = self.schedule.iter().map(|c| c.to_string()).collect();
        let _ = writeln!(s, "schedule: {}", sched.join(" "));
        if self.race {
            let _ = writeln!(s, "race: true");
        }
        if let Some(v) = &self.violation {
            let _ = writeln!(s, "violation: {}", v.lines().next().unwrap_or(""));
        }
        s
    }

    /// Parse the on-disk text format.
    pub fn parse(text: &str) -> Result<ScheduleFixture, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some(h) if h.trim() == HEADER => {}
            other => return Err(format!("bad fixture header: {other:?} (want {HEADER:?})")),
        }
        let mut workload = None;
        let mut preemption_bound = None;
        let mut schedule = None;
        let mut violation = None;
        let mut race = false;
        for line in lines {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (field, value) = line
                .split_once(':')
                .ok_or_else(|| format!("fixture line without ':': {line:?}"))?;
            let value = value.trim();
            match field.trim() {
                "workload" => workload = Some(value.to_string()),
                "preemption-bound" => {
                    preemption_bound = Some(
                        value
                            .parse::<usize>()
                            .map_err(|e| format!("bad preemption-bound {value:?}: {e}"))?,
                    )
                }
                "schedule" => {
                    let choices: Result<Vec<usize>, _> =
                        value.split_whitespace().map(str::parse).collect();
                    schedule = Some(choices.map_err(|e| format!("bad schedule {value:?}: {e}"))?);
                }
                "violation" => violation = Some(value.to_string()),
                "race" => {
                    race = value
                        .parse::<bool>()
                        .map_err(|e| format!("bad race flag {value:?}: {e}"))?
                }
                other => return Err(format!("unknown fixture field {other:?}")),
            }
        }
        Ok(ScheduleFixture {
            workload: workload.ok_or("fixture missing 'workload'")?,
            preemption_bound: preemption_bound.ok_or("fixture missing 'preemption-bound'")?,
            schedule: schedule.ok_or("fixture missing 'schedule'")?,
            violation,
            race,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let f = ScheduleFixture {
            workload: "s2-delete-delete-merge".into(),
            preemption_bound: 3,
            schedule: vec![0, 0, 1, 1, 0, 1],
            violation: Some("history for key 7 is not linearizable".into()),
            race: false,
        };
        let parsed = ScheduleFixture::parse(&f.serialize()).unwrap();
        assert_eq!(parsed, f);
    }

    #[test]
    fn roundtrip_without_violation() {
        let f = ScheduleFixture {
            workload: "s1-insert-insert-split".into(),
            preemption_bound: 0,
            schedule: vec![],
            violation: None,
            race: false,
        };
        assert_eq!(ScheduleFixture::parse(&f.serialize()).unwrap(), f);
    }

    #[test]
    fn roundtrip_race_fixture() {
        let f = ScheduleFixture {
            workload: "litmus:mp-relaxed".into(),
            preemption_bound: 3,
            schedule: vec![0, 0, 1],
            violation: Some("data race on `mp.data`".into()),
            race: true,
        };
        let text = f.serialize();
        assert!(text.contains("race: true"), "{text}");
        assert_eq!(ScheduleFixture::parse(&text).unwrap(), f);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# ceh-check schedule fixture v1\n\n# why\nworkload: w\npreemption-bound: 1\nschedule: 1 0\n";
        let f = ScheduleFixture::parse(text).unwrap();
        assert_eq!(f.schedule, vec![1, 0]);
        assert_eq!(f.violation, None);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(ScheduleFixture::parse("nope").is_err());
        assert!(ScheduleFixture::parse("# ceh-check schedule fixture v1\nworkload: w\n").is_err());
        assert!(ScheduleFixture::parse(
            "# ceh-check schedule fixture v1\nworkload: w\npreemption-bound: x\nschedule: 0\n"
        )
        .is_err());
        assert!(ScheduleFixture::parse("# ceh-check schedule fixture v1\nmystery: 3\n").is_err());
    }
}
