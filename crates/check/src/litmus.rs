//! Litmus corpus for the happens-before race detector.
//!
//! Small two-thread programs with *known* racy/race-free verdicts,
//! table-driven so the detector's soundness (clean programs stay clean)
//! and completeness (each seeded race is found) are pinned by tests:
//!
//! | name | verdict | shape |
//! |---|---|---|
//! | `mp-release-acquire` | clean | message passing, Release/Acquire flag |
//! | `mp-relaxed` | racy | message passing, Relaxed flag (no edge) |
//! | `store-buffer` | racy | Dekker-style plain cells |
//! | `store-buffer-atomic` | clean | same shape, atomic cells |
//! | `seqlock-rw` | clean | `VersionWord` writer vs optimistic reader |
//! | `seqlock-missing-release` | racy | writer exits via the injected `Relaxed` end (`check-inject` only) |
//! | `lock-handoff` | clean | ξ-lock handoff through the lock manager |
//! | `handoff-unlocked` | racy | "locked" accesses under *different* locks |
//!
//! Litmus runs differ from protocol workloads in one knob: the detector
//! yields at **every shadowed access**, so the explorer interleaves the
//! programs at access granularity — a litmus's schedule space *is* its
//! accesses. Racy verdicts are minimized with the same bisection
//! minimizer as protocol violations and can be committed as replayable
//! fixtures (`workload: litmus:NAME`) under `tests/fixtures/races/`.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use ceh_locks::shadow::{speculate, Tracked, TrackedAtomicU64};
use ceh_locks::{LockId, LockManager, LockManagerConfig, LockMode, VersionWord};
use ceh_types::PageId;

use crate::explore::{dfs_explore, minimize_with, ExploreConfig, Violation};
use crate::race::RaceRun;
use crate::vthread::{Body, ControllerConfig, RunOutcome, Scheduler};

/// One litmus program: a name, its expected verdict, and a builder that
/// produces fresh thread bodies (plus the lock manager they share, when
/// the program uses locks) for every run.
pub struct Litmus {
    /// Corpus name (also the fixture workload, as `litmus:NAME`).
    pub name: &'static str,
    /// True if the program contains a data race the detector must find.
    pub racy: bool,
    /// Fresh state + bodies for one run.
    pub build: fn() -> LitmusRun,
}

/// One run's worth of litmus state.
pub struct LitmusRun {
    /// The virtual-thread bodies.
    pub bodies: Vec<Body<'static>>,
    /// The lock manager the bodies share, if the program locks (the
    /// explorer installs its hook on it for the run).
    pub locks: Option<Arc<LockManager>>,
}

fn no_locks(bodies: Vec<Body<'static>>) -> LitmusRun {
    LitmusRun {
        bodies,
        locks: None,
    }
}

/// Message passing, correct: `data` is published by a Release store and
/// consumed past an Acquire load.
fn mp_release_acquire() -> LitmusRun {
    let cell = Arc::new((
        Tracked::new(0u64, "mp.data"),
        TrackedAtomicU64::new(0, "mp.flag"),
    ));
    let w = Arc::clone(&cell);
    let r = cell;
    no_locks(vec![
        Box::new(move || {
            w.0.set(42);
            w.1.store(1, Ordering::Release);
            Ok(())
        }),
        Box::new(move || {
            if r.1.load(Ordering::Acquire) == 1 && r.0.get() != 42 {
                return Err("mp: consumed stale data past the flag".into());
            }
            Ok(())
        }),
    ])
}

/// Message passing, broken: the flag is Relaxed in both directions, so
/// the data access pair has no happens-before edge — a race whenever the
/// reader sees the flag.
fn mp_relaxed() -> LitmusRun {
    let cell = Arc::new((
        Tracked::new(0u64, "mp.data"),
        TrackedAtomicU64::new(0, "mp.flag"),
    ));
    let w = Arc::clone(&cell);
    let r = cell;
    no_locks(vec![
        Box::new(move || {
            w.0.set(42);
            w.1.store(1, Ordering::Relaxed);
            Ok(())
        }),
        Box::new(move || {
            if r.1.load(Ordering::Relaxed) == 1 {
                let _ = r.0.get();
            }
            Ok(())
        }),
    ])
}

/// Store buffering over plain cells: both threads write one cell and
/// read the other with no synchronization at all — races both ways.
fn store_buffer() -> LitmusRun {
    let cell = Arc::new((Tracked::new(0u64, "sb.x"), Tracked::new(0u64, "sb.y")));
    let a = Arc::clone(&cell);
    let b = cell;
    no_locks(vec![
        Box::new(move || {
            a.0.set(1);
            let _ = a.1.get();
            Ok(())
        }),
        Box::new(move || {
            b.1.set(1);
            let _ = b.0.get();
            Ok(())
        }),
    ])
}

/// Store buffering over atomics: same shape, but atomic accesses never
/// race (the paradigm case for "atomics fix the race, orderings fix the
/// visibility").
fn store_buffer_atomic() -> LitmusRun {
    let cell = Arc::new((
        TrackedAtomicU64::new(0, "sb.x"),
        TrackedAtomicU64::new(0, "sb.y"),
    ));
    let a = Arc::clone(&cell);
    let b = cell;
    no_locks(vec![
        Box::new(move || {
            a.0.store(1, Ordering::Release);
            let _ = a.1.load(Ordering::Acquire);
            Ok(())
        }),
        Box::new(move || {
            b.1.store(1, Ordering::Release);
            let _ = b.0.load(Ordering::Acquire);
            Ok(())
        }),
    ])
}

struct SeqCell {
    v: VersionWord,
    a: Tracked<u64>,
    b: Tracked<u64>,
}

fn seq_cell() -> Arc<SeqCell> {
    Arc::new(SeqCell {
        v: VersionWord::new("seq.version"),
        a: Tracked::new(0, "seq.payload-a"),
        b: Tracked::new(0, "seq.payload-b"),
    })
}

/// The optimistic reader shared by both seqlock litmuses: bounded
/// retries of read-begin / speculative payload reads / validate. A
/// committed read pair must be coherent (`a == b`); running out of
/// retries is fine (the writer is finite, so it cannot actually
/// starve the reader — retries just fall off the end of the schedule).
fn seq_reader(c: Arc<SeqCell>) -> Body<'static> {
    Box::new(move || {
        for _ in 0..4 {
            let Some(v0) = c.v.read_begin() else { continue };
            let s = speculate();
            let ra = c.a.get_speculative();
            let rb = c.b.get_speculative();
            if c.v.validate(v0) {
                s.commit();
                if ra != rb {
                    return Err(format!("seqlock: torn read committed ({ra} != {rb})"));
                }
                return Ok(());
            }
            s.abort();
        }
        Ok(())
    })
}

/// Seqlock, correct: Acquire/Release version brackets. The reader's
/// validating Acquire load joins the writer's Release end, so committed
/// speculative reads are ordered after the payload writes.
fn seqlock_rw() -> LitmusRun {
    let c = seq_cell();
    let w = Arc::clone(&c);
    no_locks(vec![
        Box::new(move || {
            w.v.write_begin();
            w.a.set(7);
            w.b.set(7);
            w.v.write_end();
            Ok(())
        }),
        seq_reader(c),
    ])
}

/// Seqlock with the injected missing-Release writer exit: the version
/// advances but publishes nothing, so a reader that validates against
/// the new version commits payload reads with no happens-before edge to
/// the writer's stores — the race the detector must catch.
#[cfg(feature = "check-inject")]
fn seqlock_missing_release() -> LitmusRun {
    let c = seq_cell();
    let w = Arc::clone(&c);
    no_locks(vec![
        Box::new(move || {
            w.v.write_begin();
            w.a.set(7);
            w.b.set(7);
            w.v.write_end_missing_release();
            Ok(())
        }),
        seq_reader(c),
    ])
}

fn manager() -> Arc<LockManager> {
    Arc::new(LockManager::new(LockManagerConfig::default()))
}

/// Lock handoff, correct: both threads access `data` under the same
/// ξ-lock; the grant edge (release clock joined at `at_granted`) orders
/// the pair.
fn lock_handoff() -> LitmusRun {
    let data = Arc::new(Tracked::new(0u64, "handoff.data"));
    let m = manager();
    let id = LockId::Page(PageId(1));
    let (d0, m0) = (Arc::clone(&data), Arc::clone(&m));
    let (d1, m1) = (data, Arc::clone(&m));
    LitmusRun {
        bodies: vec![
            Box::new(move || {
                let o = m0.new_owner();
                m0.lock(o, id, LockMode::Xi);
                d0.set(1);
                m0.unlock(o, id, LockMode::Xi);
                Ok(())
            }),
            Box::new(move || {
                let o = m1.new_owner();
                m1.lock(o, id, LockMode::Xi);
                let _ = d1.get();
                m1.unlock(o, id, LockMode::Xi);
                Ok(())
            }),
        ],
        locks: Some(m),
    }
}

/// Locked-but-wrong: each thread diligently takes a ξ-lock — on a
/// *different* resource. Mutual exclusion between them is zero and the
/// `data` pair races; the classic "a lock was held, just not the same
/// one" bug.
fn handoff_unlocked() -> LitmusRun {
    let data = Arc::new(Tracked::new(0u64, "handoff.data"));
    let m = manager();
    let (d0, m0) = (Arc::clone(&data), Arc::clone(&m));
    let (d1, m1) = (data, Arc::clone(&m));
    LitmusRun {
        bodies: vec![
            Box::new(move || {
                let o = m0.new_owner();
                m0.lock(o, LockId::Page(PageId(1)), LockMode::Xi);
                d0.set(1);
                m0.unlock(o, LockId::Page(PageId(1)), LockMode::Xi);
                Ok(())
            }),
            Box::new(move || {
                let o = m1.new_owner();
                m1.lock(o, LockId::Page(PageId(2)), LockMode::Xi);
                let _ = d1.get();
                m1.unlock(o, LockId::Page(PageId(2)), LockMode::Xi);
                Ok(())
            }),
        ],
        locks: Some(m),
    }
}

/// The full corpus (the `check-inject`-only entry appears only when that
/// feature is on).
pub fn litmus_corpus() -> Vec<Litmus> {
    #[cfg_attr(not(feature = "check-inject"), allow(unused_mut))]
    let mut v = vec![
        Litmus {
            name: "mp-release-acquire",
            racy: false,
            build: mp_release_acquire,
        },
        Litmus {
            name: "mp-relaxed",
            racy: true,
            build: mp_relaxed,
        },
        Litmus {
            name: "store-buffer",
            racy: true,
            build: store_buffer,
        },
        Litmus {
            name: "store-buffer-atomic",
            racy: false,
            build: store_buffer_atomic,
        },
        Litmus {
            name: "seqlock-rw",
            racy: false,
            build: seqlock_rw,
        },
        Litmus {
            name: "lock-handoff",
            racy: false,
            build: lock_handoff,
        },
        Litmus {
            name: "handoff-unlocked",
            racy: true,
            build: handoff_unlocked,
        },
    ];
    #[cfg(feature = "check-inject")]
    v.push(Litmus {
        name: "seqlock-missing-release",
        racy: true,
        build: seqlock_missing_release,
    });
    v
}

/// Look a litmus up by corpus name.
pub fn litmus_by_name(name: &str) -> Option<Litmus> {
    litmus_corpus().into_iter().find(|l| l.name == name)
}

/// Run one litmus execution under `prefix`, race-checked with
/// access-level yields. Returns the outcome plus the first race (or
/// execution failure), if any.
fn run_litmus_once(
    l: &Litmus,
    prefix: &[usize],
    ccfg: &ControllerConfig,
) -> Result<(RunOutcome, Option<String>), String> {
    let run = (l.build)();
    let n = run.bodies.len();
    let sched = Scheduler::new(n);
    let rr = RaceRun::begin(&sched, n, true);
    if let Some(m) = &run.locks {
        m.set_wait_hook(Some(rr.hook()));
    }
    let out = sched.run(run.bodies, prefix, ccfg);
    if let Some(m) = &run.locks {
        m.set_wait_hook(None);
    }
    let races = rr.finish();
    let detail = out
        .failure
        .clone()
        .or_else(|| races.first().map(|r| r.to_string()));
    Ok((out, detail))
}

/// The result of exploring one litmus.
#[derive(Debug)]
pub struct LitmusReport {
    /// Corpus name.
    pub name: &'static str,
    /// Expected verdict.
    pub racy: bool,
    /// Schedules explored before the verdict.
    pub schedules: usize,
    /// First race found (minimized), if any. The verdict *matches* when
    /// `violation.is_some() == racy`.
    pub violation: Option<Violation>,
}

impl LitmusReport {
    /// Did the detector's verdict match the program's known one?
    pub fn verdict_matches(&self) -> bool {
        self.violation.is_some() == self.racy
    }
}

/// Explore every schedule of litmus `l` up to the bound, race-checking
/// each; the first race found is minimized.
pub fn explore_litmus(l: &Litmus, cfg: &ExploreConfig) -> Result<LitmusReport, String> {
    let ccfg = ControllerConfig {
        preemption_bound: cfg.preemption_bound,
        dpor: cfg.dpor,
    };
    let name = format!("litmus:{}", l.name);
    let dfs = dfs_explore(|prefix| run_litmus_once(l, prefix, &ccfg), cfg, &name)?;
    let violation = match dfs.violation {
        Some((choices, detail)) => {
            let (schedule, detail) = minimize_with(
                |s| {
                    let (out, v) = run_litmus_once(l, s, &ccfg)?;
                    Ok(if out.diverged { None } else { v })
                },
                &choices,
                detail,
            )?;
            Some(Violation {
                workload: name.clone(),
                preemption_bound: cfg.preemption_bound,
                schedule,
                detail,
                race: true,
            })
        }
        None => None,
    };
    Ok(LitmusReport {
        name: l.name,
        racy: l.racy,
        schedules: dfs.schedules,
        violation,
    })
}

/// Replay a litmus fixture schedule: the violation it reproduces, or
/// `None` for a clean run. Used by [`crate::replay`] for
/// `litmus:`-prefixed fixtures.
pub fn replay_litmus(
    name: &str,
    schedule: &[usize],
    preemption_bound: usize,
) -> Result<Option<String>, String> {
    let l = litmus_by_name(name).ok_or_else(|| {
        format!(
            "fixture names unknown litmus {name:?} (is it gated behind a feature this build lacks?)"
        )
    })?;
    let ccfg = ControllerConfig {
        preemption_bound,
        dpor: false,
    };
    let (out, violation) = run_litmus_once(&l, schedule, &ccfg)?;
    if out.diverged {
        return Err(format!(
            "fixture schedule for litmus {name} diverged; re-minimize the fixture"
        ));
    }
    Ok(violation)
}
