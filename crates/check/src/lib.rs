//! Verification subsystem for the concurrent extendible hash file.
//!
//! Three pillars, all offline (no solver, no external service):
//!
//! 1. **Deterministic schedule explorer** ([`explore`]): a virtual-thread
//!    scheduler plugs into [`ceh_locks::WaitHook`] and serializes a small
//!    concurrent workload so that exactly one thread runs between lock-
//!    manager wait points. A DFS over the scheduling decisions then runs
//!    the workload under *every* interleaving up to a preemption bound,
//!    checking structural invariants and linearizability after each one.
//! 2. **Linearizability checker** ([`linearize`]): a Wing–Gong search
//!    with per-key partitioning over operation histories recorded through
//!    [`ceh_obs::HistoryLog`], validated against the paper's sequential
//!    semantics ([`ceh_sequential::SequentialHashFile`]).
//! 3. **Lock-discipline lint** ([`lint`], shipped as the `ceh-lint`
//!    binary): a source-level scan for violations of the paper's locking
//!    rules — top-down lock order, ξ-locks held across network sends,
//!    unpaired acquire/release, and unjustified `Ordering::Relaxed`.
//!
//! Failing schedules minimize to a replayable fixture
//! ([`schedule::ScheduleFixture`]) checked into
//! `tests/fixtures/schedules/`.
//!
//! A fourth pillar rides on the durability layer: the **recovery
//! fuzzer** ([`crash`]) runs a seeded workload against a durable file,
//! cuts power at *every* reachable durability point in turn, recovers,
//! and holds the result to a durability oracle (acked ops survive;
//! in-flight multi-page ops are atomic). Its failures minimize to
//! [`crash::CrashFixture`]s in `tests/fixtures/crashes/`.

#![warn(missing_docs)]

pub mod crash;
pub mod explore;
pub mod linearize;
pub mod lint;
pub mod schedule;
pub mod vthread;
pub mod workload;

pub use crash::{
    dist_crash_round, replay_crash, run_sweep, CrashConfig, CrashFixture, CrashSweepReport,
    PointOutcome,
};
pub use explore::{explore, replay, ExploreConfig, ExploreReport, Violation};
pub use linearize::{check_linearizable, LinReport, LinViolation, Strictness};
pub use lint::{lint_paths, lint_source, Finding};
pub use schedule::ScheduleFixture;
pub use workload::{Op, Solution, Workload};
