//! Verification subsystem for the concurrent extendible hash file.
//!
//! Three pillars, all offline (no solver, no external service):
//!
//! 1. **Deterministic schedule explorer** ([`explore`]): a virtual-thread
//!    scheduler plugs into [`ceh_locks::WaitHook`] and serializes a small
//!    concurrent workload so that exactly one thread runs between lock-
//!    manager wait points. A DFS over the scheduling decisions then runs
//!    the workload under *every* interleaving up to a preemption bound,
//!    checking structural invariants and linearizability after each one.
//! 2. **Linearizability checker** ([`linearize`]): a Wing–Gong search
//!    with per-key partitioning over operation histories recorded through
//!    [`ceh_obs::HistoryLog`], validated against the paper's sequential
//!    semantics ([`ceh_sequential::SequentialHashFile`]).
//! 3. **Lock-discipline lint** ([`lint`], shipped as the `ceh-lint`
//!    binary): a source-level scan for violations of the paper's locking
//!    rules — top-down lock order, ξ-locks held across network sends,
//!    unpaired acquire/release, unjustified `Ordering::Relaxed`, atomics-
//!    ordering discipline, and unsafe-block auditing.
//!
//! A fifth pillar (feature `check-race`): the **happens-before race
//! detector** ([`race`]) — a FastTrack-style vector-clock analysis fed
//! by `ceh-locks`' shadow-access seam, run over every explored schedule
//! (`ExploreConfig::race`) and proven against a [`litmus`] corpus of
//! known racy/race-free programs, including the seqlock `VersionWord`
//! pair that gates the optimistic read path.
//!
//! Failing schedules minimize to a replayable fixture
//! ([`schedule::ScheduleFixture`]) checked into
//! `tests/fixtures/schedules/`.
//!
//! A fourth pillar rides on the durability layer: the **recovery
//! fuzzer** ([`crash`]) runs a seeded workload against a durable file,
//! cuts power at *every* reachable durability point in turn, recovers,
//! and holds the result to a durability oracle (acked ops survive;
//! in-flight multi-page ops are atomic). Its failures minimize to
//! [`crash::CrashFixture`]s in `tests/fixtures/crashes/`.

#![warn(missing_docs)]

pub mod crash;
pub mod explore;
pub mod linearize;
pub mod lint;
#[cfg(feature = "check-race")]
pub mod litmus;
#[cfg(feature = "check-race")]
pub mod race;
pub mod schedule;
pub mod vthread;
pub mod workload;

pub use crash::{
    dist_crash_round, replay_crash, run_sweep, CrashConfig, CrashFixture, CrashSweepReport,
    PointOutcome,
};
pub use explore::{explore, replay, ExploreConfig, ExploreReport, Violation};
pub use linearize::{check_linearizable, LinReport, LinViolation, Strictness};
pub use lint::{lint_paths, lint_source, Finding};
#[cfg(feature = "check-race")]
pub use litmus::{explore_litmus, litmus_by_name, litmus_corpus, Litmus, LitmusReport};
#[cfg(feature = "check-race")]
pub use race::{Race, RaceDetector, RaceHook, RaceRun};
pub use schedule::ScheduleFixture;
pub use workload::{Op, Solution, Workload};
