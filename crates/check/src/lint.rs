//! `ceh-lint`: a source-level lock-discipline lint.
//!
//! A deliberately simple, zero-dependency line scanner (no rustc
//! plugin, no syn) that enforces the paper's locking rules as *textual*
//! discipline across the workspace:
//!
//! * **`lock-order`** — the protocols acquire top-down: directory before
//!   bucket before next-chain (§2.3). Acquiring the directory lock while
//!   a page lock is held inverts that order and risks deadlock; the only
//!   sanctioned exception is a ρ→α *conversion* on a directory lock the
//!   owner already holds (§2.4/§2.5), which must carry an allow comment
//!   saying so.
//! * **`xi-across-send`** — holding a ξ-lock across a network send
//!   couples the exclusive section to message latency (and to the fault
//!   plane's delays); Figure 14's forwarding is designed to avoid it.
//! * **`unpaired-lock`** — a function that acquires manager locks but
//!   contains no release at all (releases in a callee, as in
//!   `walk_to_owner`'s caller contract, must be annotated).
//! * **`relaxed-ordering`** — `Ordering::Relaxed` is fine for counters
//!   (`fetch_add`/`fetch_sub`/`fetch_max`/`fetch_min` are exempt) but
//!   anything load/store with `Relaxed` needs a comment justifying why
//!   the lock protocol already orders it.
//! * **`atomics-ordering`** — orderings outside the Acquire/Release
//!   discipline the race detector models: `SeqCst` (the protocol proofs
//!   argue pairwise edges, never a global order — if §2's reasoning
//!   doesn't need it, the code shouldn't pay for it), and `Relaxed` on a
//!   synchronizing read-modify-write (`compare_exchange`, `swap`,
//!   `fetch_update`), which publishes nothing.
//! * **`unsafe-block`** — every `unsafe` block, fn, or impl must carry
//!   an allow comment stating the invariant that makes it sound.
//! * **`allow-reason`** — an allow escape with no reason after the
//!   closing paren is itself a finding: the waiver *is* the
//!   justification, so an empty one defeats the audit.
//!
//! Escapes: append `// ceh-lint: allow(<rule>) — reason` on the
//! offending line or the line above, or `// ceh-lint: allow-file(<rule>)
//! — reason` anywhere in the file for a per-file waiver; the reason text
//! is mandatory (see `allow-reason`). Blanket scope cuts (documented,
//! not silent): `crates/check` itself (its sources embed rule patterns
//! and deliberately pathological schedules), `crates/locks` for the lock
//! rules only (it *implements* the discipline the rules describe — its
//! atomics and allow comments are still audited), and test code
//! (`tests/`, `benches/`, everything after a `#[cfg(test)]` line), which
//! intentionally holds and leaks locks.

use std::fmt;
use std::path::{Path, PathBuf};

/// Rule identifiers, as used in allow comments.
pub const RULES: [&str; 7] = [
    "lock-order",
    "xi-across-send",
    "unpaired-lock",
    "relaxed-ordering",
    "atomics-ordering",
    "unsafe-block",
    "allow-reason",
];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// File the finding is in.
    pub path: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Which rule fired (one of [`RULES`]).
    pub rule: &'static str,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Which rules apply to a file, from its path.
fn rules_for(path: &str) -> &'static [&'static str] {
    let p = path.replace('\\', "/");
    if p.contains("/target/")
        || p.contains("crates/check/")
        || p.contains("/tests/")
        || p.contains("/benches/")
        || p.contains("/examples/")
    {
        return &[];
    }
    if p.contains("crates/locks/") {
        // The lock manager *implements* the discipline the lock rules
        // describe, but its atomics and escapes are still audited.
        return &[
            "relaxed-ordering",
            "atomics-ordering",
            "unsafe-block",
            "allow-reason",
        ];
    }
    &RULES
}

/// Lint one file's source text. `path` is used for scope gating and in
/// findings; the file is not read from disk.
pub fn lint_source(path: &Path, text: &str) -> Vec<Finding> {
    let enabled = rules_for(&path.to_string_lossy());
    if enabled.is_empty() {
        return Vec::new();
    }
    let lines: Vec<&str> = text.lines().collect();

    let file_allows = |rule: &str| {
        lines
            .iter()
            .any(|l| l.contains("ceh-lint: allow-file(") && l.contains(rule))
    };
    let line_allows = |rule: &str, i: usize| {
        let hit = |l: &str| l.contains("ceh-lint: allow(") && l.contains(rule);
        hit(lines[i]) || (i > 0 && hit(lines[i - 1]))
    };
    let on = |rule: &str| enabled.contains(&rule) && !file_allows(rule);

    let mut findings = Vec::new();
    let mut report = |rule: &'static str, i: usize, message: String| {
        if on(rule) && !line_allows(rule, i) {
            findings.push(Finding {
                path: path.to_path_buf(),
                line: i + 1,
                rule,
                message,
            });
        }
    };

    // Per-function scan state (reset at each `fn` line).
    let mut pages_held = 0usize; // page-lock acquires minus releases seen so far
    let mut xi_held = 0usize; // ξ acquires minus ξ releases seen so far
    let mut fn_acquires = 0usize;
    let mut fn_releases = 0usize;
    let mut fn_start: Option<usize> = None;
    let mut fn_name = String::new();

    let close_fn = |start: Option<usize>,
                    name: &str,
                    acquires: usize,
                    releases: usize,
                    report: &mut dyn FnMut(&'static str, usize, String)| {
        if let Some(s) = start {
            if acquires > 0 && releases == 0 {
                report(
                    "unpaired-lock",
                    s,
                    format!(
                        "`{name}` acquires {acquires} manager lock(s) but never releases; \
                             if a callee or caller releases them, annotate why"
                    ),
                );
            }
        }
    };

    for (i, raw) in lines.iter().enumerate() {
        let line = strip_comment(raw);
        if raw.trim_start().starts_with("#[cfg(test)]") {
            // Repo convention: the test module is the tail of the file.
            break;
        }
        if let Some(name) = fn_decl(line) {
            close_fn(fn_start, &fn_name, fn_acquires, fn_releases, &mut report);
            fn_start = Some(i);
            fn_name = name.to_string();
            pages_held = 0;
            xi_held = 0;
            fn_acquires = 0;
            fn_releases = 0;
        }

        let acq = acquire_on(line);
        if let Some(target) = acq {
            fn_acquires += 1;
            match target {
                Target::Directory => {
                    if pages_held > 0 {
                        report(
                            "lock-order",
                            i,
                            format!(
                                "`{fn_name}` acquires the directory lock while holding {pages_held} \
                                 page lock(s): the protocols lock top-down (directory before bucket); \
                                 if this is a ρ→α conversion on an already-held directory lock, say so"
                            ),
                        );
                    }
                }
                Target::Page => pages_held += 1,
            }
            if line.contains("xi_lock(") || line.contains("LockMode::Xi") {
                xi_held += 1;
            }
        }
        if release_on(line) {
            fn_releases += 1;
            pages_held = pages_held.saturating_sub(1);
            if line.contains("un_xi_lock(") || line.contains("LockMode::Xi") {
                xi_held = xi_held.saturating_sub(1);
            }
        }
        if line.contains("release_all(") {
            fn_releases += 1;
            pages_held = 0;
            xi_held = 0;
        }
        if line.contains("LockGuard") {
            // Guards release on drop; pairing is structural.
            fn_releases += 1;
        }

        if (line.contains("net.send(") || line.contains("net().send(")) && xi_held > 0 {
            report(
                "xi-across-send",
                i,
                format!(
                    "`{fn_name}` sends on the network while a ξ-lock appears to be held: \
                     exclusive sections must not span message latency"
                ),
            );
        }

        let counter_rmw = ["fetch_add", "fetch_sub", "fetch_max", "fetch_min"]
            .iter()
            .any(|p| line.contains(p));
        if line.contains("Ordering::Relaxed") && !counter_rmw {
            report(
                "relaxed-ordering",
                i,
                "relaxed load/store needs a justification (why does the lock protocol \
                 already order this access?)"
                    .to_string(),
            );
        }

        if line.contains("Ordering::SeqCst") {
            report(
                "atomics-ordering",
                i,
                "SeqCst buys a global order the protocol proofs never argue from; \
                 use Acquire/Release (or AcqRel) for the edge you need, or justify \
                 why total order matters here"
                    .to_string(),
            );
        }
        let sync_rmw = ["compare_exchange", "fetch_update", ".swap("]
            .iter()
            .any(|p| line.contains(p));
        if line.contains("Ordering::Relaxed") && sync_rmw {
            report(
                "atomics-ordering",
                i,
                "a synchronizing read-modify-write with Relaxed publishes nothing; \
                 the winner's prior writes are invisible to whoever observes the swap"
                    .to_string(),
            );
        }

        if ["unsafe {", "unsafe fn ", "unsafe impl "]
            .iter()
            .any(|p| line.contains(p))
        {
            report(
                "unsafe-block",
                i,
                "`unsafe` needs an allow comment stating the invariant that makes it \
                 sound (and why safe code can't express it)"
                    .to_string(),
            );
        }

        // Audit the escapes themselves: an allow with no reason text
        // after the closing paren defeats the point of the waiver.
        // Matched on the raw line (allow markers live in comments).
        if let Some(j) = raw.find("ceh-lint: allow") {
            let rest = &raw[j..];
            let reasoned = rest.find(')').is_some_and(|k| {
                rest[k + 1..]
                    .chars()
                    .filter(|c| c.is_alphanumeric())
                    .count()
                    >= 3
            });
            if !reasoned {
                report(
                    "allow-reason",
                    i,
                    "allow escapes must say why: `// ceh-lint: allow(<rule>) — reason`".to_string(),
                );
            }
        }
    }
    close_fn(fn_start, &fn_name, fn_acquires, fn_releases, &mut report);
    findings
}

/// Lint every `.rs` file under `paths` (files or directories). `Err` is
/// an I/O failure, not a finding.
pub fn lint_paths(paths: &[PathBuf]) -> Result<Vec<Finding>, String> {
    let mut files = Vec::new();
    for p in paths {
        collect_rs(p, &mut files)?;
    }
    files.sort();
    let mut findings = Vec::new();
    for f in files {
        let text = std::fs::read_to_string(&f).map_err(|e| format!("read {}: {e}", f.display()))?;
        findings.extend(lint_source(&f, &text));
    }
    Ok(findings)
}

fn collect_rs(p: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let meta = std::fs::metadata(p).map_err(|e| format!("stat {}: {e}", p.display()))?;
    if meta.is_file() {
        if p.extension().is_some_and(|e| e == "rs") {
            out.push(p.to_path_buf());
        }
        return Ok(());
    }
    if p.file_name().is_some_and(|n| n == "target") {
        return Ok(());
    }
    let rd = std::fs::read_dir(p).map_err(|e| format!("read dir {}: {e}", p.display()))?;
    for entry in rd {
        let entry = entry.map_err(|e| format!("read dir {}: {e}", p.display()))?;
        collect_rs(&entry.path(), out)?;
    }
    Ok(())
}

/// Everything before a `//` comment (naive about strings; good enough
/// for discipline scanning, and allow comments are matched on the raw
/// line anyway).
fn strip_comment(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

/// If the line declares a function, its name.
fn fn_decl(line: &str) -> Option<&str> {
    let t = line.trim_start();
    let rest = [
        "pub ",
        "pub(crate) ",
        "pub(super) ",
        "async ",
        "unsafe ",
        "const ",
    ]
    .iter()
    .fold(t, |acc, p| acc.strip_prefix(p).unwrap_or(acc));
    let rest = rest.strip_prefix("fn ")?;
    let end = rest.find(['(', '<'])?;
    Some(rest[..end].trim())
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Target {
    Directory,
    Page,
}

/// Does this line acquire a manager lock, and on what? Manager calls
/// always pass an owner (`.lock(owner, …)`, `xi_lock(owner, …)`), which
/// keeps mutex `.lock()`s out of scope.
fn acquire_on(line: &str) -> Option<Target> {
    let shorthand = ["xi_lock(", "alpha_lock(", "rho_lock("]
        .iter()
        .any(|p| match line.find(p) {
            Some(i) => !line[..i].ends_with("un_"),
            None => false,
        });
    let generic = line.contains(".lock(owner") || line.contains(".try_lock(owner");
    if !shorthand && !generic {
        return None;
    }
    if line.contains("Directory") {
        Some(Target::Directory)
    } else {
        Some(Target::Page)
    }
}

fn release_on(line: &str) -> bool {
    ["un_xi_lock(", "un_alpha_lock(", "un_rho_lock("]
        .iter()
        .any(|p| line.contains(p))
        || line.contains(".unlock(")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(path: &str, src: &str) -> Vec<Finding> {
        lint_source(Path::new(path), src)
    }

    #[test]
    fn flags_directory_after_page() {
        let src = "fn bad(core: &FileCore, owner: OwnerId) {\n\
                   core.xi_lock(owner, LockId::Page(p));\n\
                   core.alpha_lock(owner, LockId::Directory);\n\
                   core.un_xi_lock(owner, LockId::Page(p));\n\
                   }\n";
        let f = lint("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "lock-order");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn allow_comment_silences_one_line() {
        let src = "fn ok(core: &FileCore, owner: OwnerId) {\n\
                   core.xi_lock(owner, LockId::Page(p));\n\
                   // ceh-lint: allow(lock-order) — ρ→α conversion, directory already ρ-held\n\
                   core.alpha_lock(owner, LockId::Directory);\n\
                   core.un_xi_lock(owner, LockId::Page(p));\n\
                   }\n";
        assert!(lint("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn flags_send_under_xi() {
        let src = "fn fwd(site: &Site, owner: OwnerId) {\n\
                   site.locks.lock(owner, LockId::Page(p), LockMode::Xi);\n\
                   site.net.send(port, msg);\n\
                   site.locks.unlock(owner, LockId::Page(p), LockMode::Xi);\n\
                   }\n";
        let f = lint("crates/dist/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "xi-across-send");
        // After the release the same send is fine.
        let src_ok = "fn fwd(site: &Site, owner: OwnerId) {\n\
                   site.locks.lock(owner, LockId::Page(p), LockMode::Xi);\n\
                   site.locks.unlock(owner, LockId::Page(p), LockMode::Xi);\n\
                   site.net.send(port, msg);\n\
                   }\n";
        assert!(lint("crates/dist/src/x.rs", src_ok).is_empty());
    }

    #[test]
    fn flags_unpaired_acquire() {
        let src = "fn leaky(core: &FileCore, owner: OwnerId) {\n\
                   core.rho_lock(owner, LockId::Directory);\n\
                   }\n";
        let f = lint("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "unpaired-lock");
    }

    #[test]
    fn flags_bare_relaxed_but_not_counters() {
        let src = "fn f(a: &AtomicU64) {\n\
                   a.fetch_add(1, Ordering::Relaxed);\n\
                   a.fetch_max(7, Ordering::Relaxed);\n\
                   let _ = a.load(Ordering::Relaxed);\n\
                   }\n";
        let f = lint("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "relaxed-ordering");
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn file_level_waiver_and_scope_cuts() {
        let src =
            "// ceh-lint: allow-file(relaxed-ordering) — entries ordered by the α/ξ protocol\n\
                   fn f(a: &AtomicU64) { let _ = a.load(Ordering::Relaxed); }\n";
        assert!(lint("crates/core/src/x.rs", src).is_empty());
        let bare = "fn f(a: &AtomicU64) { let _ = a.load(Ordering::Relaxed); }\n";
        assert!(
            !lint("crates/obs/src/x.rs", bare).is_empty(),
            "obs is covered (the metrics plane lost its blanket waiver)"
        );
        assert!(
            !lint("crates/locks/src/x.rs", bare).is_empty(),
            "locks is covered for the atomics rules"
        );
        assert!(
            lint("crates/core/tests/x.rs", bare).is_empty(),
            "tests are exempt"
        );
    }

    #[test]
    fn flags_seqcst_and_relaxed_sync_rmw() {
        let src = "fn f(a: &AtomicU64) {\n\
                   a.store(1, Ordering::SeqCst);\n\
                   let _ = a.swap(2, Ordering::Relaxed);\n\
                   }\n";
        let f = lint("crates/net/src/x.rs", src);
        let rules: Vec<_> = f.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&"atomics-ordering"), "{f:?}");
        assert_eq!(
            f.iter().filter(|f| f.rule == "atomics-ordering").count(),
            2,
            "{f:?}"
        );
        // AcqRel on the same RMW is the sanctioned shape.
        let ok = "fn f(a: &AtomicU64) { let _ = a.swap(2, Ordering::AcqRel); }\n";
        assert!(lint("crates/net/src/x.rs", ok).is_empty());
    }

    #[test]
    fn flags_unannotated_unsafe() {
        let src = "fn f(p: *const u8) -> u8 {\n\
                   unsafe { *p }\n\
                   }\n";
        let f = lint("crates/btree/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "unsafe-block");
        let ok = "fn f(p: *const u8) -> u8 {\n\
                   // ceh-lint: allow(unsafe-block) — p is non-null by the caller contract\n\
                   unsafe { *p }\n\
                   }\n";
        assert!(lint("crates/btree/src/x.rs", ok).is_empty());
    }

    #[test]
    fn flags_reasonless_allow() {
        let bad = "fn f(a: &AtomicU64) {\n\
                   // ceh-lint: allow(relaxed-ordering)\n\
                   let _ = a.load(Ordering::Relaxed);\n\
                   }\n";
        let f = lint("crates/core/src/x.rs", bad);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "allow-reason");
        assert_eq!(f[0].line, 2);
        // The reasonless allow still suppresses its target rule — the
        // audit finding replaces it, it doesn't stack.
        assert!(f.iter().all(|f| f.rule != "relaxed-ordering"), "{f:?}");
        let good = "fn f(a: &AtomicU64) {\n\
                   // ceh-lint: allow(relaxed-ordering) — ordered by the ξ handoff\n\
                   let _ = a.load(Ordering::Relaxed);\n\
                   }\n";
        assert!(lint("crates/core/src/x.rs", good).is_empty());
    }

    #[test]
    fn test_module_tail_is_skipped() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n\
                   fn leaky(core: &FileCore, owner: OwnerId) { core.rho_lock(owner, LockId::Directory); }\n\
                   }\n";
        assert!(lint("crates/core/src/x.rs", src).is_empty());
    }
}
