//! Happens-before race detection over serialized executions.
//!
//! A FastTrack-style vector-clock detector fed by two seams:
//!
//! * **shadow accesses** ([`ceh_locks::shadow`]): every `Tracked` /
//!   `TrackedAtomic*` access and every page read/write arrives at
//!   [`RaceDetector::on_access`] (the detector is the process-global
//!   [`ShadowSink`] while a race-checked run is in flight);
//! * **lock edges** ([`RaceHook`]): `at_granted` joins the lock's release
//!   clock into the acquiring thread, `at_release` merges the releasing
//!   thread's clock into the lock and advances the thread's epoch.
//!
//! The happens-before model:
//!
//! * plain reads/writes (kind `Read`/`Write`) are race-checked: a pair on
//!   different threads, at least one a write, with neither's epoch
//!   contained in the other's clock, is a **race**;
//! * atomic accesses never race; they move clocks. A `Release` store (or
//!   RMW) accumulates the thread's clock into the location's *sync
//!   clock*; an `Acquire` load (or RMW) joins the sync clock into the
//!   thread. A `Relaxed` store publishes **nothing** — the sync clock
//!   keeps only what earlier releases put there, which is exactly how a
//!   missing `Release` is caught;
//! * speculative reads (seqlock scopes) are buffered per thread and
//!   checked only at [`RaceDetector::on_spec_commit`] — the validating
//!   `Acquire` load has joined the writer's clock by then, so a correct
//!   seqlock commits clean. Aborted scopes are discarded unchecked.
//!
//! Because the schedule explorer serializes threads, the detector sees a
//! total order of accesses and needs no synchronization beyond one mutex
//! around its state. The sink is process-global, so race-checked runs are
//! serialized by [`run_lock`] — concurrent `cargo test` threads queue.
//!
//! Thread identity: slot 0 is "any unregistered thread" (the controller,
//! setup code); virtual thread *i* is slot *i + 1*. Races are reported
//! with both access sites, both thread ids, and (after minimization) a
//! shortest reproducing schedule prefix.

use std::collections::HashMap;
use std::panic::Location;
use std::sync::Arc;

use ceh_locks::shadow::{set_shadow_sink, AccessKind, ShadowAccess, ShadowSink};
use ceh_locks::{LockId, LockMode, OwnerId, WaitHook};
use parking_lot::Mutex;

use crate::vthread::{current_vthread, ExplorerHook, Pending, Scheduler};

/// A vector clock over the run's thread slots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VClock(Vec<u32>);

impl VClock {
    /// The zero clock for `n` slots.
    pub fn new(n: usize) -> Self {
        VClock(vec![0; n])
    }

    /// Component for slot `t`.
    #[inline]
    pub fn get(&self, t: usize) -> u32 {
        self.0[t]
    }

    /// Pointwise maximum with `other`.
    pub fn join(&mut self, other: &VClock) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(*b);
        }
    }

    /// Advance slot `t`'s epoch.
    pub fn inc(&mut self, t: usize) {
        self.0[t] += 1;
    }
}

/// One access in a reported race.
#[derive(Debug, Clone)]
pub struct RaceSite {
    /// What the access was ("plain write", "plain read", "speculative read").
    pub what: &'static str,
    /// Thread slot (0 = unregistered/setup; n = virtual thread n-1).
    pub slot: usize,
    /// Source location.
    pub site: &'static Location<'static>,
}

impl RaceSite {
    fn thread_name(&self) -> String {
        if self.slot == 0 {
            "setup".to_string()
        } else {
            format!("t{}", self.slot - 1)
        }
    }
}

impl std::fmt::Display for RaceSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} by {} at {}:{}",
            self.what,
            self.thread_name(),
            self.site.file(),
            self.site.line()
        )
    }
}

/// A detected data race: two unordered accesses, at least one a write.
#[derive(Debug, Clone)]
pub struct Race {
    /// Location label (`"dir.entry"`, `"seqlock.payload"`, …).
    pub label: &'static str,
    /// The earlier access (in the serialized order).
    pub first: RaceSite,
    /// The later access.
    pub second: RaceSite,
}

impl std::fmt::Display for Race {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "data race on `{}`: {} vs {}",
            self.label, self.first, self.second
        )
    }
}

/// Per-location shadow state.
struct LocState {
    label: &'static str,
    /// Release clock: what `Release` writers published here.
    sync: VClock,
    /// Last plain write: (slot, epoch, site).
    write: Option<(usize, u32, &'static Location<'static>)>,
    /// Last plain read per slot: (epoch, site).
    reads: Vec<Option<(u32, &'static Location<'static>)>>,
}

struct DetState {
    /// Per-slot thread clocks.
    clocks: Vec<VClock>,
    /// Per-lock release clocks.
    locks: HashMap<LockId, VClock>,
    /// Per-location shadow state.
    locs: HashMap<ceh_locks::shadow::ShadowLoc, LocState>,
    /// Per-slot buffered speculative reads.
    spec: Vec<Vec<(ceh_locks::shadow::ShadowLoc, &'static Location<'static>)>>,
    races: Vec<Race>,
}

/// The vector-clock happens-before detector for one serialized run.
pub struct RaceDetector {
    n: usize,
    /// Insert a schedule yield point before every shadowed access. On for
    /// litmus programs (their interleavings *are* the accesses); off for
    /// protocol workloads, where happens-before violations are visible in
    /// any serialization and access-level yields would explode the
    /// schedule space.
    yield_on_access: bool,
    sched: Option<Arc<Scheduler>>,
    state: Mutex<DetState>,
}

fn slot() -> usize {
    current_vthread().map_or(0, |i| i + 1)
}

impl RaceDetector {
    /// A detector for a run with `n_workers` virtual threads.
    pub fn new(n_workers: usize, yield_on_access: bool, sched: Option<Arc<Scheduler>>) -> Self {
        let n = n_workers + 1; // slot 0 = unregistered threads
        let mut clocks = Vec::with_capacity(n);
        for t in 0..n {
            let mut c = VClock::new(n);
            c.inc(t); // distinguish "never synchronized" (0) from epoch 1
            clocks.push(c);
        }
        RaceDetector {
            n,
            yield_on_access,
            sched,
            state: Mutex::new(DetState {
                clocks,
                locks: HashMap::new(),
                locs: HashMap::new(),
                spec: vec![Vec::new(); n],
                races: Vec::new(),
            }),
        }
    }

    /// Drain the races found so far (deduplicated by site pair).
    pub fn take_races(&self) -> Vec<Race> {
        std::mem::take(&mut self.state.lock().races)
    }

    /// Lock-grant edge: the acquiring thread joins the lock's release
    /// clock (every prior releaser happens-before this grant).
    pub fn on_granted(&self, id: LockId) {
        let t = slot();
        let mut st = self.state.lock();
        if let Some(lc) = st.locks.get(&id) {
            let lc = lc.clone();
            st.clocks[t].join(&lc);
        }
    }

    /// Lock-release edge: the lock accumulates the releasing thread's
    /// clock (join, not assign — sound for shared ρ holders), and the
    /// thread advances its epoch so pre- and post-release accesses are
    /// distinguishable.
    pub fn on_release(&self, id: LockId) {
        let t = slot();
        let mut st = self.state.lock();
        let ct = st.clocks[t].clone();
        st.locks
            .entry(id)
            .or_insert_with(|| VClock::new(self.n))
            .join(&ct);
        st.clocks[t].inc(t);
    }

    fn push_race(st: &mut DetState, race: Race) {
        let key = |r: &Race| {
            (
                r.first.site as *const _ as usize,
                r.second.site as *const _ as usize,
            )
        };
        let k = key(&race);
        if !st.races.iter().any(|r| key(r) == k) {
            st.races.push(race);
        }
    }

    /// Race-check a plain read against the last plain write.
    fn check_read(
        st: &mut DetState,
        loc: ceh_locks::shadow::ShadowLoc,
        t: usize,
        what: &'static str,
        site: &'static Location<'static>,
    ) {
        let Some(ls) = st.locs.get(&loc) else { return };
        if let Some((wt, wc, wsite)) = ls.write {
            if wt != t && wc > st.clocks[t].get(wt) {
                let label = ls.label;
                Self::push_race(
                    st,
                    Race {
                        label,
                        first: RaceSite {
                            what: "plain write",
                            slot: wt,
                            site: wsite,
                        },
                        second: RaceSite {
                            what,
                            slot: t,
                            site,
                        },
                    },
                );
            }
        }
    }

    fn loc_state<'a>(
        st: &'a mut DetState,
        loc: ceh_locks::shadow::ShadowLoc,
        label: &'static str,
        n: usize,
    ) -> &'a mut LocState {
        st.locs.entry(loc).or_insert_with(|| LocState {
            label,
            sync: VClock::new(n),
            write: None,
            reads: vec![None; n],
        })
    }
}

impl ShadowSink for RaceDetector {
    fn on_access(&self, a: &ShadowAccess) {
        // Yield *before* recording: the schedule decision point comes
        // first, then the chosen thread records and performs its access
        // while it still holds the token, so the detector's serialized
        // order matches the physical one.
        if self.yield_on_access {
            if let (Some(sched), Some(me)) = (&self.sched, current_vthread()) {
                sched.yield_point(me, Pending::Start);
            }
        }
        let t = slot();
        let mut st = self.state.lock();
        match a.kind {
            AccessKind::Read if a.speculative => {
                st.spec[t].push((a.loc, a.site));
            }
            AccessKind::Read => {
                Self::check_read(&mut st, a.loc, t, "plain read", a.site);
                let epoch = st.clocks[t].get(t);
                let ls = Self::loc_state(&mut st, a.loc, a.label, self.n);
                ls.reads[t] = Some((epoch, a.site));
            }
            AccessKind::Write => {
                // Write-write check against the last write…
                Self::check_read(&mut st, a.loc, t, "plain write", a.site);
                // …and write-read checks against every thread's last read.
                if let Some(ls) = st.locs.get(&a.loc) {
                    let label = ls.label;
                    let racing: Vec<RaceSite> = ls
                        .reads
                        .iter()
                        .enumerate()
                        .filter_map(|(u, r)| {
                            let (rc, rsite) = (*r)?;
                            (u != t && rc > st.clocks[t].get(u)).then_some(RaceSite {
                                what: "plain read",
                                slot: u,
                                site: rsite,
                            })
                        })
                        .collect();
                    for first in racing {
                        Self::push_race(
                            &mut st,
                            Race {
                                label,
                                first,
                                second: RaceSite {
                                    what: "plain write",
                                    slot: t,
                                    site: a.site,
                                },
                            },
                        );
                    }
                }
                let epoch = st.clocks[t].get(t);
                let ls = Self::loc_state(&mut st, a.loc, a.label, self.n);
                ls.write = Some((t, epoch, a.site));
                ls.reads.iter_mut().for_each(|r| *r = None);
            }
            AccessKind::AtomicLoad | AccessKind::AtomicStore | AccessKind::AtomicRmw => {
                // Atomics never race; they move clocks per their ordering.
                if a.acquire {
                    let ls = Self::loc_state(&mut st, a.loc, a.label, self.n);
                    let sync = ls.sync.clone();
                    st.clocks[t].join(&sync);
                }
                if a.release {
                    let ct = st.clocks[t].clone();
                    let ls = Self::loc_state(&mut st, a.loc, a.label, self.n);
                    ls.sync.join(&ct);
                    st.clocks[t].inc(t);
                }
                // A Relaxed store keeps the old sync clock: it publishes
                // nothing new, which is what catches a missing Release.
            }
        }
    }

    fn on_spec_commit(&self, _site: &'static Location<'static>) {
        let t = slot();
        let mut st = self.state.lock();
        let buffered = std::mem::take(&mut st.spec[t]);
        for (loc, rsite) in buffered {
            // The validating Acquire load has already joined the writer's
            // clock (if it released); check each buffered read as of now.
            // Committed speculative reads are *not* recorded as reads —
            // see the seam contract in ceh_locks::shadow.
            Self::check_read(&mut st, loc, t, "speculative read (committed)", rsite);
        }
    }

    fn on_spec_abort(&self) {
        let t = slot();
        self.state.lock().spec[t].clear();
    }
}

/// The [`WaitHook`] for race-checked exploration: the [`ExplorerHook`]'s
/// serialization plus lock happens-before edges into a [`RaceDetector`].
pub struct RaceHook {
    explorer: ExplorerHook,
    det: Arc<RaceDetector>,
}

impl RaceHook {
    /// A hook feeding `sched` (scheduling) and `det` (lock edges).
    pub fn new(sched: Arc<Scheduler>, det: Arc<RaceDetector>) -> Self {
        RaceHook {
            explorer: ExplorerHook::new(sched),
            det,
        }
    }
}

impl WaitHook for RaceHook {
    fn at_acquire(&self, owner: OwnerId, id: LockId, mode: LockMode) {
        self.explorer.at_acquire(owner, id, mode);
    }

    fn at_block(&self, owner: OwnerId, id: LockId, mode: LockMode) {
        self.explorer.at_block(owner, id, mode);
    }

    fn at_granted(&self, _owner: OwnerId, id: LockId, _mode: LockMode) {
        self.det.on_granted(id);
    }

    fn at_release(&self, owner: OwnerId, id: LockId, mode: LockMode) {
        // Record the release edge first: the thread still holds the
        // token, so the edge lands before any thread this release wakes
        // is granted.
        self.det.on_release(id);
        self.explorer.at_release(owner, id, mode);
    }
}

/// The process-global lock serializing race-checked runs (the shadow
/// sink is a process singleton). Poison-tolerant: an earlier panicked
/// run must not wedge the rest of the test suite.
fn run_lock() -> std::sync::MutexGuard<'static, ()> {
    static RUN_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    RUN_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// RAII scope for one race-checked run: takes the global run lock,
/// installs the detector as the shadow sink, and *always* uninstalls on
/// drop (including panics).
pub struct RaceRun {
    /// The run's detector.
    pub det: Arc<RaceDetector>,
    sched: Arc<Scheduler>,
    _guard: std::sync::MutexGuard<'static, ()>,
}

impl RaceRun {
    /// Begin a race-checked run for `n_workers` virtual threads driven
    /// by `sched`.
    pub fn begin(sched: &Arc<Scheduler>, n_workers: usize, yield_on_access: bool) -> RaceRun {
        let guard = run_lock();
        let det = Arc::new(RaceDetector::new(
            n_workers,
            yield_on_access,
            Some(Arc::clone(sched)),
        ));
        set_shadow_sink(Some(Arc::clone(&det) as Arc<dyn ShadowSink>));
        RaceRun {
            det,
            sched: Arc::clone(sched),
            _guard: guard,
        }
    }

    /// The [`WaitHook`] to install on the run's lock manager(s).
    pub fn hook(&self) -> Arc<RaceHook> {
        Arc::new(RaceHook::new(
            Arc::clone(&self.sched),
            Arc::clone(&self.det),
        ))
    }

    /// End the run: uninstall the sink and return the races found.
    pub fn finish(self) -> Vec<Race> {
        self.det.take_races()
        // drop uninstalls the sink and releases the run lock
    }
}

impl Drop for RaceRun {
    fn drop(&mut self) {
        set_shadow_sink(None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site() -> &'static Location<'static> {
        Location::caller()
    }

    fn access(
        loc: ceh_locks::shadow::ShadowLoc,
        kind: AccessKind,
        acquire: bool,
        release: bool,
    ) -> ShadowAccess {
        ShadowAccess {
            loc,
            label: "test.loc",
            kind,
            acquire,
            release,
            speculative: false,
            site: site(),
        }
    }

    // Drive the detector directly (no scheduler): everything lands in
    // slot 0, so cross-thread effects are simulated via lock edges run
    // on the main thread — enough to pin the clock algebra. Full
    // end-to-end coverage lives in the litmus corpus.
    #[test]
    fn unsynchronized_write_write_is_a_race() {
        let det = RaceDetector::new(1, false, None);
        let loc = ceh_locks::shadow::ShadowLoc::Addr(0x1000);
        det.on_access(&access(loc, AccessKind::Write, false, false));
        // Forge a second slot's write by editing state directly: simpler
        // to just verify same-slot writes do NOT race.
        det.on_access(&access(loc, AccessKind::Write, false, false));
        assert!(det.take_races().is_empty(), "same-thread writes never race");
    }

    #[test]
    fn release_acquire_orders_lock_handoff() {
        let det = RaceDetector::new(2, false, None);
        let id = LockId::Directory;
        det.on_release(id);
        det.on_granted(id);
        // No panic, clocks joined; trivially no races recorded.
        assert!(det.take_races().is_empty());
    }

    #[test]
    fn vclock_join_is_pointwise_max() {
        let mut a = VClock::new(3);
        a.inc(0);
        a.inc(0);
        let mut b = VClock::new(3);
        b.inc(2);
        a.join(&b);
        assert_eq!(a.get(0), 2);
        assert_eq!(a.get(1), 0);
        assert_eq!(a.get(2), 1);
    }
}
