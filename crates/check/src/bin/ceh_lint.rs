//! `ceh-lint` — the workspace lock-discipline lint (see
//! [`ceh_check::lint`] for the rules and escape hatches).
//!
//! ```text
//! ceh-lint [PATH ...]        lint these files/directories (default: crates)
//! ceh-lint --list-rules      print the rule identifiers and exit
//! ```
//!
//! Exits 1 if any finding survives the allowlists, 0 otherwise, 2 on
//! I/O or usage errors — so CI can gate on it directly.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("usage: ceh-lint [--list-rules] [PATH ...]   (default path: crates)");
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--list-rules") {
        for r in ceh_check::lint::RULES {
            println!("{r}");
        }
        return ExitCode::SUCCESS;
    }
    if let Some(bad) = args.iter().find(|a| a.starts_with('-')) {
        eprintln!("ceh-lint: unknown flag {bad}");
        return ExitCode::from(2);
    }
    let paths: Vec<PathBuf> = if args.is_empty() {
        vec![PathBuf::from("crates")]
    } else {
        args.iter().map(PathBuf::from).collect()
    };
    match ceh_check::lint_paths(&paths) {
        Ok(findings) if findings.is_empty() => {
            println!("ceh-lint: clean");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            println!("ceh-lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("ceh-lint: {e}");
            ExitCode::from(2)
        }
    }
}
