//! Detector self-test: with the `check-inject` feature, Solution 2 skips
//! Figure 9's label-A re-validation (the check that the page reached
//! through a possibly-stale directory entry is still the live merge
//! partner). The explorer must catch the resulting race, minimize it,
//! and produce a fixture that replays.
//!
//! Run explicitly (the feature flips the code under test, so it is a
//! separate cargo invocation): `cargo test -p ceh-check --features
//! check-inject --test inject`.

#![cfg(feature = "check-inject")]

use ceh_check::{explore, replay, ExploreConfig, ScheduleFixture, Workload};

fn cfg() -> ExploreConfig {
    ExploreConfig {
        preemption_bound: 3,
        dpor: false,
        max_schedules: 100_000,
        race: false,
    }
}

#[test]
fn explorer_catches_the_skipped_label_a_check() {
    let w = Workload::by_name("s2-delete-delete-merge").unwrap();
    let report = explore(&w, &cfg()).expect("exploration must run");
    let violation = report.violation.expect(
        "the injected label-A skip must produce a violating schedule \
         (racing deletes across a merge + tombstone)",
    );
    assert!(!violation.schedule.is_empty(), "minimized to nothing");

    // The minimized schedule replays to a violation, via the fixture
    // round-trip the regression corpus uses.
    let fixture = violation.to_fixture();
    eprintln!("--- minimized fixture ---\n{}---", fixture.serialize());
    let parsed = ScheduleFixture::parse(&fixture.serialize()).unwrap();
    assert_eq!(parsed, fixture);
    let reproduced = replay(&parsed)
        .expect("replay must run")
        .expect("minimized fixture must still violate");
    assert!(!reproduced.is_empty());
}

#[test]
fn injected_bug_does_not_break_the_split_path() {
    // The injection only disables delete-side re-validation; the insert
    // workloads must still explore clean, pinning that the self-test
    // detects the *intended* bug rather than generic breakage.
    let w = Workload::by_name("s2-insert-insert-split").unwrap();
    let report = explore(&w, &cfg()).expect("exploration must run");
    assert!(report.violation.is_none(), "{:?}", report.violation);
}
