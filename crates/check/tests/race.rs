//! Race-detector acceptance: litmus verdicts, race-checked protocol
//! workloads, and the committed race-fixture corpus.
//!
//! Build with `--features check-race`. The injected-seqlock litmus and
//! its fixture additionally need `check-inject` and are covered by
//! `tests/race_inject.rs`.

#![cfg(feature = "check-race")]

use ceh_check::{
    explore, explore_litmus, litmus_corpus, replay, ExploreConfig, ScheduleFixture, Workload,
};

fn cfg(bound: usize) -> ExploreConfig {
    ExploreConfig {
        preemption_bound: bound,
        dpor: true,
        max_schedules: 200_000,
        race: true,
    }
}

/// Every litmus program's detector verdict matches its known one, and
/// racy verdicts come with a minimized two-access witness naming both
/// sites and both threads.
#[test]
fn litmus_corpus_verdicts_match() {
    for l in litmus_corpus() {
        let r = explore_litmus(&l, &cfg(3)).unwrap_or_else(|e| panic!("{}: {e}", l.name));
        assert!(
            r.verdict_matches(),
            "litmus {}: expected racy={}, got {:?}",
            l.name,
            l.racy,
            r.violation.map(|v| v.detail)
        );
        if let Some(v) = &r.violation {
            assert!(
                v.detail.contains("data race on"),
                "{}: {}",
                l.name,
                v.detail
            );
            assert!(v.detail.contains(" vs "), "{}: {}", l.name, v.detail);
            assert!(v.detail.contains(".rs:"), "{}: {}", l.name, v.detail);
            assert!(
                v.race,
                "{}: race violations must carry the race flag",
                l.name
            );
            // Minimization produced a schedule that still reproduces.
            let again = replay(&v.to_fixture()).unwrap();
            assert!(
                again.is_some(),
                "{}: minimized schedule no longer reproduces",
                l.name
            );
        }
    }
}

/// A racy litmus's minimized violation survives a serialize/parse
/// round-trip and still replays to a race.
#[test]
fn racy_litmus_fixture_roundtrips() {
    let l = ceh_check::litmus_by_name("mp-relaxed").unwrap();
    let r = explore_litmus(&l, &cfg(3)).unwrap();
    let v = r.violation.expect("mp-relaxed is racy");
    let fix = v.to_fixture();
    let parsed = ScheduleFixture::parse(&fix.serialize()).unwrap();
    assert_eq!(parsed, fix);
    assert!(parsed.race);
    assert_eq!(parsed.workload, "litmus:mp-relaxed");
    assert!(replay(&parsed).unwrap().is_some());
}

/// The four deterministic protocol workloads run race-clean at
/// preemption bound 2 with the detector on — the lock-edge model admits
/// the ρ/α/ξ protocol. (The CI race_smoke gate re-runs these at bound 3
/// through `ceh check race`.)
#[test]
fn workloads_are_race_clean() {
    for w in Workload::all() {
        let r = explore(&w, &cfg(2)).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert!(
            r.violation.is_none(),
            "workload {} raced: {:?}",
            w.name,
            r.violation.map(|v| v.detail)
        );
    }
}

/// Replay gate over the committed race-fixture corpus: every fixture in
/// `tests/fixtures/races/` must still REPRODUCE its race (the inverse of
/// the schedules corpus, whose fixtures guard *fixed* bugs and must run
/// clean). Fixtures marked `# requires: check-inject` are skipped when
/// that feature is off.
#[test]
fn race_fixture_corpus_reproduces() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/races");
    let mut seen = 0usize;
    for entry in std::fs::read_dir(dir).expect("race fixture corpus dir") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("fixture") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        if text.contains("# requires: check-inject") && cfg!(not(feature = "check-inject")) {
            continue;
        }
        seen += 1;
        let fix = ScheduleFixture::parse(&text)
            .unwrap_or_else(|e| panic!("{}: bad fixture: {e}", path.display()));
        let got = replay(&fix).unwrap_or_else(|e| panic!("{}: replay failed: {e}", path.display()));
        let detail = got.unwrap_or_else(|| {
            panic!(
                "{}: fixture no longer reproduces its race — if the race was \
                 deliberately fixed, delete the fixture",
                path.display()
            )
        });
        assert!(
            detail.contains("data race on"),
            "{}: reproduced a non-race violation: {detail}",
            path.display()
        );
    }
    assert!(seen > 0, "race fixture corpus is empty");
}
