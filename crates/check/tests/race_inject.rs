//! Detector self-test with the injected seqlock bug: the
//! `check-inject`-gated `VersionWord::write_end_missing_release` writer
//! exit must be caught as a data race on the payload, minimized to a
//! two-access witness, and reproducible from its committed fixture.
//!
//! Build with `--features "check-race check-inject"`.

#![cfg(all(feature = "check-race", feature = "check-inject"))]

use ceh_check::{explore_litmus, litmus_by_name, replay, ExploreConfig, ScheduleFixture};

fn cfg() -> ExploreConfig {
    ExploreConfig {
        preemption_bound: 3,
        dpor: true,
        max_schedules: 200_000,
        race: true,
    }
}

/// The detector catches the missing-Release seqlock writer: the reader's
/// committed speculative payload reads have no happens-before edge to
/// the writer's stores, and the witness names the payload, both sites,
/// and both threads.
#[test]
fn injected_seqlock_race_is_caught_and_minimized() {
    let l = litmus_by_name("seqlock-missing-release").expect("inject litmus present");
    assert!(l.racy);
    let r = explore_litmus(&l, &cfg()).unwrap();
    let v = r.violation.expect("missing-Release seqlock must race");
    assert!(
        v.detail.contains("data race on `seq.payload"),
        "witness should blame the payload: {}",
        v.detail
    );
    assert!(
        v.detail.contains("speculative read (committed)"),
        "witness should show the committed speculative read: {}",
        v.detail
    );
    assert!(v.detail.contains("version.rs") || v.detail.contains("litmus.rs"));

    // The minimized schedule reproduces deterministically.
    let fix = v.to_fixture();
    assert!(replay(&fix).unwrap().is_some(), "minimized witness replays");

    // And round-trips through the fixture format.
    let parsed = ScheduleFixture::parse(&fix.serialize()).unwrap();
    assert_eq!(parsed, fix);
}

/// The correct seqlock stays clean under the same exploration — the
/// verdict flip is the missing Release alone.
#[test]
fn correct_seqlock_stays_clean_under_inject_build() {
    let l = litmus_by_name("seqlock-rw").unwrap();
    let r = explore_litmus(&l, &cfg()).unwrap();
    assert!(
        r.violation.is_none(),
        "correct seqlock raced: {:?}",
        r.violation.map(|v| v.detail)
    );
}

/// The committed fixture for the injected seqlock race reproduces. (The
/// generic corpus gate in tests/race.rs skips `# requires: check-inject`
/// fixtures on non-inject builds; this is the positive side.)
#[test]
fn committed_seqlock_fixture_reproduces() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/races/seqlock_missing_release.fixture"
    );
    let text = std::fs::read_to_string(path).expect("committed seqlock race fixture");
    assert!(text.contains("# requires: check-inject"));
    let fix = ScheduleFixture::parse(&text).unwrap();
    let detail = replay(&fix)
        .unwrap()
        .expect("seqlock fixture must reproduce its race");
    assert!(detail.contains("data race on `seq.payload"), "{detail}");
}
