//! The lock manager.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::hook::WaitHook;
use crate::mode::{compatible, LockId, LockMode};
use crate::stats::{LockStats, LockStatsSnapshot};

/// Identifies a lock-holding process (one logical operation).
///
/// The paper's "processes" map to operations here, not OS threads: each
/// `find`/`insert`/`delete` call takes a fresh owner from
/// [`LockManager::new_owner`], so a thread running operations back to back
/// never accidentally inherits locks across operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OwnerId(pub u64);

/// Configuration for a [`LockManager`].
#[derive(Debug, Clone)]
pub struct LockManagerConfig {
    /// Number of lock-table shards (rounded up to a power of two).
    pub shards: usize,
    /// If set, a waiter that has blocked for this long runs the deadlock
    /// detector and panics with the cycle if it is part of one. Armed by
    /// the stress tests; `None` (default) waits indefinitely.
    pub watchdog: Option<Duration>,
}

impl Default for LockManagerConfig {
    fn default() -> Self {
        LockManagerConfig {
            shards: 16,
            watchdog: None,
        }
    }
}

#[derive(Debug)]
struct Grant {
    owner: OwnerId,
    mode: LockMode,
    count: u32,
}

#[derive(Debug, Clone, Copy)]
struct Waiter {
    owner: OwnerId,
    mode: LockMode,
    ticket: u64,
}

#[derive(Debug, Default)]
struct ResourceState {
    granted: Vec<Grant>,
    /// Conversion requests: owner already holds some lock on the resource.
    /// Checked against granted locks (and earlier conversions) only —
    /// never queued behind ordinary waiters. See crate docs.
    conversions: Vec<Waiter>,
    /// Ordinary waiters, FIFO by ticket.
    queue: Vec<Waiter>,
}

impl ResourceState {
    fn is_empty(&self) -> bool {
        self.granted.is_empty() && self.conversions.is_empty() && self.queue.is_empty()
    }

    fn holds(&self, owner: OwnerId) -> bool {
        self.granted.iter().any(|g| g.owner == owner)
    }

    /// May `(owner, mode)` — positioned either in the conversion list or
    /// the ordinary queue with ticket `ticket` — be granted now?
    fn grantable(&self, owner: OwnerId, mode: LockMode, is_conversion: bool, ticket: u64) -> bool {
        // Compatible with every lock granted to a different owner. Own
        // grants are ignored: Figure 8's inserter holds ρ and α on the
        // directory simultaneously.
        if self
            .granted
            .iter()
            .any(|g| g.owner != owner && !compatible(mode, g.mode))
        {
            return false;
        }
        // FIFO among conversions.
        if self
            .conversions
            .iter()
            .any(|c| c.ticket < ticket && c.owner != owner && !compatible(mode, c.mode))
        {
            return false;
        }
        if is_conversion {
            // Conversions never queue behind ordinary waiters (deadlock
            // avoidance — the waiter may be a ξ blocked by the very lock
            // this owner already holds).
            return true;
        }
        // Ordinary requests also respect all pending conversions and all
        // earlier ordinary waiters: FIFO "subject to the compatibility
        // relationship" (§2.3). Without this, readers would starve a
        // waiting ξ forever.
        if self
            .conversions
            .iter()
            .any(|c| c.owner != owner && !compatible(mode, c.mode))
        {
            return false;
        }
        !self
            .queue
            .iter()
            .any(|w| w.ticket < ticket && w.owner != owner && !compatible(mode, w.mode))
    }
}

struct Shard {
    state: Mutex<HashMap<LockId, ResourceState>>,
    cv: Condvar,
}

/// The three-mode lock manager. See the crate docs for semantics.
///
/// ```
/// use ceh_locks::{LockId, LockManager, LockMode};
///
/// let mgr = LockManager::default();
/// let reader = mgr.new_owner();
/// let inserter = mgr.new_owner();
/// // ρ and α are compatible: a reader shares the directory with an
/// // inserter...
/// mgr.lock(reader, LockId::Directory, LockMode::Rho);
/// mgr.lock(inserter, LockId::Directory, LockMode::Alpha);
/// // ...but a deleter's ξ must wait for both.
/// let deleter = mgr.new_owner();
/// assert!(!mgr.try_lock(deleter, LockId::Directory, LockMode::Xi));
/// mgr.unlock(reader, LockId::Directory, LockMode::Rho);
/// mgr.unlock(inserter, LockId::Directory, LockMode::Alpha);
/// assert!(mgr.try_lock(deleter, LockId::Directory, LockMode::Xi));
/// mgr.unlock(deleter, LockId::Directory, LockMode::Xi);
/// ```
pub struct LockManager {
    shards: Box<[Shard]>,
    shard_mask: usize,
    next_owner: AtomicU64,
    next_ticket: AtomicU64,
    watchdog: Option<Duration>,
    stats: LockStats,
    /// Fast-path flag for `wait_hook` (one relaxed load when unset).
    hooked: AtomicBool,
    wait_hook: Mutex<Option<Arc<dyn WaitHook>>>,
}

impl std::fmt::Debug for LockManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LockManager")
            .field("shards", &self.shards.len())
            .field("stats", &self.stats.snapshot())
            .finish()
    }
}

impl Default for LockManager {
    fn default() -> Self {
        Self::new(LockManagerConfig::default())
    }
}

impl LockManager {
    /// Create a manager with a private metrics registry.
    pub fn new(cfg: LockManagerConfig) -> Self {
        Self::with_metrics(cfg, &ceh_obs::MetricsHandle::default())
    }

    /// Create a manager whose statistics land in `metrics`' registry
    /// (under the `locks.` prefix), correlated with every other layer
    /// wired to the same handle.
    pub fn with_metrics(cfg: LockManagerConfig, metrics: &ceh_obs::MetricsHandle) -> Self {
        let n = cfg.shards.max(1).next_power_of_two();
        let shards = (0..n)
            .map(|_| Shard {
                state: Mutex::new(HashMap::new()),
                cv: Condvar::new(),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        LockManager {
            shards,
            shard_mask: n - 1,
            next_owner: AtomicU64::new(1),
            next_ticket: AtomicU64::new(1),
            watchdog: cfg.watchdog,
            stats: LockStats::with_handle(metrics),
            hooked: AtomicBool::new(false),
            wait_hook: Mutex::new(None),
        }
    }

    /// Install (or clear) a [`WaitHook`]. Used by `ceh-check`'s schedule
    /// explorer to take control of blocking; see [`crate::WaitHook`].
    ///
    /// Must be set while the manager is quiescent (no waiters): threads
    /// already parked on the internal condvar are not migrated to the hook.
    pub fn set_wait_hook(&self, hook: Option<Arc<dyn WaitHook>>) {
        let mut slot = self.wait_hook.lock();
        self.hooked.store(hook.is_some(), Ordering::Release);
        *slot = hook;
    }

    /// The installed hook, if any (fast path: one relaxed load).
    #[inline]
    fn hook(&self) -> Option<Arc<dyn WaitHook>> {
        // A stale `false` just skips the hook for an in-flight operation;
        // install (`set_wait_hook`) happens before any hooked run starts.
        // ceh-lint: allow(relaxed-ordering) — monotonic fast-path flag, ordered by the install handshake above
        if !self.hooked.load(Ordering::Relaxed) {
            return None;
        }
        self.wait_hook.lock().clone()
    }

    /// Allocate a fresh owner token for one logical operation.
    pub fn new_owner(&self) -> OwnerId {
        OwnerId(self.next_owner.fetch_add(1, Ordering::Relaxed))
    }

    /// Lock statistics so far.
    pub fn stats(&self) -> LockStatsSnapshot {
        self.stats.snapshot()
    }

    /// Reset statistics (between benchmark phases).
    pub fn reset_stats(&self) {
        self.stats.reset()
    }

    fn shard(&self, id: LockId) -> &Shard {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        id.hash(&mut h);
        &self.shards[(h.finish() as usize) & self.shard_mask]
    }

    /// Acquire `mode` on `id` for `owner`, blocking until granted.
    ///
    /// Reentrant: acquiring a (resource, mode) pair the owner already
    /// holds nests. An owner holding *any* lock on the resource makes this
    /// a conversion-style request (queue bypass; see crate docs).
    pub fn lock(&self, owner: OwnerId, id: LockId, mode: LockMode) {
        let hook = self.hook();
        if let Some(h) = &hook {
            h.at_acquire(owner, id, mode);
        }
        let target = crate::stats::lock_trace_target(id);
        let shard = self.shard(id);
        let mut state = shard.state.lock();
        let rs = state.entry(id).or_default();

        // Reentrant same-mode acquisition.
        if let Some(g) = rs
            .granted
            .iter_mut()
            .find(|g| g.owner == owner && g.mode == mode)
        {
            g.count += 1;
            self.stats.record_grant(mode, false, target);
            drop(state);
            if let Some(h) = &hook {
                h.at_granted(owner, id, mode);
            }
            return;
        }

        let is_conversion = rs.holds(owner);
        let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);

        if rs.grantable(owner, mode, is_conversion, ticket) {
            rs.granted.push(Grant {
                owner,
                mode,
                count: 1,
            });
            self.stats.record_grant(mode, false, target);
            if is_conversion {
                self.stats.record_conversion(target);
            }
            drop(state);
            if let Some(h) = &hook {
                h.at_granted(owner, id, mode);
            }
            return;
        }

        // Must wait.
        let waiter = Waiter {
            owner,
            mode,
            ticket,
        };
        if is_conversion {
            rs.conversions.push(waiter);
        } else {
            rs.queue.push(waiter);
        }
        let wait_span = self.stats.record_wait_start(mode, target);
        let wait_started = Instant::now();
        // Hook-driven waiting: the scheduler decides when to re-check, the
        // condvar is never used (the releaser's notify is harmless).
        if let Some(h) = hook {
            loop {
                drop(state);
                h.at_block(owner, id, mode);
                state = shard.state.lock();
                let rs = state.get_mut(&id).expect("resource with waiter vanished");
                if rs.grantable(owner, mode, is_conversion, ticket) {
                    Self::promote(rs, owner, mode, is_conversion, ticket);
                    self.stats
                        .record_wait_end(wait_span, mode, target, wait_started.elapsed());
                    if is_conversion {
                        self.stats.record_conversion(target);
                    }
                    drop(state);
                    h.at_granted(owner, id, mode);
                    return;
                }
            }
        }
        loop {
            match self.watchdog {
                Some(d) => {
                    let timed_out = shard.cv.wait_for(&mut state, d).timed_out();
                    if timed_out {
                        // Re-check before running the detector: we may have
                        // become grantable while timing out.
                        let rs = state.get_mut(&id).expect("resource with waiter vanished");
                        if rs.grantable(owner, mode, is_conversion, ticket) {
                            Self::promote(rs, owner, mode, is_conversion, ticket);
                            self.stats.record_wait_end(
                                wait_span,
                                mode,
                                target,
                                wait_started.elapsed(),
                            );
                            drop(state);
                            if let Some(h) = self.hook() {
                                h.at_granted(owner, id, mode);
                            }
                            return;
                        }
                        drop(state);
                        if let Some(cycle) = self.detect_deadlock() {
                            panic!(
                                "deadlock detected while {owner:?} waits for {mode} on {id}: \
                                 cycle {cycle:?}\n{}",
                                self.dump()
                            );
                        }
                        state = shard.state.lock();
                        continue;
                    }
                }
                None => shard.cv.wait(&mut state),
            }
            let rs = state.get_mut(&id).expect("resource with waiter vanished");
            if rs.grantable(owner, mode, is_conversion, ticket) {
                Self::promote(rs, owner, mode, is_conversion, ticket);
                self.stats
                    .record_wait_end(wait_span, mode, target, wait_started.elapsed());
                if is_conversion {
                    self.stats.record_conversion(target);
                }
                drop(state);
                if let Some(h) = self.hook() {
                    h.at_granted(owner, id, mode);
                }
                return;
            }
        }
    }

    fn promote(
        rs: &mut ResourceState,
        owner: OwnerId,
        mode: LockMode,
        is_conversion: bool,
        ticket: u64,
    ) {
        let list = if is_conversion {
            &mut rs.conversions
        } else {
            &mut rs.queue
        };
        let pos = list
            .iter()
            .position(|w| w.ticket == ticket)
            .expect("waiter not in its queue");
        list.remove(pos);
        rs.granted.push(Grant {
            owner,
            mode,
            count: 1,
        });
    }

    /// Try to acquire without blocking. Returns whether the lock was
    /// granted. Respects the same fairness rules as [`LockManager::lock`]
    /// (it will not jump ahead of earlier waiters).
    pub fn try_lock(&self, owner: OwnerId, id: LockId, mode: LockMode) -> bool {
        let hook = self.hook();
        if let Some(h) = &hook {
            h.at_acquire(owner, id, mode);
        }
        let target = crate::stats::lock_trace_target(id);
        let shard = self.shard(id);
        let mut state = shard.state.lock();
        let rs = state.entry(id).or_default();
        if let Some(g) = rs
            .granted
            .iter_mut()
            .find(|g| g.owner == owner && g.mode == mode)
        {
            g.count += 1;
            self.stats.record_grant(mode, false, target);
            drop(state);
            if let Some(h) = &hook {
                h.at_granted(owner, id, mode);
            }
            return true;
        }
        let is_conversion = rs.holds(owner);
        let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        if rs.grantable(owner, mode, is_conversion, ticket) {
            rs.granted.push(Grant {
                owner,
                mode,
                count: 1,
            });
            self.stats.record_grant(mode, false, target);
            drop(state);
            if let Some(h) = &hook {
                h.at_granted(owner, id, mode);
            }
            true
        } else {
            if rs.is_empty() {
                state.remove(&id);
            }
            false
        }
    }

    /// Release one acquisition of `mode` on `id` by `owner`.
    ///
    /// Panics if the owner does not hold such a lock — in this codebase
    /// that is always a protocol-transcription bug worth failing loudly on.
    pub fn unlock(&self, owner: OwnerId, id: LockId, mode: LockMode) {
        let shard = self.shard(id);
        let mut state = shard.state.lock();
        let rs = state
            .get_mut(&id)
            .unwrap_or_else(|| panic!("{owner:?} unlocking {mode} on {id}: resource not locked"));
        let pos = rs
            .granted
            .iter()
            .position(|g| g.owner == owner && g.mode == mode)
            .unwrap_or_else(|| panic!("{owner:?} unlocking {mode} on {id}: not held"));
        rs.granted[pos].count -= 1;
        if rs.granted[pos].count == 0 {
            rs.granted.remove(pos);
        }
        self.stats.record_release(mode);
        let has_waiters = !rs.conversions.is_empty() || !rs.queue.is_empty();
        if rs.is_empty() {
            state.remove(&id);
        }
        drop(state);
        if has_waiters {
            shard.cv.notify_all();
        }
        if let Some(h) = self.hook() {
            h.at_release(owner, id, mode);
        }
    }

    /// Release *all* locks held by `owner` (panic-recovery in tests and
    /// guard teardown).
    pub fn release_all(&self, owner: OwnerId) {
        for shard in self.shards.iter() {
            let mut state = shard.state.lock();
            let mut touched = false;
            state.retain(|_, rs| {
                let before = rs.granted.len();
                rs.granted.retain(|g| g.owner != owner);
                touched |= rs.granted.len() != before;
                !rs.is_empty()
            });
            drop(state);
            if touched {
                shard.cv.notify_all();
            }
        }
    }

    /// The modes `owner` currently holds on `id` (diagnostic).
    pub fn held(&self, owner: OwnerId, id: LockId) -> Vec<LockMode> {
        let shard = self.shard(id);
        let state = shard.state.lock();
        state
            .get(&id)
            .map(|rs| {
                rs.granted
                    .iter()
                    .filter(|g| g.owner == owner)
                    .map(|g| g.mode)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Total number of locks currently granted (diagnostic; quiescent
    /// tests assert this returns 0).
    pub fn total_granted(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.state
                    .lock()
                    .values()
                    .map(|rs| rs.granted.len())
                    .sum::<usize>()
            })
            .sum()
    }

    /// Build the waits-for graph and look for a cycle. Returns the owners
    /// on a cycle, if any.
    ///
    /// A waiter waits-for (a) every other owner holding an incompatible
    /// granted lock on its resource, and (b) under FIFO fairness, every
    /// earlier incompatible waiter on the same resource (conversions wait
    /// only on grants and earlier conversions).
    pub fn detect_deadlock(&self) -> Option<Vec<OwnerId>> {
        // Snapshot all shards. Shard mutexes are leaves (no lock calls
        // nest inside them), so taking them in order cannot deadlock with
        // anything.
        let mut edges: HashMap<OwnerId, Vec<OwnerId>> = HashMap::new();
        for shard in self.shards.iter() {
            let state = shard.state.lock();
            for rs in state.values() {
                let mut consider = |w: &Waiter, include_queue_fifo: bool| {
                    let out = edges.entry(w.owner).or_default();
                    for g in &rs.granted {
                        if g.owner != w.owner && !compatible(w.mode, g.mode) {
                            out.push(g.owner);
                        }
                    }
                    for c in &rs.conversions {
                        if c.ticket < w.ticket && c.owner != w.owner && !compatible(w.mode, c.mode)
                        {
                            out.push(c.owner);
                        }
                    }
                    if include_queue_fifo {
                        for q in &rs.queue {
                            if q.ticket < w.ticket
                                && q.owner != w.owner
                                && !compatible(w.mode, q.mode)
                            {
                                out.push(q.owner);
                            }
                        }
                        // Ordinary waiters also wait on all conversions.
                        for c in &rs.conversions {
                            if c.owner != w.owner && !compatible(w.mode, c.mode) {
                                out.push(c.owner);
                            }
                        }
                    }
                };
                for c in &rs.conversions {
                    consider(c, false);
                }
                for w in &rs.queue {
                    consider(w, true);
                }
            }
        }
        // DFS cycle detection.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let mut color: HashMap<OwnerId, Color> = HashMap::new();
        let mut stack_path: Vec<OwnerId> = Vec::new();

        fn dfs(
            v: OwnerId,
            edges: &HashMap<OwnerId, Vec<OwnerId>>,
            color: &mut HashMap<OwnerId, Color>,
            path: &mut Vec<OwnerId>,
        ) -> Option<Vec<OwnerId>> {
            color.insert(v, Color::Gray);
            path.push(v);
            if let Some(next) = edges.get(&v) {
                for &u in next {
                    match color.get(&u).copied().unwrap_or(Color::White) {
                        Color::Gray => {
                            let start = path.iter().position(|&x| x == u).unwrap_or(0);
                            return Some(path[start..].to_vec());
                        }
                        Color::White => {
                            if let Some(c) = dfs(u, edges, color, path) {
                                return Some(c);
                            }
                        }
                        Color::Black => {}
                    }
                }
            }
            path.pop();
            color.insert(v, Color::Black);
            None
        }

        let owners: Vec<OwnerId> = edges.keys().copied().collect();
        for v in owners {
            if color.get(&v).copied().unwrap_or(Color::White) == Color::White {
                if let Some(c) = dfs(v, &edges, &mut color, &mut stack_path) {
                    return Some(c);
                }
            }
        }
        None
    }

    /// Human-readable dump of the lock table (diagnostics on watchdog
    /// panic).
    pub fn dump(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for shard in self.shards.iter() {
            let state = shard.state.lock();
            for (id, rs) in state.iter() {
                let _ = writeln!(out, "{id}:");
                for g in &rs.granted {
                    let _ = writeln!(out, "  granted {} to {:?} x{}", g.mode, g.owner, g.count);
                }
                for c in &rs.conversions {
                    let _ = writeln!(
                        out,
                        "  converting {} for {:?} (t{})",
                        c.mode, c.owner, c.ticket
                    );
                }
                for w in &rs.queue {
                    let _ = writeln!(
                        out,
                        "  waiting {} for {:?} (t{})",
                        w.mode, w.owner, w.ticket
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceh_types::PageId;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;
    use LockMode::*;

    const R: LockId = LockId::Page(PageId(1));

    #[test]
    fn contended_lock_emits_wait_span_with_mode_and_wait_ns() {
        let metrics = ceh_obs::MetricsHandle::new();
        metrics.tracer().enable(256);
        let m = Arc::new(LockManager::with_metrics(
            LockManagerConfig::default(),
            &metrics,
        ));
        let a = m.new_owner();
        m.lock(a, R, Xi);
        let m2 = Arc::clone(&m);
        let waiter = thread::spawn(move || {
            let b = m2.new_owner();
            m2.lock(b, R, Rho); // blocks until a releases ξ
            m2.unlock(b, R, Rho);
        });
        thread::sleep(Duration::from_millis(20));
        m.unlock(a, R, Xi);
        waiter.join().unwrap();
        let ev = metrics.tracer().drain();
        let begin = ev
            .iter()
            .find(|e| {
                e.layer == "locks" && e.event == "wait.rho" && e.kind == ceh_obs::EventKind::Begin
            })
            .expect("wait begin recorded");
        let end = ev
            .iter()
            .find(|e| {
                e.layer == "locks" && e.event == "wait.rho" && e.kind == ceh_obs::EventKind::End
            })
            .expect("wait end recorded");
        assert_eq!(begin.span, end.span, "begin/end pair up");
        assert_eq!(end.a, 1, "target is the encoded page id");
        assert!(end.b > 0, "end carries the wait in nanoseconds");
        assert!(
            ev.iter()
                .any(|e| e.layer == "locks" && e.event == "acquire.xi"),
            "uncontended grants stamp acquire instants when traced"
        );
    }

    #[test]
    fn reentrant_same_mode() {
        let m = LockManager::default();
        let o = m.new_owner();
        m.lock(o, R, Rho);
        m.lock(o, R, Rho);
        assert_eq!(m.held(o, R), vec![Rho]);
        m.unlock(o, R, Rho);
        assert_eq!(m.held(o, R), vec![Rho]);
        m.unlock(o, R, Rho);
        assert!(m.held(o, R).is_empty());
        assert_eq!(m.total_granted(), 0);
    }

    #[test]
    fn compatible_modes_coexist() {
        let m = LockManager::default();
        let (a, b) = (m.new_owner(), m.new_owner());
        m.lock(a, R, Rho);
        m.lock(b, R, Alpha); // α compatible with ρ
        assert!(m.try_lock(m.new_owner(), R, Rho)); // another ρ fine
        assert!(!m.try_lock(m.new_owner(), R, Alpha)); // second α refused
        assert!(!m.try_lock(m.new_owner(), R, Xi)); // ξ refused
    }

    #[test]
    fn xi_excludes_everything() {
        let m = LockManager::default();
        let o = m.new_owner();
        m.lock(o, R, Xi);
        for mode in LockMode::ALL {
            assert!(
                !m.try_lock(m.new_owner(), R, mode),
                "{mode} must be refused under ξ"
            );
        }
        m.unlock(o, R, Xi);
        assert!(m.try_lock(m.new_owner(), R, Xi));
    }

    #[test]
    fn blocking_waiter_wakes_on_release() {
        let m = Arc::new(LockManager::default());
        let a = m.new_owner();
        m.lock(a, R, Xi);
        let m2 = Arc::clone(&m);
        let t = thread::spawn(move || {
            let b = m2.new_owner();
            m2.lock(b, R, Rho);
            m2.unlock(b, R, Rho);
        });
        thread::sleep(Duration::from_millis(20));
        m.unlock(a, R, Xi);
        t.join().unwrap();
        assert_eq!(m.total_granted(), 0);
    }

    #[test]
    fn fifo_readers_do_not_starve_xi() {
        // a holds ρ; x queues for ξ; then c requests ρ — c must NOT be
        // granted ahead of x (it queues), so after a releases, x gets the
        // resource first.
        let m = Arc::new(LockManager::default());
        let a = m.new_owner();
        m.lock(a, R, Rho);

        let m_x = Arc::clone(&m);
        let x_thread = thread::spawn(move || {
            let x = m_x.new_owner();
            m_x.lock(x, R, Xi);
            // Hold briefly so the late reader demonstrably waited.
            thread::sleep(Duration::from_millis(30));
            m_x.unlock(x, R, Xi);
        });
        thread::sleep(Duration::from_millis(20)); // let x start waiting
        assert!(
            !m.try_lock(m.new_owner(), R, Rho),
            "ρ must queue behind waiting ξ"
        );

        let m_c = Arc::clone(&m);
        let started = std::time::Instant::now();
        let c_thread = thread::spawn(move || {
            let c = m_c.new_owner();
            m_c.lock(c, R, Rho);
            m_c.unlock(c, R, Rho);
        });
        thread::sleep(Duration::from_millis(10));
        m.unlock(a, R, Rho); // x should be granted now, then c
        x_thread.join().unwrap();
        c_thread.join().unwrap();
        assert!(
            started.elapsed() >= Duration::from_millis(25),
            "late ρ should have waited for the ξ ahead of it"
        );
        assert_eq!(m.total_granted(), 0);
    }

    #[test]
    fn conversion_bypasses_waiting_queue() {
        // The §2.5 scenario: owner holds ρ on the directory; a ξ is
        // waiting (it can't be granted because of the ρ); owner requests α
        // — if the α queued behind the ξ this would deadlock. It must be
        // granted immediately.
        let m = Arc::new(LockManager::default());
        let o = m.new_owner();
        m.lock(o, R, Rho);

        let m2 = Arc::clone(&m);
        let xi_thread = thread::spawn(move || {
            let d = m2.new_owner();
            m2.lock(d, R, Xi);
            m2.unlock(d, R, Xi);
        });
        thread::sleep(Duration::from_millis(20)); // ξ is now waiting

        // Conversion must not block behind the waiting ξ.
        m.lock(o, R, Alpha);
        assert_eq!(m.held(o, R).len(), 2);
        m.unlock(o, R, Alpha);
        m.unlock(o, R, Rho);
        xi_thread.join().unwrap();
        assert_eq!(m.total_granted(), 0);
    }

    #[test]
    fn two_conversions_serialize() {
        // Two owners hold ρ, both request α: one gets it, the other waits
        // until the first releases its α. No deadlock.
        let m = Arc::new(LockManager::default());
        let a = m.new_owner();
        let b = m.new_owner();
        m.lock(a, R, Rho);
        m.lock(b, R, Rho);
        m.lock(a, R, Alpha);
        let m2 = Arc::clone(&m);
        let t = thread::spawn(move || {
            m2.lock(b, R, Alpha);
            m2.unlock(b, R, Alpha);
            m2.unlock(b, R, Rho);
        });
        thread::sleep(Duration::from_millis(20));
        m.unlock(a, R, Alpha);
        m.unlock(a, R, Rho);
        t.join().unwrap();
        assert_eq!(m.total_granted(), 0);
    }

    #[test]
    fn release_all_drops_everything() {
        let m = LockManager::default();
        let o = m.new_owner();
        m.lock(o, R, Rho);
        m.lock(o, LockId::Directory, Rho);
        m.lock(o, LockId::Page(PageId(9)), Xi);
        m.release_all(o);
        assert_eq!(m.total_granted(), 0);
    }

    #[test]
    fn detects_abba_deadlock() {
        // Manufactured AB-BA deadlock between two ξ owners (our protocols
        // never do this; the detector exists to prove they don't).
        let m = Arc::new(LockManager::new(LockManagerConfig {
            watchdog: None,
            ..Default::default()
        }));
        let ra = LockId::Page(PageId(1));
        let rb = LockId::Page(PageId(2));
        let a = m.new_owner();
        let b = m.new_owner();
        m.lock(a, ra, Xi);
        m.lock(b, rb, Xi);
        let m2 = Arc::clone(&m);
        let _t1 = thread::spawn(move || m2.lock(a, rb, Xi));
        let m3 = Arc::clone(&m);
        let _t2 = thread::spawn(move || m3.lock(b, ra, Xi));
        thread::sleep(Duration::from_millis(50));
        let cycle = m.detect_deadlock().expect("AB-BA cycle must be found");
        assert_eq!(cycle.len(), 2);
        // Break the deadlock so the detached threads can finish; the test
        // process exits regardless.
        m.release_all(a);
        m.release_all(b);
    }

    #[test]
    fn no_false_positive_deadlock() {
        let m = Arc::new(LockManager::default());
        let a = m.new_owner();
        m.lock(a, R, Xi);
        let m2 = Arc::clone(&m);
        let t = thread::spawn(move || {
            let b = m2.new_owner();
            m2.lock(b, R, Xi);
            m2.unlock(b, R, Xi);
        });
        thread::sleep(Duration::from_millis(20));
        assert!(
            m.detect_deadlock().is_none(),
            "simple waiting is not deadlock"
        );
        m.unlock(a, R, Xi);
        t.join().unwrap();
    }

    #[test]
    fn stats_count_grants_and_waits() {
        let m = Arc::new(LockManager::default());
        let a = m.new_owner();
        m.lock(a, R, Xi);
        let m2 = Arc::clone(&m);
        let t = thread::spawn(move || {
            let b = m2.new_owner();
            m2.lock(b, R, Rho);
            m2.unlock(b, R, Rho);
        });
        thread::sleep(Duration::from_millis(20));
        m.unlock(a, R, Xi);
        t.join().unwrap();
        let s = m.stats();
        assert_eq!(s.grants_xi, 1);
        assert_eq!(s.grants_rho, 1);
        assert_eq!(s.waits_rho, 1);
        assert!(s.wait_ns_rho > 0);
    }

    #[test]
    #[should_panic(expected = "not held")]
    fn unlock_unheld_panics() {
        let m = LockManager::default();
        let o = m.new_owner();
        m.lock(o, R, Rho);
        m.unlock(o, R, Xi);
    }

    #[test]
    fn watchdog_panics_on_manufactured_deadlock() {
        let m = Arc::new(LockManager::new(LockManagerConfig {
            watchdog: Some(Duration::from_millis(50)),
            ..Default::default()
        }));
        let ra = LockId::Page(PageId(1));
        let rb = LockId::Page(PageId(2));
        let a = m.new_owner();
        let b = m.new_owner();
        m.lock(a, ra, Xi);
        m.lock(b, rb, Xi);
        let m2 = Arc::clone(&m);
        let t1 = thread::spawn(move || m2.lock(a, rb, Xi));
        let m3 = Arc::clone(&m);
        let t2 = thread::spawn(move || m3.lock(b, ra, Xi));
        let r1 = t1.join();
        let r2 = t2.join();
        assert!(
            r1.is_err() || r2.is_err(),
            "at least one waiter must panic via the watchdog"
        );
        // Clean up whatever survived.
        m.release_all(a);
        m.release_all(b);
    }
}
