//! `VersionWord`: the seqlock version primitive for the optimistic
//! lock-free read path (ROADMAP item 1).
//!
//! A single even/odd counter guarding a small payload:
//!
//! * **Writers** (serialized externally by the α/ξ protocol) bracket
//!   payload mutation with [`VersionWord::write_begin`] (version goes
//!   odd) and [`VersionWord::write_end`] (version goes even again). The
//!   begin increment is `Acquire` so payload writes cannot hoist above
//!   it; the end increment is `Release` so they cannot sink below it —
//!   the end increment is the edge that *publishes* the payload.
//! * **Readers** never lock: [`VersionWord::read_begin`] snapshots an
//!   even version (odd means a writer is mid-flight — back off), the
//!   payload is read speculatively ([`crate::shadow::Tracked::get_speculative`]
//!   inside a [`crate::shadow::speculate`] scope), and
//!   [`VersionWord::validate`] re-loads the version: unchanged means no
//!   writer intervened and the `Acquire` re-load synchronizes with the
//!   writer's `Release` end — committing the speculation is then
//!   race-free by construction. A changed version means the values are
//!   garbage; abort and retry (or fall back to the ρ protocol).
//!
//! The happens-before race detector (`ceh check race`) is the gate for
//! this primitive: with the correct orderings the seqlock litmus runs
//! clean, and the `check-inject`-gated
//! [`VersionWord::write_end_missing_release`] variant — identical but for
//! a `Relaxed` end increment — must be caught, because the reader's
//! validating load then joins nothing and the committed payload reads are
//! unordered with the writer's stores.

use std::sync::atomic::Ordering;

use crate::shadow::TrackedAtomicU64;

/// A seqlock version word. Starts even (0); odd means a writer is active.
#[derive(Debug)]
pub struct VersionWord {
    v: TrackedAtomicU64,
}

impl VersionWord {
    /// A version word at version 0. `label` names it in race reports.
    pub fn new(label: &'static str) -> Self {
        VersionWord {
            v: TrackedAtomicU64::new(0, label),
        }
    }

    /// Begin an optimistic read: the current version if it is even,
    /// `None` if a writer is mid-update (caller should back off/retry).
    /// `Acquire`: pairs with the `Release` in [`VersionWord::write_end`].
    #[track_caller]
    pub fn read_begin(&self) -> Option<u64> {
        let v = self.v.load(Ordering::Acquire);
        (v % 2 == 0).then_some(v)
    }

    /// End an optimistic read: true iff the version still equals `v0`
    /// (no writer intervened; speculative reads may be committed).
    /// `Acquire`: this re-load is the edge that makes the commit sound.
    #[track_caller]
    #[must_use]
    pub fn validate(&self, v0: u64) -> bool {
        self.v.load(Ordering::Acquire) == v0
    }

    /// Writer entry: make the version odd. The caller must hold the
    /// resource's α/ξ lock (writers are externally serialized; this is
    /// checked with a debug assertion on evenness). `Acquire` keeps the
    /// payload writes from hoisting above the increment.
    #[track_caller]
    pub fn write_begin(&self) {
        let prev = self.v.fetch_add(1, Ordering::Acquire);
        debug_assert!(prev % 2 == 0, "concurrent VersionWord writers");
    }

    /// Writer exit: make the version even again, `Release`-publishing
    /// the payload writes to any reader whose `validate` sees the new
    /// version.
    #[track_caller]
    pub fn write_end(&self) {
        let prev = self.v.fetch_add(1, Ordering::Release);
        debug_assert!(prev % 2 == 1, "write_end without write_begin");
    }

    /// Deliberately-broken writer exit for detector self-tests: the
    /// increment is `Relaxed`, so the payload is *not* published and a
    /// reader that validates against the new version commits reads with
    /// no happens-before edge to the writer — the race `ceh check race`
    /// must catch. Only exists under `check-inject`.
    #[cfg(feature = "check-inject")]
    #[track_caller]
    pub fn write_end_missing_release(&self) {
        // ceh-lint: allow(relaxed-ordering) — the injected bug under test: publication edge deliberately dropped
        let prev = self.v.fetch_add(1, Ordering::Relaxed);
        debug_assert!(prev % 2 == 1, "write_end without write_begin");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_begins_even_and_validates() {
        let w = VersionWord::new("test.version");
        let v0 = w.read_begin().expect("fresh word is even");
        assert_eq!(v0, 0);
        assert!(w.validate(v0));
    }

    #[test]
    fn writer_brackets_flip_parity() {
        let w = VersionWord::new("test.version");
        let v0 = w.read_begin().unwrap();
        w.write_begin();
        assert_eq!(w.read_begin(), None, "odd while a writer is active");
        w.write_end();
        let v1 = w.read_begin().unwrap();
        assert_eq!(v1, v0 + 2);
        assert!(!w.validate(v0), "stale snapshot must not validate");
        assert!(w.validate(v1));
    }

    #[cfg(feature = "check-inject")]
    #[test]
    fn injected_end_still_advances_the_version() {
        let w = VersionWord::new("test.version");
        w.write_begin();
        w.write_end_missing_release();
        assert_eq!(w.read_begin(), Some(2));
    }
}
