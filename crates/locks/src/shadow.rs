//! Shadow-access seam: instrumentation wrappers the happens-before race
//! detector observes shared-memory accesses through.
//!
//! The schedule explorer in `ceh-check` serializes threads at lock-manager
//! wait points, which proves linearizability but says nothing about *data
//! races*: two accesses to the same location, at least one a write, with no
//! happens-before edge between them. ROADMAP item 1 (optimistic seqlock
//! readers) replaces ρ locks with raw atomics, so the verifier needs to see
//! individual shared accesses, not just lock operations. This module is
//! that seam:
//!
//! * [`Tracked<T>`] — a shared word the detector models as **plain**
//!   (non-atomic) data. Physically it is a relaxed atomic, so racy test
//!   programs stay UB-free, but the detector treats every `get`/`set` as
//!   an unsynchronized access and reports any pair not ordered by
//!   happens-before. This is the wrapper seqlock payloads go through.
//! * [`TrackedAtomicU32`]/[`TrackedAtomicU64`]/[`TrackedAtomicUsize`] —
//!   drop-in atomic wrappers. The detector never reports races *between*
//!   atomics; instead it extracts synchronization edges from their
//!   orderings: a `Release` store publishes the writer's vector clock to
//!   the location, an `Acquire` load joins it. A `Relaxed` store creates
//!   **no** edge — which is exactly how a missing `Release` is caught.
//! * [`page_read`]/[`page_write`] — whole-bucket-page accesses. The page
//!   store serializes page-granular reads/writes internally, so they are
//!   modeled as acquire/release atomic accesses on a per-page location.
//! * [`speculate`] — a validated-speculative-read scope for seqlock-style
//!   readers: reads inside the scope are buffered, not checked; on
//!   [`Speculation::commit`] (after the version validates) the detector
//!   checks that each read's last writer happens-before the *commit
//!   point* — the validating `Acquire` load supplies that edge in a
//!   correct seqlock. On [`Speculation::abort`] the reads are discarded
//!   unchecked (the reader threw the values away). **Seam contract:** a
//!   committed speculative read is not recorded as a read, so
//!   write-after-validated-read is deliberately not checked — the seqlock
//!   version word, not happens-before, is what orders those.
//!
//! Everything here is feature-gated on `check-race`: with the feature off
//! there is no sink, no label storage, and every access compiles down to
//! the bare atomic operation.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};

#[cfg(feature = "check-race")]
use std::sync::atomic::AtomicBool;
#[cfg(feature = "check-race")]
use std::sync::Arc;

/// Identifies one shadowed memory location for the duration of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShadowLoc {
    /// A tracked word, identified by its address (stable while the run's
    /// data structures are alive).
    Addr(usize),
    /// A whole bucket page behind the page store.
    Page(u64),
}

/// What kind of access a [`ShadowAccess`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Plain (non-atomic) read — race-checked.
    Read,
    /// Plain (non-atomic) write — race-checked.
    Write,
    /// Atomic load — never races; `Acquire` joins the location's clock.
    AtomicLoad,
    /// Atomic store — never races; `Release` publishes the thread's clock.
    AtomicStore,
    /// Atomic read-modify-write — never races; edges per its ordering.
    AtomicRmw,
}

/// One shadowed access, as delivered to the [`ShadowSink`].
#[derive(Debug, Clone, Copy)]
pub struct ShadowAccess {
    /// Where.
    pub loc: ShadowLoc,
    /// Human label for the location (`"dir.entry"`, `"seqlock.payload"`).
    pub label: &'static str,
    /// What kind of access.
    pub kind: AccessKind,
    /// True if the access has acquire semantics (`Acquire`/`AcqRel`/`SeqCst`).
    pub acquire: bool,
    /// True if the access has release semantics (`Release`/`AcqRel`/`SeqCst`).
    pub release: bool,
    /// True for a plain read inside a [`speculate`] scope: buffered and
    /// checked at commit time instead of immediately.
    pub speculative: bool,
    /// Source location of the access (via `#[track_caller]`).
    pub site: &'static std::panic::Location<'static>,
}

/// Consumer of shadowed accesses — implemented by `ceh-check`'s race
/// detector. Installed process-globally with [`set_shadow_sink`]; calls
/// arrive on whatever thread performed the access.
#[cfg(feature = "check-race")]
pub trait ShadowSink: Send + Sync {
    /// An access happened (called *before* the physical operation, with
    /// the calling thread guaranteed to perform it before yielding).
    fn on_access(&self, a: &ShadowAccess);
    /// A speculative-read scope validated; check its buffered reads
    /// against happens-before as of now.
    fn on_spec_commit(&self, site: &'static std::panic::Location<'static>);
    /// A speculative-read scope failed validation; discard its reads.
    fn on_spec_abort(&self);
}

#[cfg(feature = "check-race")]
static SINK_ON: AtomicBool = AtomicBool::new(false);
#[cfg(feature = "check-race")]
static SINK: parking_lot::Mutex<Option<Arc<dyn ShadowSink>>> = parking_lot::Mutex::new(None);

/// Install (or clear) the process-global [`ShadowSink`]. The caller must
/// serialize instrumented runs (the detector holds a global run lock);
/// install while no instrumented accesses are in flight.
#[cfg(feature = "check-race")]
pub fn set_shadow_sink(sink: Option<Arc<dyn ShadowSink>>) {
    let mut slot = SINK.lock();
    SINK_ON.store(sink.is_some(), Ordering::Release);
    *slot = sink;
}

/// The installed sink, if any (fast path: one relaxed load).
#[cfg(feature = "check-race")]
#[inline]
fn sink() -> Option<Arc<dyn ShadowSink>> {
    // A stale `false` skips instrumentation for an access already in
    // flight during install; the run lock forbids that interleaving.
    // ceh-lint: allow(relaxed-ordering) — fast-path flag ordered by the install handshake in set_shadow_sink
    if !SINK_ON.load(Ordering::Relaxed) {
        return None;
    }
    SINK.lock().clone()
}

#[cfg(feature = "check-race")]
#[inline]
fn emit(
    loc: ShadowLoc,
    label: &'static str,
    kind: AccessKind,
    order: Ordering,
    speculative: bool,
    site: &'static std::panic::Location<'static>,
) {
    if let Some(s) = sink() {
        s.on_access(&ShadowAccess {
            loc,
            label,
            kind,
            acquire: has_acquire(order),
            release: has_release(order),
            speculative,
            site,
        });
    }
}

/// Does `order` give the access acquire semantics? Classifies the
/// caller's ordering into an HB edge — it does not choose one.
#[cfg(feature = "check-race")]
fn has_acquire(order: Ordering) -> bool {
    use Ordering::{AcqRel, Acquire, SeqCst};
    // ceh-lint: allow(atomics-ordering) — this match IS the classifier for the caller's order
    matches!(order, Acquire | AcqRel | SeqCst)
}

/// Does `order` give the access release semantics?
#[cfg(feature = "check-race")]
fn has_release(order: Ordering) -> bool {
    use Ordering::{AcqRel, Release, SeqCst};
    // ceh-lint: allow(atomics-ordering) — this match IS the classifier for the caller's order
    matches!(order, Release | AcqRel | SeqCst)
}

/// The model order [`Tracked`] passes to [`emit`]: the access is modeled
/// *plain* (no HB edge), and the physical cell's ordering is handled
/// separately by [`TrackedWord`]. A named constant so the lint's
/// relaxed-ordering audit has one justification site instead of three.
#[cfg(feature = "check-race")]
// ceh-lint: allow(relaxed-ordering) — sentinel meaning "modeled plain", not an atomic access
const PLAIN: Ordering = Ordering::Relaxed;

mod sealed {
    pub trait Sealed {}
    impl Sealed for u32 {}
    impl Sealed for u64 {}
    impl Sealed for usize {}
}

/// Word types [`Tracked`] can hold. Sealed; implemented for `u32`,
/// `u64`, and `usize`.
pub trait TrackedWord: Copy + sealed::Sealed {
    /// The physical cell backing the word (an atomic, so racy test
    /// programs stay UB-free even though the access is *modeled* plain).
    #[doc(hidden)]
    type Repr: Sync + Send;
    /// Wrap a value.
    #[doc(hidden)]
    fn new_repr(v: Self) -> Self::Repr;
    /// Physical load.
    #[doc(hidden)]
    fn load_repr(r: &Self::Repr) -> Self;
    /// Physical store.
    #[doc(hidden)]
    fn store_repr(r: &Self::Repr, v: Self);
}

macro_rules! tracked_word {
    ($int:ty, $atomic:ty) => {
        impl TrackedWord for $int {
            type Repr = $atomic;
            fn new_repr(v: Self) -> Self::Repr {
                <$atomic>::new(v)
            }
            fn load_repr(r: &Self::Repr) -> Self {
                // Physically relaxed: the wrapper *models* a plain access
                // and the detector checks the protocol orders it; relaxed
                // on an atomic cell just keeps racy tests UB-free.
                // ceh-lint: allow(relaxed-ordering) — modeled as a plain access; ordering is the race detector's job
                r.load(Ordering::Relaxed)
            }
            fn store_repr(r: &Self::Repr, v: Self) {
                // ceh-lint: allow(relaxed-ordering) — modeled as a plain access; ordering is the race detector's job
                r.store(v, Ordering::Relaxed)
            }
        }
    };
}

tracked_word!(u32, AtomicU32);
tracked_word!(u64, AtomicU64);
tracked_word!(usize, AtomicUsize);

/// A shared word the race detector models as **plain** (unsynchronized)
/// data: every `get`/`set` pair on different threads must be ordered by
/// happens-before or the detector reports a race. Use for data whose
/// safety argument is "the protocol orders it" — seqlock payloads,
/// fields guarded by a version word.
///
/// Zero-cost when `check-race` is off: a relaxed atomic with no label
/// and no sink consultation.
pub struct Tracked<T: TrackedWord> {
    cell: T::Repr,
    #[cfg(feature = "check-race")]
    label: &'static str,
}

impl<T: TrackedWord> Tracked<T> {
    /// A tracked word. `label` names the location in race reports.
    pub fn new(v: T, label: &'static str) -> Self {
        #[cfg(not(feature = "check-race"))]
        let _ = label;
        Tracked {
            cell: T::new_repr(v),
            #[cfg(feature = "check-race")]
            label,
        }
    }

    #[cfg(feature = "check-race")]
    fn loc(&self) -> ShadowLoc {
        ShadowLoc::Addr(self as *const Self as usize)
    }

    /// Read the word (modeled as a plain read).
    #[track_caller]
    pub fn get(&self) -> T {
        #[cfg(feature = "check-race")]
        emit(
            self.loc(),
            self.label,
            AccessKind::Read,
            PLAIN,
            false,
            std::panic::Location::caller(),
        );
        T::load_repr(&self.cell)
    }

    /// Read the word inside a [`speculate`] scope: buffered, race-checked
    /// only if the scope commits.
    #[track_caller]
    pub fn get_speculative(&self) -> T {
        #[cfg(feature = "check-race")]
        emit(
            self.loc(),
            self.label,
            AccessKind::Read,
            PLAIN,
            true,
            std::panic::Location::caller(),
        );
        T::load_repr(&self.cell)
    }

    /// Write the word (modeled as a plain write).
    #[track_caller]
    pub fn set(&self, v: T) {
        #[cfg(feature = "check-race")]
        emit(
            self.loc(),
            self.label,
            AccessKind::Write,
            PLAIN,
            false,
            std::panic::Location::caller(),
        );
        T::store_repr(&self.cell, v)
    }
}

impl<T: TrackedWord + std::fmt::Debug> std::fmt::Debug for Tracked<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tracked({:?})", T::load_repr(&self.cell))
    }
}

macro_rules! tracked_atomic {
    ($(#[$meta:meta])* $name:ident, $atomic:ty, $int:ty) => {
        $(#[$meta])*
        pub struct $name {
            v: $atomic,
            #[cfg(feature = "check-race")]
            label: &'static str,
        }

        impl $name {
            /// A tracked atomic. `label` names the location in reports.
            pub fn new(v: $int, label: &'static str) -> Self {
                #[cfg(not(feature = "check-race"))]
                let _ = label;
                $name {
                    v: <$atomic>::new(v),
                    #[cfg(feature = "check-race")]
                    label,
                }
            }

            #[cfg(feature = "check-race")]
            fn loc(&self) -> ShadowLoc {
                ShadowLoc::Addr(self as *const Self as usize)
            }

            /// Atomic load; `Acquire` joins the location's release clock.
            #[track_caller]
            #[inline]
            pub fn load(&self, order: Ordering) -> $int {
                #[cfg(feature = "check-race")]
                emit(
                    self.loc(),
                    self.label,
                    AccessKind::AtomicLoad,
                    order,
                    false,
                    std::panic::Location::caller(),
                );
                self.v.load(order)
            }

            /// Atomic store; `Release` publishes the thread's clock.
            #[track_caller]
            #[inline]
            pub fn store(&self, v: $int, order: Ordering) {
                #[cfg(feature = "check-race")]
                emit(
                    self.loc(),
                    self.label,
                    AccessKind::AtomicStore,
                    order,
                    false,
                    std::panic::Location::caller(),
                );
                self.v.store(v, order)
            }

            /// Atomic add; acquire/release edges per `order`.
            #[track_caller]
            #[inline]
            pub fn fetch_add(&self, v: $int, order: Ordering) -> $int {
                #[cfg(feature = "check-race")]
                emit(
                    self.loc(),
                    self.label,
                    AccessKind::AtomicRmw,
                    order,
                    false,
                    std::panic::Location::caller(),
                );
                self.v.fetch_add(v, order)
            }

            /// Atomic subtract; acquire/release edges per `order`.
            #[track_caller]
            #[inline]
            pub fn fetch_sub(&self, v: $int, order: Ordering) -> $int {
                #[cfg(feature = "check-race")]
                emit(
                    self.loc(),
                    self.label,
                    AccessKind::AtomicRmw,
                    order,
                    false,
                    std::panic::Location::caller(),
                );
                self.v.fetch_sub(v, order)
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                // Diagnostic-only peek; not an instrumented access.
                // ceh-lint: allow(relaxed-ordering) — Debug peek, not a protocol access
                write!(f, "{}({})", stringify!($name), self.v.load(Ordering::Relaxed))
            }
        }
    };
}

tracked_atomic!(
    /// `AtomicU32` with shadow-access instrumentation (see module docs).
    TrackedAtomicU32,
    AtomicU32,
    u32
);
tracked_atomic!(
    /// `AtomicU64` with shadow-access instrumentation (see module docs).
    TrackedAtomicU64,
    AtomicU64,
    u64
);
tracked_atomic!(
    /// `AtomicUsize` with shadow-access instrumentation (see module docs).
    TrackedAtomicUsize,
    AtomicUsize,
    usize
);

/// Record a whole-page read from the bucket store. Modeled as an
/// acquire-atomic access on the page's location: the page store
/// serializes page-granular reads and writes internally, so pages cannot
/// race at this granularity (the lock protocol above, not this call, is
/// what keeps their *contents* coherent — and the optimistic read path
/// must switch contents reads to [`Tracked::get_speculative`] under a
/// bucket version word).
#[track_caller]
#[inline]
pub fn page_read(page: u64) {
    #[cfg(not(feature = "check-race"))]
    let _ = page;
    #[cfg(feature = "check-race")]
    emit(
        ShadowLoc::Page(page),
        "bucket.page",
        AccessKind::AtomicLoad,
        Ordering::Acquire,
        false,
        std::panic::Location::caller(),
    );
}

/// Record a whole-page write to the bucket store. Modeled as a
/// release-atomic access; see [`page_read`].
#[track_caller]
#[inline]
pub fn page_write(page: u64) {
    #[cfg(not(feature = "check-race"))]
    let _ = page;
    #[cfg(feature = "check-race")]
    emit(
        ShadowLoc::Page(page),
        "bucket.page",
        AccessKind::AtomicStore,
        Ordering::Release,
        false,
        std::panic::Location::caller(),
    );
}

/// Open a validated-speculative-read scope (see module docs). Reads made
/// with [`Tracked::get_speculative`] while the scope is open are buffered;
/// [`Speculation::commit`] race-checks them as of the commit point,
/// [`Speculation::abort`] (or dropping the scope) discards them.
pub fn speculate() -> Speculation {
    Speculation {
        #[cfg(feature = "check-race")]
        open: true,
    }
}

/// A speculative-read scope returned by [`speculate`].
#[must_use = "speculative reads are only race-checked if the scope is committed"]
pub struct Speculation {
    #[cfg(feature = "check-race")]
    open: bool,
}

impl Speculation {
    /// The guarded version validated: race-check the buffered reads
    /// against happens-before as of now.
    #[track_caller]
    pub fn commit(mut self) {
        #[cfg(feature = "check-race")]
        {
            self.open = false;
            if let Some(s) = sink() {
                s.on_spec_commit(std::panic::Location::caller());
            }
        }
        let _ = &mut self;
    }

    /// Validation failed: the reads were discarded by the caller, so
    /// discard their shadow records unchecked.
    pub fn abort(mut self) {
        #[cfg(feature = "check-race")]
        {
            self.open = false;
            if let Some(s) = sink() {
                s.on_spec_abort();
            }
        }
        let _ = &mut self;
    }
}

impl Drop for Speculation {
    fn drop(&mut self) {
        #[cfg(feature = "check-race")]
        if self.open {
            self.open = false;
            if let Some(s) = sink() {
                s.on_spec_abort();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracked_word_roundtrips() {
        let t: Tracked<u64> = Tracked::new(7, "test.word");
        assert_eq!(t.get(), 7);
        t.set(9);
        assert_eq!(t.get(), 9);
        assert_eq!(t.get_speculative(), 9);
        assert_eq!(format!("{t:?}"), "Tracked(9)");
    }

    #[test]
    fn tracked_atomics_mirror_std() {
        let a = TrackedAtomicU32::new(1, "test.u32");
        assert_eq!(a.load(Ordering::Acquire), 1);
        a.store(5, Ordering::Release);
        assert_eq!(a.fetch_add(2, Ordering::Relaxed), 5);
        assert_eq!(a.fetch_sub(3, Ordering::Relaxed), 7);
        assert_eq!(a.load(Ordering::Relaxed), 4);
        let b = TrackedAtomicUsize::new(0, "test.usize");
        b.fetch_add(1, Ordering::Relaxed);
        assert_eq!(b.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn speculation_scope_is_inert_without_a_sink() {
        let s = speculate();
        s.commit();
        let s = speculate();
        s.abort();
        let _dropped = speculate(); // abort-on-drop path
    }
}
