//! Lock modes, the compatibility matrix, and lockable resources.

use ceh_types::PageId;

/// The paper's three lock modes (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockMode {
    /// ρ — read lock. Compatible with ρ and α.
    Rho,
    /// α — "selective" lock. Compatible with ρ only: admits readers,
    /// excludes other updaters.
    Alpha,
    /// ξ — exclusive lock. Compatible with nothing.
    Xi,
}

impl LockMode {
    /// All modes, for table-driven tests.
    pub const ALL: [LockMode; 3] = [LockMode::Rho, LockMode::Alpha, LockMode::Xi];
}

impl std::fmt::Display for LockMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LockMode::Rho => write!(f, "ρ"),
            LockMode::Alpha => write!(f, "α"),
            LockMode::Xi => write!(f, "ξ"),
        }
    }
}

/// The compatibility matrix of §2.1, verbatim.
///
/// `compatible(requested, existing)` answers: may a `requested`-mode lock
/// be granted while an `existing`-mode lock is held by *another* process?
/// The matrix is symmetric, but we keep the paper's request/existing
/// framing.
#[inline]
pub const fn compatible(requested: LockMode, existing: LockMode) -> bool {
    use LockMode::*;
    match (requested, existing) {
        (Rho, Rho) => true,
        (Rho, Alpha) => true,
        (Rho, Xi) => false,
        (Alpha, Rho) => true,
        (Alpha, Alpha) => false,
        (Alpha, Xi) => false,
        (Xi, _) => false,
    }
}

/// A lockable component of the hash file: the directory as a whole, or a
/// single bucket page.
///
/// "The locking protocol uses various types of locks placed on the
/// directory (as a whole) and on individual buckets." (§2.1)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockId {
    /// The directory, locked as one unit.
    Directory,
    /// A bucket, identified by its disk page address.
    Page(PageId),
}

impl std::fmt::Display for LockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LockId::Directory => write!(f, "directory"),
            LockId::Page(p) => write!(f, "{p}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use LockMode::*;

    /// Every cell of the paper's compatibility table.
    #[test]
    fn compatibility_matrix_matches_paper() {
        // Rows: requested; columns: existing (ρ, α, ξ) — §2.1 table.
        let expect = [
            (Rho, [true, true, false]),
            (Alpha, [true, false, false]),
            (Xi, [false, false, false]),
        ];
        for (req, row) in expect {
            for (existing, want) in LockMode::ALL.into_iter().zip(row) {
                assert_eq!(
                    compatible(req, existing),
                    want,
                    "request {req} against existing {existing}"
                );
            }
        }
    }

    #[test]
    fn matrix_is_symmetric() {
        for a in LockMode::ALL {
            for b in LockMode::ALL {
                assert_eq!(compatible(a, b), compatible(b, a), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn display_uses_greek() {
        assert_eq!(LockMode::Rho.to_string(), "ρ");
        assert_eq!(LockMode::Alpha.to_string(), "α");
        assert_eq!(LockMode::Xi.to_string(), "ξ");
        assert_eq!(LockId::Directory.to_string(), "directory");
        assert_eq!(LockId::Page(PageId(4)).to_string(), "p4");
    }
}
