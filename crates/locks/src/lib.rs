//! # ceh-locks — ρ/α/ξ locking
//!
//! The paper's concurrency control rests on three lock modes placed "on the
//! directory (as a whole) and on individual buckets" (§2.1):
//!
//! | request ↓ \ existing → | ρ | α | ξ |
//! |---|---|---|---|
//! | **ρ** (read-lock)      | yes | yes | no |
//! | **α** (selective lock) | yes | no  | no |
//! | **ξ** (exclusive lock) | no  | no  | no |
//!
//! The α ("selective") mode is the interesting one: it admits concurrent
//! readers but excludes other updaters — it is what lets inserters run
//! under readers in both solutions.
//!
//! [`LockManager`] implements:
//!
//! * **fair FIFO granting "subject to the compatibility relationship"**
//!   (the fairness assumption of §2.3): a request is granted only when it
//!   is compatible with every granted lock *and* every earlier waiter, so
//!   a stream of readers cannot starve a waiting ξ;
//! * **conversion-style requests**: an owner that already holds a lock on
//!   a resource (Figure 8's inserter holds ρ on the directory and then
//!   requests α on it) bypasses the waiting queue and is checked against
//!   granted locks only — precisely the reasoning of §2.5 ("a process
//!   requesting an α-lock on the directory already holds a ρ-lock on it
//!   (essentially doing lock conversion) … The lock cannot be a ξ-lock
//!   because of the existing ρ-lock"). Queuing a conversion behind a
//!   waiting ξ would deadlock; bypassing is both safe and faithful;
//! * **reentrancy**: the same owner may acquire the same (resource, mode)
//!   multiple times; counts nest;
//! * **statistics** ([`LockStats`]) — grants, waits, wait time by mode —
//!   consumed by the benchmark harness;
//! * **wait-point hooks** ([`WaitHook`]): the acquire/block/release seam
//!   `ceh-check`'s deterministic schedule explorer plugs a cooperative
//!   scheduler into (one relaxed atomic load when unused);
//! * a **waits-for deadlock detector** ([`LockManager::detect_deadlock`]),
//!   armed by the stress tests to check the §2.3/§2.5 deadlock-freedom
//!   arguments empirically, with an optional watchdog that panics with the
//!   cycle when a wait exceeds a configured bound;
//! * **shadow-access instrumentation** ([`shadow`]): `Tracked`/
//!   `TrackedAtomic*` wrappers and a process-global [`shadow::ShadowSink`]
//!   seam that `ceh check race`'s happens-before detector observes shared
//!   accesses through (compiled away unless the `check-race` feature is
//!   on), plus the seqlock [`VersionWord`] primitive the detector gates.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod guard;
mod hook;
mod manager;
mod mode;
pub mod shadow;
mod stats;
mod version;

pub use guard::LockGuard;
pub use hook::WaitHook;
pub use manager::{LockManager, LockManagerConfig, OwnerId};
pub use mode::{compatible, LockId, LockMode};
pub use stats::{lock_trace_target, LockStats, LockStatsSnapshot};
pub use version::VersionWord;
