//! RAII lock guards.
//!
//! The protocol transcriptions in `ceh-core` use explicit
//! [`LockManager::lock`]/[`LockManager::unlock`] calls because the paper's
//! listings release locks in non-nested orders (hand-over-hand chains,
//! Figure 7's release-and-relock dance). Guards exist for user-facing code
//! and for tests that want panic-safety.

use crate::manager::{LockManager, OwnerId};
use crate::mode::{LockId, LockMode};

/// An RAII guard that releases its lock on drop.
#[must_use = "dropping the guard releases the lock immediately"]
pub struct LockGuard<'a> {
    mgr: &'a LockManager,
    owner: OwnerId,
    id: LockId,
    mode: LockMode,
    armed: bool,
}

impl<'a> LockGuard<'a> {
    /// Block until the lock is granted, returning a guard.
    pub fn acquire(mgr: &'a LockManager, owner: OwnerId, id: LockId, mode: LockMode) -> Self {
        mgr.lock(owner, id, mode);
        LockGuard {
            mgr,
            owner,
            id,
            mode,
            armed: true,
        }
    }

    /// Try to acquire without blocking.
    pub fn try_acquire(
        mgr: &'a LockManager,
        owner: OwnerId,
        id: LockId,
        mode: LockMode,
    ) -> Option<Self> {
        mgr.try_lock(owner, id, mode).then(|| LockGuard {
            mgr,
            owner,
            id,
            mode,
            armed: true,
        })
    }

    /// The guarded resource.
    pub fn id(&self) -> LockId {
        self.id
    }

    /// The held mode.
    pub fn mode(&self) -> LockMode {
        self.mode
    }

    /// Release early (equivalent to drop, but explicit at call sites that
    /// care about ordering).
    pub fn release(mut self) {
        self.release_inner();
    }

    /// Forget the guard without unlocking — hands responsibility back to
    /// explicit `unlock` calls. Used when protocol code briefly wants
    /// panic-safety around a fallible step.
    pub fn disarm(mut self) {
        self.armed = false;
    }

    fn release_inner(&mut self) {
        if self.armed {
            self.armed = false;
            self.mgr.unlock(self.owner, self.id, self.mode);
        }
    }
}

impl Drop for LockGuard<'_> {
    fn drop(&mut self) {
        self.release_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceh_types::PageId;

    const R: LockId = LockId::Page(PageId(3));

    #[test]
    fn guard_releases_on_drop() {
        let m = LockManager::default();
        let o = m.new_owner();
        {
            let _g = LockGuard::acquire(&m, o, R, LockMode::Xi);
            assert_eq!(m.total_granted(), 1);
        }
        assert_eq!(m.total_granted(), 0);
    }

    #[test]
    fn guard_releases_on_panic() {
        let m = LockManager::default();
        let o = m.new_owner();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = LockGuard::acquire(&m, o, R, LockMode::Alpha);
            panic!("boom");
        }));
        assert!(result.is_err());
        assert_eq!(m.total_granted(), 0, "guard must unlock during unwind");
    }

    #[test]
    fn try_acquire_respects_compatibility() {
        let m = LockManager::default();
        let a = m.new_owner();
        let b = m.new_owner();
        let g = LockGuard::try_acquire(&m, a, R, LockMode::Rho).unwrap();
        assert!(LockGuard::try_acquire(&m, b, R, LockMode::Xi).is_none());
        let g2 = LockGuard::try_acquire(&m, b, R, LockMode::Alpha).unwrap();
        g.release();
        g2.release();
        assert_eq!(m.total_granted(), 0);
    }

    #[test]
    fn disarm_leaves_lock_held() {
        let m = LockManager::default();
        let o = m.new_owner();
        LockGuard::acquire(&m, o, R, LockMode::Rho).disarm();
        assert_eq!(m.total_granted(), 1);
        m.unlock(o, R, LockMode::Rho);
    }
}
