//! Lock-manager statistics, recorded through the unified [`ceh_obs`]
//! metrics plane.
//!
//! Metric names (all under the `locks.` prefix):
//! `locks.grants.{rho,alpha,xi}`, `locks.waits.{rho,alpha,xi}`,
//! `locks.wait_ns.{rho,alpha,xi}` (histograms of per-wait latency),
//! `locks.releases`, `locks.conversions`.
//!
//! The [`LockStatsSnapshot`] shape predates the unified plane and is
//! kept as-is for every existing consumer; its `wait_ns_*` fields are
//! the wait-histogram sums.

use std::sync::Arc;
use std::time::Duration;

use ceh_obs::{Counter, Histogram, MetricsHandle, TraceCtx};

use crate::mode::{LockId, LockMode};

fn mode_idx(mode: LockMode) -> usize {
    match mode {
        LockMode::Rho => 0,
        LockMode::Alpha => 1,
        LockMode::Xi => 2,
    }
}

fn acquire_event(mode: LockMode) -> &'static str {
    match mode {
        LockMode::Rho => "acquire.rho",
        LockMode::Alpha => "acquire.alpha",
        LockMode::Xi => "acquire.xi",
    }
}

fn wait_event(mode: LockMode) -> &'static str {
    match mode {
        LockMode::Rho => "wait.rho",
        LockMode::Alpha => "wait.alpha",
        LockMode::Xi => "wait.xi",
    }
}

/// Encode a lock target for trace-event payloads (`u64::MAX` is the
/// directory, anything else a page id) — the inverse of
/// `ceh_obs::lock_target_label`.
pub fn lock_trace_target(id: LockId) -> u64 {
    match id {
        LockId::Directory => u64::MAX,
        LockId::Page(p) => p.0,
    }
}

/// Lock-event instruments maintained by the [`crate::LockManager`].
///
/// Resolved once from a [`MetricsHandle`] at construction; recording is
/// one sharded counter increment (plus a histogram record at wait end).
#[derive(Debug)]
pub struct LockStats {
    grants: [Arc<Counter>; 3],
    waits: [Arc<Counter>; 3],
    wait_hists: [Arc<Histogram>; 3],
    releases: Arc<Counter>,
    conversions: Arc<Counter>,
    /// Kept for span probes (acquire/wait/convert trace events); a
    /// disabled tracer makes each probe one relaxed atomic load.
    handle: MetricsHandle,
}

impl Default for LockStats {
    fn default() -> Self {
        Self::new()
    }
}

impl LockStats {
    /// Instruments in a fresh private registry (uncorrelated with any
    /// other layer — for standalone `LockManager`s).
    pub fn new() -> Self {
        Self::with_handle(&MetricsHandle::default())
    }

    /// Instruments registered under `locks.` in `handle`'s registry.
    pub fn with_handle(handle: &MetricsHandle) -> Self {
        LockStats {
            grants: [
                handle.counter("locks.grants.rho"),
                handle.counter("locks.grants.alpha"),
                handle.counter("locks.grants.xi"),
            ],
            waits: [
                handle.counter("locks.waits.rho"),
                handle.counter("locks.waits.alpha"),
                handle.counter("locks.waits.xi"),
            ],
            wait_hists: [
                handle.histogram("locks.wait_ns.rho"),
                handle.histogram("locks.wait_ns.alpha"),
                handle.histogram("locks.wait_ns.xi"),
            ],
            releases: handle.counter("locks.releases"),
            conversions: handle.counter("locks.conversions"),
            handle: handle.clone(),
        }
    }

    /// Stamp an instant against the ambient [`TraceCtx`] when one is
    /// set, or as a free-standing (trace-0) event otherwise, so lock
    /// activity stays visible in standalone runs too.
    fn stamp(&self, event: &'static str, target: u64) {
        let t = self.handle.tracer();
        if !t.is_enabled() {
            return;
        }
        let ctx = TraceCtx::current();
        if ctx.is_none() {
            t.record(ceh_obs::SpanId::NONE, "locks", event, target, 0);
        } else {
            t.instant(ctx, "locks", event, target, 0);
        }
    }

    /// Record a grant, stamping a `locks.acquire.<mode>` instant.
    pub(crate) fn record_grant(&self, mode: LockMode, _waited: bool, target: u64) {
        self.grants[mode_idx(mode)].inc();
        self.stamp(acquire_event(mode), target);
    }

    pub(crate) fn record_release(&self, _mode: LockMode) {
        self.releases.inc();
    }

    /// Open a `locks.wait.<mode>` span: the returned context must be
    /// passed to [`LockStats::record_wait_end`]. Wait spans root their
    /// own trace when no ambient context is set, so the contention
    /// profile covers standalone (non-distributed) runs too.
    pub(crate) fn record_wait_start(&self, mode: LockMode, target: u64) -> TraceCtx {
        self.waits[mode_idx(mode)].inc();
        let t = self.handle.tracer();
        if t.is_enabled() {
            t.begin(TraceCtx::current(), "locks", wait_event(mode), target, 0)
        } else {
            TraceCtx::NONE
        }
    }

    /// Close the wait span with the observed wait in `b` (nanoseconds);
    /// `a` repeats the encoded target so the contention profile can be
    /// built from `End` events alone.
    pub(crate) fn record_wait_end(
        &self,
        wait: TraceCtx,
        mode: LockMode,
        target: u64,
        elapsed: Duration,
    ) {
        let wait_ns = elapsed.as_nanos() as u64;
        self.wait_hists[mode_idx(mode)].record(wait_ns);
        // The waited grant itself:
        self.record_grant(mode, true, target);
        self.handle
            .tracer()
            .end(wait, "locks", wait_event(mode), target, wait_ns);
    }

    pub(crate) fn record_conversion(&self, target: u64) {
        self.conversions.inc();
        self.stamp("convert", target);
    }

    /// The per-mode wait-latency histogram (p50/p99/max of individual
    /// waits, not just the total the snapshot carries).
    pub fn wait_hist(&self, mode: LockMode) -> &Histogram {
        &self.wait_hists[mode_idx(mode)]
    }

    /// Copy out the current values.
    pub fn snapshot(&self) -> LockStatsSnapshot {
        LockStatsSnapshot {
            grants_rho: self.grants[0].get(),
            grants_alpha: self.grants[1].get(),
            grants_xi: self.grants[2].get(),
            releases: self.releases.get(),
            waits_rho: self.waits[0].get(),
            waits_alpha: self.waits[1].get(),
            waits_xi: self.waits[2].get(),
            wait_ns_rho: self.wait_hists[0].sum(),
            wait_ns_alpha: self.wait_hists[1].sum(),
            wait_ns_xi: self.wait_hists[2].sum(),
            conversions: self.conversions.get(),
        }
    }

    /// Zero all counters and wait histograms.
    pub fn reset(&self) {
        for c in self.grants.iter().chain(self.waits.iter()) {
            c.reset();
        }
        for h in &self.wait_hists {
            h.reset();
        }
        self.releases.reset();
        self.conversions.reset();
    }
}

/// A point-in-time copy of [`LockStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LockStatsSnapshot {
    /// ρ locks granted (immediate + after waiting).
    pub grants_rho: u64,
    /// α locks granted.
    pub grants_alpha: u64,
    /// ξ locks granted.
    pub grants_xi: u64,
    /// Total releases.
    pub releases: u64,
    /// ρ requests that had to wait.
    pub waits_rho: u64,
    /// α requests that had to wait.
    pub waits_alpha: u64,
    /// ξ requests that had to wait.
    pub waits_xi: u64,
    /// Total nanoseconds ρ requests spent waiting.
    pub wait_ns_rho: u64,
    /// Total nanoseconds α requests spent waiting.
    pub wait_ns_alpha: u64,
    /// Total nanoseconds ξ requests spent waiting.
    pub wait_ns_xi: u64,
    /// Conversion-style grants (owner already held a lock on the
    /// resource).
    pub conversions: u64,
}

impl LockStatsSnapshot {
    /// All grants.
    pub fn total_grants(&self) -> u64 {
        self.grants_rho + self.grants_alpha + self.grants_xi
    }

    /// All waits.
    pub fn total_waits(&self) -> u64 {
        self.waits_rho + self.waits_alpha + self.waits_xi
    }

    /// All wait time.
    pub fn total_wait_ns(&self) -> u64 {
        self.wait_ns_rho + self.wait_ns_alpha + self.wait_ns_xi
    }

    /// Fraction of grants that had to wait (0.0 when no grants).
    pub fn contention_ratio(&self) -> f64 {
        let g = self.total_grants();
        if g == 0 {
            0.0
        } else {
            self.total_waits() as f64 / g as f64
        }
    }

    /// Difference (self - earlier) for interval measurement.
    pub fn since(&self, e: &LockStatsSnapshot) -> LockStatsSnapshot {
        LockStatsSnapshot {
            grants_rho: self.grants_rho - e.grants_rho,
            grants_alpha: self.grants_alpha - e.grants_alpha,
            grants_xi: self.grants_xi - e.grants_xi,
            releases: self.releases - e.releases,
            waits_rho: self.waits_rho - e.waits_rho,
            waits_alpha: self.waits_alpha - e.waits_alpha,
            waits_xi: self.waits_xi - e.waits_xi,
            wait_ns_rho: self.wait_ns_rho - e.wait_ns_rho,
            wait_ns_alpha: self.wait_ns_alpha - e.wait_ns_alpha,
            wait_ns_xi: self.wait_ns_xi - e.wait_ns_xi,
            conversions: self.conversions - e.conversions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_math() {
        let s = LockStats::new();
        s.record_grant(LockMode::Rho, false, 0);
        s.record_grant(LockMode::Alpha, false, 0);
        let w = s.record_wait_start(LockMode::Xi, 0);
        s.record_wait_end(w, LockMode::Xi, 0, Duration::from_nanos(500));
        let snap = s.snapshot();
        assert_eq!(snap.total_grants(), 3);
        assert_eq!(snap.total_waits(), 1);
        assert_eq!(snap.total_wait_ns(), 500);
        assert!((snap.contention_ratio() - 1.0 / 3.0).abs() < 1e-9);
        s.reset();
        assert_eq!(s.snapshot(), LockStatsSnapshot::default());
    }

    #[test]
    fn shared_handle_sees_lock_metrics() {
        let handle = MetricsHandle::new();
        let s = LockStats::with_handle(&handle);
        s.record_grant(LockMode::Rho, false, 0);
        let w = s.record_wait_start(LockMode::Alpha, 0);
        s.record_wait_end(w, LockMode::Alpha, 0, Duration::from_nanos(250));
        s.record_release(LockMode::Rho);
        let m = handle.snapshot();
        assert_eq!(m.counter("locks.grants.rho"), 1);
        assert_eq!(m.counter("locks.grants.alpha"), 1);
        assert_eq!(m.counter("locks.waits.alpha"), 1);
        assert_eq!(m.counter("locks.releases"), 1);
        let wait = m.hist("locks.wait_ns.alpha").unwrap();
        assert_eq!(wait.count, 1);
        assert_eq!(wait.sum, 250);
    }
}
