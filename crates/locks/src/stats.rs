//! Lock-manager statistics.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::mode::LockMode;

/// Thread-safe counters maintained by the [`crate::LockManager`].
#[derive(Debug, Default)]
pub struct LockStats {
    grants_rho: AtomicU64,
    grants_alpha: AtomicU64,
    grants_xi: AtomicU64,
    releases: AtomicU64,
    waits_rho: AtomicU64,
    waits_alpha: AtomicU64,
    waits_xi: AtomicU64,
    wait_ns_rho: AtomicU64,
    wait_ns_alpha: AtomicU64,
    wait_ns_xi: AtomicU64,
    conversions: AtomicU64,
}

impl LockStats {
    /// New zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    fn grant_counter(&self, mode: LockMode) -> &AtomicU64 {
        match mode {
            LockMode::Rho => &self.grants_rho,
            LockMode::Alpha => &self.grants_alpha,
            LockMode::Xi => &self.grants_xi,
        }
    }

    fn wait_counter(&self, mode: LockMode) -> &AtomicU64 {
        match mode {
            LockMode::Rho => &self.waits_rho,
            LockMode::Alpha => &self.waits_alpha,
            LockMode::Xi => &self.waits_xi,
        }
    }

    fn wait_ns_counter(&self, mode: LockMode) -> &AtomicU64 {
        match mode {
            LockMode::Rho => &self.wait_ns_rho,
            LockMode::Alpha => &self.wait_ns_alpha,
            LockMode::Xi => &self.wait_ns_xi,
        }
    }

    pub(crate) fn record_grant(&self, mode: LockMode, _waited: bool) {
        self.grant_counter(mode).fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_release(&self, _mode: LockMode) {
        self.releases.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_wait_start(&self, mode: LockMode) {
        self.wait_counter(mode).fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_wait_end(&self, mode: LockMode, elapsed: Duration) {
        self.wait_ns_counter(mode)
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        // The waited grant itself:
        self.record_grant(mode, true);
    }

    pub(crate) fn record_conversion(&self) {
        self.conversions.fetch_add(1, Ordering::Relaxed);
    }

    /// Copy out the current values.
    pub fn snapshot(&self) -> LockStatsSnapshot {
        LockStatsSnapshot {
            grants_rho: self.grants_rho.load(Ordering::Relaxed),
            grants_alpha: self.grants_alpha.load(Ordering::Relaxed),
            grants_xi: self.grants_xi.load(Ordering::Relaxed),
            releases: self.releases.load(Ordering::Relaxed),
            waits_rho: self.waits_rho.load(Ordering::Relaxed),
            waits_alpha: self.waits_alpha.load(Ordering::Relaxed),
            waits_xi: self.waits_xi.load(Ordering::Relaxed),
            wait_ns_rho: self.wait_ns_rho.load(Ordering::Relaxed),
            wait_ns_alpha: self.wait_ns_alpha.load(Ordering::Relaxed),
            wait_ns_xi: self.wait_ns_xi.load(Ordering::Relaxed),
            conversions: self.conversions.load(Ordering::Relaxed),
        }
    }

    /// Zero all counters.
    pub fn reset(&self) {
        for c in [
            &self.grants_rho,
            &self.grants_alpha,
            &self.grants_xi,
            &self.releases,
            &self.waits_rho,
            &self.waits_alpha,
            &self.waits_xi,
            &self.wait_ns_rho,
            &self.wait_ns_alpha,
            &self.wait_ns_xi,
            &self.conversions,
        ] {
            c.store(0, Ordering::Relaxed);
        }
    }
}

/// A point-in-time copy of [`LockStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LockStatsSnapshot {
    /// ρ locks granted (immediate + after waiting).
    pub grants_rho: u64,
    /// α locks granted.
    pub grants_alpha: u64,
    /// ξ locks granted.
    pub grants_xi: u64,
    /// Total releases.
    pub releases: u64,
    /// ρ requests that had to wait.
    pub waits_rho: u64,
    /// α requests that had to wait.
    pub waits_alpha: u64,
    /// ξ requests that had to wait.
    pub waits_xi: u64,
    /// Total nanoseconds ρ requests spent waiting.
    pub wait_ns_rho: u64,
    /// Total nanoseconds α requests spent waiting.
    pub wait_ns_alpha: u64,
    /// Total nanoseconds ξ requests spent waiting.
    pub wait_ns_xi: u64,
    /// Conversion-style grants (owner already held a lock on the
    /// resource).
    pub conversions: u64,
}

impl LockStatsSnapshot {
    /// All grants.
    pub fn total_grants(&self) -> u64 {
        self.grants_rho + self.grants_alpha + self.grants_xi
    }

    /// All waits.
    pub fn total_waits(&self) -> u64 {
        self.waits_rho + self.waits_alpha + self.waits_xi
    }

    /// All wait time.
    pub fn total_wait_ns(&self) -> u64 {
        self.wait_ns_rho + self.wait_ns_alpha + self.wait_ns_xi
    }

    /// Fraction of grants that had to wait (0.0 when no grants).
    pub fn contention_ratio(&self) -> f64 {
        let g = self.total_grants();
        if g == 0 {
            0.0
        } else {
            self.total_waits() as f64 / g as f64
        }
    }

    /// Difference (self - earlier) for interval measurement.
    pub fn since(&self, e: &LockStatsSnapshot) -> LockStatsSnapshot {
        LockStatsSnapshot {
            grants_rho: self.grants_rho - e.grants_rho,
            grants_alpha: self.grants_alpha - e.grants_alpha,
            grants_xi: self.grants_xi - e.grants_xi,
            releases: self.releases - e.releases,
            waits_rho: self.waits_rho - e.waits_rho,
            waits_alpha: self.waits_alpha - e.waits_alpha,
            waits_xi: self.waits_xi - e.waits_xi,
            wait_ns_rho: self.wait_ns_rho - e.wait_ns_rho,
            wait_ns_alpha: self.wait_ns_alpha - e.wait_ns_alpha,
            wait_ns_xi: self.wait_ns_xi - e.wait_ns_xi,
            conversions: self.conversions - e.conversions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_math() {
        let s = LockStats::new();
        s.record_grant(LockMode::Rho, false);
        s.record_grant(LockMode::Alpha, false);
        s.record_wait_start(LockMode::Xi);
        s.record_wait_end(LockMode::Xi, Duration::from_nanos(500));
        let snap = s.snapshot();
        assert_eq!(snap.total_grants(), 3);
        assert_eq!(snap.total_waits(), 1);
        assert_eq!(snap.total_wait_ns(), 500);
        assert!((snap.contention_ratio() - 1.0 / 3.0).abs() < 1e-9);
        s.reset();
        assert_eq!(s.snapshot(), LockStatsSnapshot::default());
    }
}
