//! Wait-point hooks: the seam a deterministic scheduler plugs into.
//!
//! `ceh-check`'s schedule explorer needs to control *exactly* when each
//! virtual thread acquires, blocks on, and releases a lock. Rather than
//! fork the lock manager, the manager exposes its three scheduling-relevant
//! points as a [`WaitHook`]:
//!
//! * **`at_acquire`** — fired before an acquisition attempt is evaluated
//!   (the thread is *about to* lock). A scheduler may suspend the caller
//!   here to explore a different interleaving.
//! * **`at_block`** — fired, with no lock-table mutex held, each time a
//!   queued request finds itself ungrantable. The manager re-checks
//!   grantability when the call returns, so a hook that parks the calling
//!   thread until "something changed" replaces the internal condvar wait
//!   entirely: the manager never sleeps on its own while a hook is
//!   installed and the wait loop becomes deterministic.
//! * **`at_granted`** — fired after an acquisition has actually been
//!   granted (immediate, reentrant, conversion, or at the end of a wait).
//!   The happens-before race detector records its lock-acquire edge here:
//!   `at_acquire` fires *before* the grant decision, which is too early —
//!   the edge must join the clocks of releases that happened while the
//!   request waited.
//! * **`at_release`** — fired after a release has been applied (waiters on
//!   the resource are now eligible).
//!
//! A hook is per-manager and must be cheap to consult: the fast path is
//! one relaxed atomic load when no hook is installed. All callbacks run
//! with **no** manager-internal mutex held, so a hook may block the
//! calling thread for as long as it likes; it must not call back into the
//! same `LockManager`.

use crate::mode::{LockId, LockMode};
use crate::OwnerId;

/// Observer/controller of the lock manager's wait points. See module docs.
///
/// All methods default to no-ops so a hook may override only the points
/// it cares about.
pub trait WaitHook: Send + Sync {
    /// An acquisition of `mode` on `id` for `owner` is about to be
    /// evaluated (called before any grant decision, including reentrant
    /// and `try_lock` acquisitions).
    fn at_acquire(&self, owner: OwnerId, id: LockId, mode: LockMode) {
        let _ = (owner, id, mode);
    }

    /// The queued request (`owner`, `mode` on `id`) is not currently
    /// grantable. Called with no lock-table mutex held; when this returns
    /// the manager re-checks grantability. A scheduler should park the
    /// calling thread here until another thread has released a lock.
    fn at_block(&self, owner: OwnerId, id: LockId, mode: LockMode) {
        let _ = (owner, id, mode);
    }

    /// The acquisition of `mode` on `id` by `owner` has been granted
    /// (including reentrant nesting and successful `try_lock`s). Called
    /// with no lock-table mutex held. Under a serializing hook (the
    /// schedule explorer) every release that made the grant possible has
    /// already fired its [`WaitHook::at_release`] — the ordering the
    /// race detector's lock edges rely on.
    fn at_granted(&self, owner: OwnerId, id: LockId, mode: LockMode) {
        let _ = (owner, id, mode);
    }

    /// A release of `mode` on `id` by `owner` has been applied and any
    /// waiters on the resource are eligible to be re-checked.
    fn at_release(&self, owner: OwnerId, id: LockId, mode: LockMode) {
        let _ = (owner, id, mode);
    }
}
