//! Exhaustive lock *conversion* tests (§2.1/§2.5).
//!
//! The paper's protocols rely on three conversion shapes:
//!
//! * **ρ→α upgrade** — Figure 8's inserter holds ρ on the directory and
//!   requests α when it decides to split (likewise Figure 9's deleter);
//! * **α→ξ upgrade** — Solution 2's GC and the directory-doubling path
//!   escalate to full exclusion;
//! * **downgrades** — an owner acquires the stronger mode *alongside* the
//!   weaker one and releases the stronger, ending up with the weaker only
//!   (the manager models conversion as coexisting grants per owner).
//!
//! Conversions bypass the ordinary waiting queue (they are checked against
//! granted locks and earlier conversions only) — §2.5's deadlock-freedom
//! argument. The one genuinely deadlock-prone shape, two owners both
//! upgrading under a shared incompatible-with-upgrade hold, is pinned here
//! too: it must be *detected*, since no grant order can satisfy it.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use ceh_locks::{LockId, LockManager, LockMode};
use ceh_types::PageId;
use LockMode::*;

const R: LockId = LockId::Page(PageId(7));
const DIR: LockId = LockId::Directory;

/// ρ→α upgrade is granted immediately while only readers share the
/// resource (α is compatible with ρ, own grants are ignored).
#[test]
fn rho_to_alpha_upgrade_under_readers() {
    let m = LockManager::default();
    let up = m.new_owner();
    let reader = m.new_owner();
    m.lock(up, DIR, Rho);
    m.lock(reader, DIR, Rho);
    // The upgrade must not wait for the other ρ.
    assert!(m.try_lock(up, DIR, Alpha), "ρ→α must coexist with readers");
    assert_eq!(m.held(up, DIR).len(), 2, "ρ and α held simultaneously");
    m.unlock(up, DIR, Alpha);
    m.unlock(up, DIR, Rho);
    m.unlock(reader, DIR, Rho);
    assert_eq!(m.total_granted(), 0);
}

/// ρ→α upgrade waits for a *granted* α elsewhere (one updater at a time)
/// and proceeds when it releases.
#[test]
fn rho_to_alpha_upgrade_waits_for_other_alpha() {
    let m = Arc::new(LockManager::default());
    let a = m.new_owner();
    let b = m.new_owner();
    m.lock(a, DIR, Alpha);
    m.lock(b, DIR, Rho);
    assert!(
        !m.try_lock(b, DIR, Alpha),
        "second α refused while a holds α"
    );
    let m2 = Arc::clone(&m);
    let t = thread::spawn(move || {
        m2.lock(b, DIR, Alpha); // blocks until a releases α
        m2.unlock(b, DIR, Alpha);
        m2.unlock(b, DIR, Rho);
    });
    thread::sleep(Duration::from_millis(20));
    m.unlock(a, DIR, Alpha);
    t.join().unwrap();
    assert_eq!(m.total_granted(), 0);
}

/// The §2.5 case: a ρ→α conversion must bypass a waiting ξ (queuing behind
/// it would deadlock — the ξ waits on the converter's own ρ).
#[test]
fn rho_to_alpha_bypasses_waiting_xi() {
    let m = Arc::new(LockManager::default());
    let o = m.new_owner();
    m.lock(o, DIR, Rho);
    let m2 = Arc::clone(&m);
    let t = thread::spawn(move || {
        let d = m2.new_owner();
        m2.lock(d, DIR, Xi); // queues behind o's ρ
        m2.unlock(d, DIR, Xi);
    });
    thread::sleep(Duration::from_millis(20));
    m.lock(o, DIR, Alpha); // must be granted despite the queued ξ
    m.unlock(o, DIR, Alpha);
    m.unlock(o, DIR, Rho);
    t.join().unwrap();
    assert_eq!(m.total_granted(), 0);
}

/// α→ξ upgrade drains concurrent readers: refused while a ρ is out,
/// granted as soon as the owner is alone on the resource.
#[test]
fn alpha_to_xi_upgrade_waits_for_readers() {
    let m = Arc::new(LockManager::default());
    let up = m.new_owner();
    let reader = m.new_owner();
    m.lock(up, R, Alpha);
    m.lock(reader, R, Rho);
    assert!(!m.try_lock(up, R, Xi), "ξ upgrade must wait for readers");
    let m2 = Arc::clone(&m);
    let t = thread::spawn(move || {
        m2.lock(up, R, Xi); // blocks until the reader leaves
        m2.unlock(up, R, Xi);
        m2.unlock(up, R, Alpha);
    });
    thread::sleep(Duration::from_millis(20));
    m.unlock(reader, R, Rho);
    t.join().unwrap();
    assert_eq!(m.total_granted(), 0);
}

/// A pending α→ξ conversion does not admit *new* ordinary requests past it
/// (ordinary waiters respect pending conversions), so the upgrade cannot be
/// starved by a reader stream.
#[test]
fn pending_xi_conversion_blocks_new_readers() {
    let m = Arc::new(LockManager::default());
    let up = m.new_owner();
    let reader = m.new_owner();
    m.lock(up, R, Alpha);
    m.lock(reader, R, Rho);
    let m2 = Arc::clone(&m);
    let t = thread::spawn(move || {
        m2.lock(up, R, Xi);
        m2.unlock(up, R, Xi);
        m2.unlock(up, R, Alpha);
    });
    thread::sleep(Duration::from_millis(20)); // the ξ conversion is pending
    assert!(
        !m.try_lock(m.new_owner(), R, Rho),
        "a new ρ must not jump a pending ξ conversion"
    );
    m.unlock(reader, R, Rho);
    t.join().unwrap();
    assert_eq!(m.total_granted(), 0);
}

/// Downgrades: ξ→α→ρ by acquiring the weaker mode alongside and releasing
/// the stronger. After each step, the modes other owners can get reflect
/// exactly the remaining strength.
#[test]
fn downgrade_xi_to_alpha_to_rho() {
    let m = LockManager::default();
    let o = m.new_owner();
    let other = m.new_owner();
    m.lock(o, R, Xi);
    assert!(!m.try_lock(other, R, Rho), "ξ excludes readers");

    // ξ → α: acquire α (a conversion: own ξ is ignored), drop ξ.
    m.lock(o, R, Alpha);
    m.unlock(o, R, Xi);
    assert_eq!(m.held(o, R), vec![Alpha]);
    assert!(m.try_lock(other, R, Rho), "α admits readers");
    assert!(!m.try_lock(other, R, Alpha), "α still excludes updaters");
    m.unlock(other, R, Rho);

    // α → ρ: acquire ρ, drop α.
    m.lock(o, R, Rho);
    m.unlock(o, R, Alpha);
    assert_eq!(m.held(o, R), vec![Rho]);
    assert!(m.try_lock(other, R, Alpha), "ρ admits an updater");
    m.unlock(other, R, Alpha);

    m.unlock(o, R, Rho);
    assert_eq!(m.total_granted(), 0);
}

/// Two owners both holding ρ and both requesting α serialize — the paper's
/// insert/insert race resolves without deadlock because α is compatible
/// with the ρ each still holds.
#[test]
fn concurrent_rho_to_alpha_upgrades_serialize() {
    let m = Arc::new(LockManager::default());
    let a = m.new_owner();
    let b = m.new_owner();
    m.lock(a, DIR, Rho);
    m.lock(b, DIR, Rho);
    m.lock(a, DIR, Alpha); // granted: α vs two ρ is fine
    assert!(!m.try_lock(b, DIR, Alpha), "second α waits for the first");
    let m2 = Arc::clone(&m);
    let t = thread::spawn(move || {
        m2.lock(b, DIR, Alpha);
        m2.unlock(b, DIR, Alpha);
        m2.unlock(b, DIR, Rho);
    });
    thread::sleep(Duration::from_millis(20));
    m.unlock(a, DIR, Alpha);
    m.unlock(a, DIR, Rho);
    t.join().unwrap();
    assert_eq!(m.total_granted(), 0);
}

/// The deadlock-prone double upgrade: two owners each hold α on the same
/// resource... α+α cannot coexist, so the true trap is two owners holding
/// *α-incompatible-with-target* modes and both escalating: here both hold
/// ρ and both request **ξ**. Each pending ξ is blocked by the other's ρ
/// forever — no grant order exists. The protocols avoid this shape by
/// escalating through α (see `concurrent_rho_to_alpha_upgrades_serialize`);
/// the detector must call it out as a cycle.
#[test]
fn double_rho_to_xi_upgrade_deadlocks_and_is_detected() {
    let m = Arc::new(LockManager::default());
    let a = m.new_owner();
    let b = m.new_owner();
    m.lock(a, R, Rho);
    m.lock(b, R, Rho);
    let m2 = Arc::clone(&m);
    let _t1 = thread::spawn(move || m2.lock(a, R, Xi));
    let m3 = Arc::clone(&m);
    let _t2 = thread::spawn(move || m3.lock(b, R, Xi));
    thread::sleep(Duration::from_millis(50));
    let cycle = m
        .detect_deadlock()
        .expect("double ρ→ξ upgrade must be reported as a deadlock cycle");
    assert_eq!(cycle.len(), 2, "exactly the two upgraders: {cycle:?}");
    assert!(cycle.contains(&a) && cycle.contains(&b));
    // Break the cycle so the detached threads can finish.
    m.release_all(a);
    m.release_all(b);
}

/// The α+α upgrade with a *mixed* pair is also deadlock-prone: A holds α
/// and upgrades to ξ while B holds ρ and upgrades to α. A's ξ waits on
/// B's ρ; B's α waits on A's α — a two-conversion cycle the detector must
/// find (conversions wait on grants and earlier conversions).
#[test]
fn mixed_conversion_cycle_is_detected() {
    let m = Arc::new(LockManager::default());
    let a = m.new_owner();
    let b = m.new_owner();
    m.lock(a, R, Alpha);
    m.lock(b, R, Rho);
    let m2 = Arc::clone(&m);
    let _t1 = thread::spawn(move || m2.lock(a, R, Xi)); // waits on b's ρ
    thread::sleep(Duration::from_millis(20));
    let m3 = Arc::clone(&m);
    let _t2 = thread::spawn(move || m3.lock(b, R, Alpha)); // waits on a's α
    thread::sleep(Duration::from_millis(50));
    let cycle = m
        .detect_deadlock()
        .expect("mixed α→ξ / ρ→α conversion cycle must be detected");
    assert!(cycle.contains(&a) && cycle.contains(&b), "cycle {cycle:?}");
    m.release_all(a);
    m.release_all(b);
}

/// Reentrancy composes with conversion: an owner that upgraded ρ→α may
/// re-acquire either mode; counts nest and unlock order is free.
#[test]
fn reentrant_acquisition_during_conversion() {
    let m = LockManager::default();
    let o = m.new_owner();
    m.lock(o, DIR, Rho);
    m.lock(o, DIR, Alpha);
    m.lock(o, DIR, Rho); // reentrant ρ while converted
    m.lock(o, DIR, Alpha); // reentrant α
    let held = m.held(o, DIR);
    assert_eq!(held.len(), 2);
    assert!(held.contains(&Rho) && held.contains(&Alpha));
    m.unlock(o, DIR, Alpha);
    m.unlock(o, DIR, Rho);
    m.unlock(o, DIR, Alpha);
    m.unlock(o, DIR, Rho);
    assert_eq!(m.total_granted(), 0);
}
