//! Lock-manager stress tests: under random schedules, the manager must
//! never simultaneously grant two incompatible locks on one resource, and
//! it must reach quiescence (every grant released, no stuck waiters).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use ceh_locks::{compatible, LockId, LockManager, LockManagerConfig, LockMode};
use ceh_types::PageId;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// External observer: records which (resource, mode) pairs are *believed
/// held* by test threads and asserts pairwise compatibility on each entry.
/// The lock manager itself is not consulted — this validates its behaviour
/// from outside.
#[derive(Default)]
struct HeldTracker {
    held: Mutex<HashMap<LockId, Vec<(u64, LockMode)>>>,
}

impl HeldTracker {
    fn enter(&self, thread: u64, id: LockId, mode: LockMode) {
        let mut held = self.held.lock();
        let entry = held.entry(id).or_default();
        for &(other_thread, other_mode) in entry.iter() {
            assert!(
                other_thread == thread || compatible(mode, other_mode),
                "incompatible simultaneous grants on {id}: thread {thread} got {mode} \
                 while thread {other_thread} holds {other_mode}"
            );
        }
        entry.push((thread, mode));
    }

    fn exit(&self, thread: u64, id: LockId, mode: LockMode) {
        let mut held = self.held.lock();
        let entry = held.get_mut(&id).expect("exit without enter");
        let pos = entry
            .iter()
            .position(|&(t, m)| t == thread && m == mode)
            .expect("exit without matching enter");
        entry.remove(pos);
    }
}

#[test]
fn random_schedules_never_violate_compatibility() {
    let mgr = Arc::new(LockManager::new(LockManagerConfig {
        watchdog: Some(Duration::from_secs(10)),
        ..Default::default()
    }));
    let tracker = Arc::new(HeldTracker::default());
    const THREADS: u64 = 8;
    const OPS: usize = 4000;
    const RESOURCES: u64 = 5; // few resources → heavy contention

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let mgr = Arc::clone(&mgr);
            let tracker = Arc::clone(&tracker);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xE1115 + t);
                for _ in 0..OPS {
                    let id = if rng.random_bool(0.3) {
                        LockId::Directory
                    } else {
                        LockId::Page(PageId(rng.random_range(0..RESOURCES)))
                    };
                    let mode = match rng.random_range(0..10) {
                        0..=5 => LockMode::Rho,
                        6..=8 => LockMode::Alpha,
                        _ => LockMode::Xi,
                    };
                    let owner = mgr.new_owner();
                    mgr.lock(owner, id, mode);
                    tracker.enter(t, id, mode);
                    // Tiny critical section with occasional nested lock on
                    // a second resource, always acquired in a global order
                    // (Directory first, then ascending pages) so the test
                    // itself cannot deadlock.
                    if rng.random_bool(0.2) {
                        if let LockId::Page(p) = id {
                            let second = LockId::Page(PageId(p.0 + RESOURCES));
                            mgr.lock(owner, second, LockMode::Rho);
                            tracker.enter(t, second, LockMode::Rho);
                            tracker.exit(t, second, LockMode::Rho);
                            mgr.unlock(owner, second, LockMode::Rho);
                        }
                    }
                    std::hint::spin_loop();
                    tracker.exit(t, id, mode);
                    mgr.unlock(owner, id, mode);
                }
            })
        })
        .collect();

    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(mgr.total_granted(), 0, "all locks released at quiescence");
    assert!(mgr.detect_deadlock().is_none());
    let stats = mgr.stats();
    assert_eq!(stats.total_grants(), stats.releases);
}

#[test]
fn conversion_storm_makes_progress() {
    // Many owners concurrently do the Figure-8 pattern: hold ρ on the
    // directory, convert to α, release both. With queue-bypassing
    // conversions this must complete; with naive queuing it deadlocks
    // whenever a ξ waiter wedges between ρ and α.
    let mgr = Arc::new(LockManager::new(LockManagerConfig {
        watchdog: Some(Duration::from_secs(10)),
        ..Default::default()
    }));
    let dir = LockId::Directory;

    let converters: Vec<_> = (0..6)
        .map(|t| {
            let mgr = Arc::clone(&mgr);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(t);
                for _ in 0..500 {
                    let o = mgr.new_owner();
                    mgr.lock(o, dir, LockMode::Rho);
                    if rng.random_bool(0.5) {
                        mgr.lock(o, dir, LockMode::Alpha);
                        mgr.unlock(o, dir, LockMode::Alpha);
                    }
                    mgr.unlock(o, dir, LockMode::Rho);
                }
            })
        })
        .collect();
    // Meanwhile ξ lockers keep arriving (the Figure-9 GC phase).
    let xi_lockers: Vec<_> = (0..2)
        .map(|t| {
            let mgr = Arc::clone(&mgr);
            std::thread::spawn(move || {
                let _ = t;
                for _ in 0..100 {
                    let o = mgr.new_owner();
                    mgr.lock(o, dir, LockMode::Xi);
                    mgr.unlock(o, dir, LockMode::Xi);
                }
            })
        })
        .collect();

    for h in converters.into_iter().chain(xi_lockers) {
        h.join().unwrap();
    }
    assert_eq!(mgr.total_granted(), 0);
}
