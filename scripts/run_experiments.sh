#!/usr/bin/env bash
# Regenerate every experiment table into results/.
#
#   ./scripts/run_experiments.sh            # full runs (tens of minutes)
#   CEH_QUICK=1 ./scripts/run_experiments.sh  # fast smoke pass
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p ceh-bench --bins
mkdir -p results

EXPERIMENTS=(
  exp_scaling            # E1
  exp_update_sweep       # E2
  exp_reader_latency     # E3
  exp_recovery           # E4 + E11 (also writes results/exp_durability.json)
  exp_bucket_size        # E5
  exp_vs_btree           # E6
  exp_dist_messages      # E7
  exp_dist_staleness     # E8
  exp_dist_scaling       # E9
  exp_ablation_nextlinks # A1
  exp_ablation_commonbits# A2
  exp_merge_threshold    # A3
  exp_gc_strategy        # A4
  exp_fault_tolerance    # E10
  exp_transport          # E12 (also writes results/exp_transport.json)
)

for exp in "${EXPERIMENTS[@]}"; do
  echo "=== $exp ==="
  ./target/release/"$exp" | tee "results/$exp.md"
done

echo
echo "All experiment tables written to results/. Criterion micro-benches:"
echo "  cargo bench -p ceh-bench"
