#!/usr/bin/env bash
# The full CI gate, runnable locally:
#
#   ./scripts/ci.sh
#
# Formatting, lints, the complete test suite, and a quick chaos smoke
# (the seeded fault-injection test from tests/chaos.rs at its CI-sized
# workload). Mirrors .github/workflows/ci.yml.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== fmt ==="
cargo fmt --all -- --check

echo "=== clippy ==="
cargo clippy --workspace --all-targets -- -D warnings

echo "=== test ==="
cargo test -q --workspace

echo "=== chaos smoke ==="
CEH_QUICK=1 cargo test -q -p ceh-harness --test chaos

echo "CI gate passed."
