#!/usr/bin/env bash
# The full CI gate, runnable locally:
#
#   ./scripts/ci.sh
#
# Formatting, lints, the complete test suite, and a quick chaos smoke
# (the seeded fault-injection test from tests/chaos.rs at its CI-sized
# workload). Mirrors .github/workflows/ci.yml.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== fmt ==="
cargo fmt --all -- --check

echo "=== clippy ==="
cargo clippy --workspace --all-targets -- -D warnings

echo "=== clippy (ceh-obs, pedantic surface) ==="
# The observability core is new shared infrastructure: hold it to
# warnings-as-errors on its own, too, so workspace-wide allow()s can
# never mask a regression in it.
cargo clippy -p ceh-obs --all-targets -- -D warnings

echo "=== test ==="
cargo test -q --workspace

echo "=== chaos smoke ==="
CEH_QUICK=1 cargo test -q -p ceh-harness --test chaos

echo "=== transport smoke ==="
# The distributed hash file as real processes: `ceh serve` children on
# loopback sockets driven by `ceh client`, once over clean sockets and
# once under a seeded drop/dup/sever plan with a bucket manager
# SIGKILLed mid-workload and restarted from its data directory — the
# workload's exact oracle must hold both times.
CEH_QUICK=1 cargo test -q -p ceh-cli --release --test transport_smoke

echo "=== top smoke ==="
# The live observability plane: a 4-node `ceh serve` cluster under an
# injected per-frame delay, a short workload, then `ceh top --once
# --json` — the document must validate against
# schemas/live_snapshot.schema.json with nonzero windowed ops/s and a
# populated slow-op entry, and a SIGKILLed bucket manager must show as
# a marked-stale row within the bounded poll deadline.
CEH_QUICK=1 cargo test -q -p ceh-cli --release --test top_smoke

echo "=== storage smoke ==="
# Real durable files: `ceh serve --backend file --data-dir` children are
# filled, every bucket manager is SIGKILLed with no warning, the
# processes restart over the same directories, and every acked key must
# read back from frames.ceh/wal.ceh — zero acked-data loss.
CEH_QUICK=1 cargo test -q -p ceh-cli --release --test storage_smoke

echo "=== metrics smoke ==="
# 10k-op mixed workload; the emitted RunReport JSON must validate
# against schemas/run_report.schema.json and conserve operation counts.
cargo run -q --release -p ceh-bench --bin metrics_smoke -- --json > /dev/null

echo "=== trace smoke ==="
# Seeded cluster workload with causal tracing on; the Chrome-format
# export must validate against schemas/trace.schema.json and at least
# one trace must carry a full request → dispatch → bucket chain.
cargo run -q --release -p ceh-bench --bin trace_smoke -- --json > /dev/null

echo "=== lock-discipline lint ==="
# ceh-lint must be clean over crates/ (violations are fixed or carry an
# inline `ceh-lint: allow(...)` justification).
cargo run -q --release -p ceh-check --bin ceh-lint

echo "=== check smoke ==="
# Bounded-exhaustive schedule exploration (bound 3, no pruning, 2-thread
# workloads; bound 2 pruned for 3 threads), a real-thread
# linearizability run, and the lint — all must come back clean.
cargo run -q --release -p ceh-bench --bin check_smoke

echo "=== detector self-test (check-inject) ==="
# The feature-gated label-A mutation must be *caught* by the explorer
# with a replayable minimized schedule — proof the detector has teeth.
# Separate invocation: the feature flips the code under test.
cargo test -q -p ceh-check --release --features check-inject --test inject

echo "=== race smoke (check-race) ==="
# The happens-before race detector: litmus-corpus verdicts must match
# (racy programs caught with a minimized two-access witness, race-free
# programs clean), the four deterministic workloads must be race-clean
# at preemption bound 3, and the committed race-fixture corpus must
# still *reproduce* its races. Separate invocations: the feature
# compiles the shadow-access seam in.
cargo run -q --release -p ceh-cli --features check-race --bin ceh -- check race --bound 3
cargo test -q -p ceh-check --release --features check-race --test race

echo "=== race smoke (injected seqlock bug) ==="
# The check-inject missing-Release seqlock writer must be caught, blamed
# on the payload via the committed speculative read, minimized, and
# reproducible from its committed fixture.
cargo test -q -p ceh-check --release --features "check-race check-inject" --test race_inject

echo "=== schedule-fixture corpus ==="
# Every committed minimized schedule must replay clean on the current
# protocol (a reproduced violation means a pinned bug is back).
cargo test -q -p ceh-harness --release --test schedule_fixtures

echo "=== crash smoke ==="
# The recovery fuzzer's seeded crash-point sweep (power cut at every
# reachable durability point, recovery held to the durability oracle),
# one distributed crash_site/restart_site round, and a RunReport carrying
# the storage.wal.* / storage.recovery.* counters validated against
# schemas/run_report.schema.json.
cargo run -q --release -p ceh-bench --bin crash_smoke -- --json > /dev/null

echo "=== crash-fixture corpus ==="
# Every committed crash fixture must replay clean: the durability bug it
# pins (e.g. the mid-truncate replay regression) must stay fixed.
cargo test -q -p ceh-harness --release --test crash_fixtures

echo "CI gate passed."
