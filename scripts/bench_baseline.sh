#!/usr/bin/env bash
# Capture the repository's performance baseline into a JSON file:
#
#   ./scripts/bench_baseline.sh               # writes BENCH_baseline.json
#   ./scripts/bench_baseline.sh out.json      # writes out.json
#
# Two suites feed it:
#   * the A2 micro benchmarks (`cargo bench -p ceh-bench --bench micro`):
#     per-primitive mean ns/iter — hashing, the page codec, page I/O,
#     and each lock mode;
#   * E7 (`exp_dist_messages`): messages per operation at each
#     directory-replication level.
#
# The checked-in BENCH_baseline.json is the pre-observability seed
# measurement; re-run this script on the same class of machine and
# compare (the metrics plane is budgeted at <= 5% on the micro suite).
set -euo pipefail
cd "$(dirname "$0")/.."
out="${1:-BENCH_baseline.json}"

micro_txt=$(mktemp)
dist_txt=$(mktemp)
trap 'rm -f "$micro_txt" "$dist_txt"' EXIT

echo "=== micro benchmarks ===" >&2
cargo bench -p ceh-bench --bench micro 2>/dev/null | tee "$micro_txt" >&2

echo "=== E7 dist message counts ===" >&2
CEH_QUICK="${CEH_QUICK:-1}" cargo run -q --release -p ceh-bench --bin exp_dist_messages \
    | tee "$dist_txt" >&2

{
    printf '{\n'
    printf '  "generated_by": "scripts/bench_baseline.sh",\n'

    # "name: mean 75.1 ns / iter (26421915 iters)" -> "name": 75.1
    printf '  "micro_ns": {\n'
    awk '/ns \/ iter/ {
        name = $1; sub(/:$/, "", name)
        vals[++n] = sprintf("    \"%s\": %s", name, $3)
    } END {
        for (i = 1; i <= n; i++) printf "%s%s\n", vals[i], (i < n ? "," : "")
    }' "$micro_txt"
    printf '  },\n'

    # "|   2 |  4.04 | ..." -> "replicas_2": 4.04 (total messages/op)
    printf '  "dist_msgs_per_op": {\n'
    awk -F'|' '/^\|[[:space:]]*[0-9]+[[:space:]]*\|/ {
        r = $2; gsub(/[[:space:]]/, "", r)
        t = $3; gsub(/[[:space:]]/, "", t)
        vals[++n] = sprintf("    \"replicas_%s\": %s", r, t)
    } END {
        for (i = 1; i <= n; i++) printf "%s%s\n", vals[i], (i < n ? "," : "")
    }' "$dist_txt"
    printf '  }\n'
    printf '}\n'
} > "$out"

echo "wrote $out" >&2
