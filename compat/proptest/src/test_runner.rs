//! The case loop behind the [`crate::proptest!`] macro.

/// How many cases to run per property.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases required.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single case did not succeed.
#[derive(Debug)]
pub enum TestCaseError {
    /// The property is violated — fails the whole test.
    Fail(String),
    /// `prop_assume!` discarded the inputs — draw a fresh case.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// The deterministic per-test generator strategies draw from.
/// Counter-mode splitmix64, same construction as the workspace's other
/// seeded RNGs.
#[derive(Debug, Clone)]
pub struct TestRng {
    key: u64,
    ctr: u64,
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// A generator for the given seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            key: splitmix64(splitmix64(seed)),
            ctr: 0,
        }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.ctr = self.ctr.wrapping_add(1);
        splitmix64(self.key ^ splitmix64(self.ctr))
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Run `config.cases` successful cases of `f`, panicking on the first
/// failure. Case seeds derive from the test name, so runs are
/// deterministic and a failure reproduces on re-run.
pub fn run<F>(name: &str, config: ProptestConfig, mut f: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = fnv1a(name);
    let mut successes = 0u32;
    let mut rejects = 0u64;
    let reject_budget = (config.cases as u64).max(1) * 20;
    let mut case = 0u64;
    while successes < config.cases {
        let seed = base ^ splitmix64(case);
        let mut rng = TestRng::new(seed);
        match f(&mut rng) {
            Ok(()) => successes += 1,
            Err(TestCaseError::Reject(_)) => {
                rejects += 1;
                if rejects > reject_budget {
                    panic!(
                        "property `{name}`: too many prop_assume! rejections \
                         ({rejects} rejects for {successes} successes)"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("property `{name}` failed at case {case} (seed {seed:#018x}): {msg}");
            }
        }
        case += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_is_deterministic() {
        let mut a = Vec::new();
        run("det", ProptestConfig::with_cases(5), |rng| {
            a.push(rng.next_u64());
            Ok(())
        });
        let mut b = Vec::new();
        run("det", ProptestConfig::with_cases(5), |rng| {
            b.push(rng.next_u64());
            Ok(())
        });
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "too many prop_assume! rejections")]
    fn reject_budget_bounds_the_loop() {
        run("rejects", ProptestConfig::with_cases(4), |_| {
            Err(TestCaseError::reject("never satisfiable"))
        });
    }
}
