//! Offline stand-in for the `proptest` crate (see `compat/README.md`).
//!
//! Implements the subset this workspace's property tests use — the
//! [`proptest!`] macro, [`strategy::Strategy`] with `prop_map`,
//! [`prop_oneof!`], tuple/range/`any` strategies,
//! [`collection::vec`], `prop_assert*` and [`prop_assume!`] — as plain
//! seeded random testing. Differences from the real crate, deliberately
//! accepted:
//!
//! * **no shrinking** — a failing case reports its inputs and the seed,
//!   not a minimized counterexample;
//! * **deterministic seeds** — cases derive from a hash of the test
//!   name, so a failure reproduces exactly on re-run (the real crate
//!   randomizes and persists regressions instead);
//! * strategies sample uniformly (no bias toward edge values).

pub mod strategy;

pub mod test_runner;

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds for a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy producing a `Vec` of `element` values with a length
    /// drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// What everyone imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Run the cases of one property, panicking on the first failure.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal: expands each `fn name(args in strategies) { body }` item.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run(stringify!($name), $cfg, |__rng| {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                $body
                ::std::result::Result::Ok(())
            });
        }
        $crate::__proptest_items! { @cfg ($cfg) $($rest)* }
    };
}

/// Assert inside a property; failure fails the case with location info.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} at {}:{}", format_args!($($fmt)+), file!(), line!()),
            ));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            format_args!($($fmt)+),
            left,
            right
        );
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Discard the current case (does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Choose uniformly among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_any(x in 3u32..10, y in any::<u64>(), z in 0usize..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert_eq!(y, y);
            prop_assert!(z <= 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Doc comments and config headers are accepted.
        #[test]
        fn vec_and_map_and_oneof(
            v in crate::collection::vec(any::<u8>(), 2..=5),
            w in prop_oneof![Just(1u8), Just(2u8), (0u8..1).prop_map(|x| x + 3)],
            (a, b) in (any::<u32>(), 0u64..9),
        ) {
            prop_assert!(v.len() >= 2 && v.len() <= 5);
            prop_assert!(w == 1 || w == 2 || w == 3);
            prop_assert_eq!(u64::from(a) + b >= b, true);
        }
    }

    proptest! {
        #[test]
        fn assume_rejects_dont_fail(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "assertion failed")]
    fn failing_property_panics() {
        crate::test_runner::run(
            "always_fails",
            ProptestConfig::with_cases(4),
            |_rng| -> Result<(), crate::test_runner::TestCaseError> {
                prop_assert!(false);
                Ok(())
            },
        );
    }
}
