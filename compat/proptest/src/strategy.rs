//! Strategies: composable recipes for generating random values.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`. `Clone` is a
/// supertrait because test code freely duplicates strategy expressions
/// (`key.clone().prop_map(..)`).
pub trait Strategy: Clone {
    /// The type this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> T + Clone,
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred`; exhausting the retry budget
    /// panics (mirrors the real crate giving up on a too-narrow filter).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        F: Fn(&Self::Value) -> bool + Clone,
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Type-erase for heterogeneous composition ([`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }
}

/// Object-safe view of a strategy, for [`BoxedStrategy`].
trait DynStrategy {
    type Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy (cheaply cloneable).
pub struct BoxedStrategy<V> {
    inner: Rc<dyn DynStrategy<Value = V>>,
}

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.inner.generate_dyn(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T + Clone,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool + Clone,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted 1000 draws: {}", self.whence);
    }
}

/// Uniform choice among type-erased strategies ([`crate::prop_oneof!`]).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Build from at least one option.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one strategy"
        );
        Union { options }
    }
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Always produce a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy, via [`any`].
pub trait Arbitrary: Sized {
    /// Draw one value uniformly from the type's domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The whole-domain strategy for `T` (`any::<u64>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
