//! Offline stand-in for the `serde` crate (see `compat/README.md`).
//!
//! The workspace derives `Serialize`/`Deserialize` on its vocabulary
//! types to declare them wire-ready, but nothing actually serializes
//! them (there is no format crate in the dependency tree). The traits
//! here are therefore empty markers and the derives expand to marker
//! impls; swapping the real serde back in requires no source changes.

/// Marker for types declaring a serializable shape.
pub trait Serialize {}

/// Marker for types declaring a deserializable shape.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
