//! Offline stand-in for the `rand` crate (see `compat/README.md`),
//! providing the rand-0.9 API surface this workspace uses: a seeded
//! [`rngs::StdRng`] plus [`Rng::random`], [`Rng::random_range`] and
//! [`Rng::random_bool`].
//!
//! The generator is counter-mode splitmix64 — statistically fine for
//! workload generation and deterministic per seed, which is all the
//! tests and experiments rely on. Streams differ from the real crate's
//! ChaCha-based `StdRng`; nothing in this workspace pins exact values.

use std::ops::{Range, RangeInclusive};

/// The minimal core-RNG interface: a stream of uniform `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of seeded generators.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling helpers, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value of `T` over its natural domain (`[0,1)` for
    /// floats, the full range for integers, fair coin for `bool`).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform value in `range` (half-open or inclusive integer
    /// ranges). Panics on an empty range.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard seeded generator: counter-mode
    /// splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        key: u64,
        ctr: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Decorrelate nearby seeds before using them as a key.
            StdRng {
                key: splitmix64(splitmix64(seed)),
                ctr: 0,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.ctr = self.ctr.wrapping_add(1);
            splitmix64(self.key ^ splitmix64(self.ctr))
        }
    }
}

/// Types samplable uniformly over their natural domain.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }
}

/// Ranges that [`Rng::random_range`] accepts.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.random()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.random_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.random_range(0usize..=5);
            assert!(y <= 5);
            let z = rng.random_range(-3i32..3);
            assert!((-3..3).contains(&z));
            let m = rng.random_range(0..10);
            assert!((0..10).contains(&m), "bare literal ranges infer i32");
        }
        // Inclusive full-width range must not overflow.
        let _ = rng.random_range(0u64..=u64::MAX);
    }

    #[test]
    fn floats_unit_interval_and_bool_bias() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut trues = 0;
        for _ in 0..10_000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            if rng.random_bool(0.2) {
                trues += 1;
            }
        }
        assert!(
            (1500..2500).contains(&trues),
            "p=0.2 of 10k ≈ 2000, got {trues}"
        );
    }
}
