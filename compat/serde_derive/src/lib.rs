//! Derive macros for the offline serde stand-in: expand to the marker
//! impls the stub traits need (see `compat/README.md`). No `syn`/`quote`
//! — the input is scanned token-by-token for the type name.

use proc_macro::{TokenStream, TokenTree};

/// Name of the struct/enum/union a derive input defines, if the shape is
/// simple enough (no generics — the workspace's serde types have none).
fn type_name(input: TokenStream) -> Option<String> {
    let mut tokens = input.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                if let Some(TokenTree::Ident(name)) = tokens.next() {
                    if let Some(TokenTree::Punct(p)) = tokens.peek() {
                        if p.as_char() == '<' {
                            return None; // generic type: skip the marker impl
                        }
                    }
                    return Some(name.to_string());
                }
                return None;
            }
        }
    }
    None
}

/// Derive the `Serialize` marker impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match type_name(input) {
        Some(name) => format!("impl ::serde::Serialize for {name} {{}}")
            .parse()
            .expect("valid impl tokens"),
        None => TokenStream::new(),
    }
}

/// Derive the `Deserialize` marker impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match type_name(input) {
        Some(name) => format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
            .parse()
            .expect("valid impl tokens"),
        None => TokenStream::new(),
    }
}
