//! Offline stand-in for the `crossbeam` crate (see `compat/README.md`).
//! Only `crossbeam::channel`'s MPMC channels are provided — unbounded
//! and bounded, the pieces this workspace uses — with crossbeam's
//! disconnection semantics: a receiver outliving every sender drains
//! the backlog and then reports `Disconnected`; a sender outliving
//! every receiver gets its message back in `SendError`.

pub mod channel {
    //! MPMC channels on a `Mutex<VecDeque>` + `Condvar`.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        cv: Condvar,
        /// `Some(n)` bounds the queue at `n` items (`try_send` reports
        /// Full; `send` blocks for space).
        cap: Option<usize>,
    }

    fn make<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            cv: Condvar::new(),
            cap,
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        make(None)
    }

    /// Create a bounded channel holding at most `cap` queued messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        make(Some(cap))
    }

    /// Error returned by [`Sender::send`] when every receiver is gone;
    /// carries the undelivered message.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Errors for [`Sender::try_send`].
    pub enum TrySendError<T> {
        /// The channel is bounded and at capacity.
        Full(T),
        /// Every receiver is gone.
        Disconnected(T),
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(match self {
                TrySendError::Full(_) => "Full(..)",
                TrySendError::Disconnected(_) => "Disconnected(..)",
            })
        }
    }

    /// Error returned by [`Receiver::recv`]: every sender is gone and the
    /// queue is empty.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Errors for [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Nothing queued right now.
        Empty,
        /// Every sender is gone and the queue is empty.
        Disconnected,
    }

    /// Errors for [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with nothing queued.
        Timeout,
        /// Every sender is gone and the queue is empty.
        Disconnected,
    }

    /// The sending half; clone freely.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Sender<T> {
        /// Queue `t`, blocking for space on a full bounded channel.
        /// Fails only when every receiver has been dropped.
        pub fn send(&self, t: T) -> Result<(), SendError<T>> {
            let mut st = self.chan.state.lock().expect("channel lock");
            if let Some(cap) = self.chan.cap {
                while st.queue.len() >= cap {
                    if st.receivers == 0 {
                        return Err(SendError(t));
                    }
                    st = self.chan.cv.wait(st).expect("channel lock");
                }
            }
            if st.receivers == 0 {
                return Err(SendError(t));
            }
            st.queue.push_back(t);
            drop(st);
            self.chan.cv.notify_one();
            Ok(())
        }

        /// Queue `t` without blocking: a full bounded channel reports
        /// [`TrySendError::Full`] instead of waiting for space.
        pub fn try_send(&self, t: T) -> Result<(), TrySendError<T>> {
            let mut st = self.chan.state.lock().expect("channel lock");
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(t));
            }
            if let Some(cap) = self.chan.cap {
                if st.queue.len() >= cap {
                    return Err(TrySendError::Full(t));
                }
            }
            st.queue.push_back(t);
            drop(st);
            self.chan.cv.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().expect("channel lock").senders += 1;
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().expect("channel lock");
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                // Wake receivers so they can observe the disconnect.
                self.chan.cv.notify_all();
            }
        }
    }

    /// The receiving half; clone for MPMC consumption.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Receiver<T> {
        /// On a bounded channel a pop frees a slot: wake blocked senders.
        fn notify_space(&self) {
            if self.chan.cap.is_some() {
                self.chan.cv.notify_all();
            }
        }

        /// Block until a message arrives (or every sender is gone).
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.chan.state.lock().expect("channel lock");
            loop {
                if let Some(t) = st.queue.pop_front() {
                    drop(st);
                    self.notify_space();
                    return Ok(t);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.chan.cv.wait(st).expect("channel lock");
            }
        }

        /// Block up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.chan.state.lock().expect("channel lock");
            loop {
                if let Some(t) = st.queue.pop_front() {
                    drop(st);
                    self.notify_space();
                    return Ok(t);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (next, res) = self
                    .chan
                    .cv
                    .wait_timeout(st, deadline - now)
                    .expect("channel lock");
                st = next;
                if res.timed_out() && st.queue.is_empty() {
                    if st.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Non-blocking poll.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.chan.state.lock().expect("channel lock");
            match st.queue.pop_front() {
                Some(t) => {
                    drop(st);
                    self.notify_space();
                    Ok(t)
                }
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.chan.state.lock().expect("channel lock").queue.len()
        }

        /// Is the queue empty right now?
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().expect("channel lock").receivers += 1;
            Receiver {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.chan.state.lock().expect("channel lock").receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_roundtrip() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            assert_eq!(rx.len(), 10);
            for i in 0..10 {
                assert_eq!(rx.recv(), Ok(i));
            }
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn drop_all_senders_disconnects_after_drain() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            drop(tx);
            tx2.send(2).unwrap();
            drop(tx2);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn drop_receiver_fails_send() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert!(tx.send(7).is_err());
        }

        #[test]
        fn recv_timeout_wakes_on_send() {
            let (tx, rx) = unbounded();
            let h = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                tx.send(42).unwrap();
            });
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(42));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected),
                "sender dropped by its thread exiting"
            );
            h.join().unwrap();
        }

        #[test]
        fn bounded_try_send_reports_full_until_drained() {
            let (tx, rx) = bounded(2);
            tx.try_send(1).unwrap();
            tx.try_send(2).unwrap();
            assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
            assert_eq!(rx.recv(), Ok(1));
            tx.try_send(3).unwrap();
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Ok(3));
            drop(rx);
            assert!(matches!(tx.try_send(9), Err(TrySendError::Disconnected(9))));
        }

        #[test]
        fn bounded_send_blocks_until_space() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let h = std::thread::spawn(move || {
                tx.send(2).unwrap(); // blocks until the pop below
                tx.send(3).unwrap();
            });
            std::thread::sleep(Duration::from_millis(10));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Ok(3));
            h.join().unwrap();
        }

        #[test]
        fn mpmc_clone_both_halves() {
            let (tx, rx) = unbounded();
            let rx2 = rx.clone();
            tx.clone().send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx2.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }
    }
}
