//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! See `compat/README.md` for why this exists. Only the API surface this
//! workspace uses is provided: [`Mutex`], [`RwLock`], [`Condvar`] and
//! their guards, with parking_lot's ergonomics (no poison `Result`s —
//! a poisoned std lock means a thread panicked while holding it, and the
//! wrappers propagate that panic rather than pretend the data is fine).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, WaitTimeoutResult as StdWaitTimeoutResult};
use std::time::Duration;

/// A mutual-exclusion lock; `lock` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a mutex holding `t`.
    pub const fn new(t: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(t),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|e| panic!("poisoned mutex: {e}"))
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(
                self.inner
                    .lock()
                    .unwrap_or_else(|e| panic!("poisoned mutex: {e}")),
            ),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::WouldBlock) => None,
            Err(sync::TryLockError::Poisoned(e)) => panic!("poisoned mutex: {e}"),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|e| panic!("poisoned mutex: {e}"))
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Guard for [`Mutex`]. The inner `Option` exists so [`Condvar::wait`]
/// can temporarily take std's guard by value.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A reader-writer lock; `read`/`write` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a lock holding `t`.
    pub const fn new(t: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(t),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|e| panic!("poisoned rwlock: {e}"))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock, blocking.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self
                .inner
                .read()
                .unwrap_or_else(|e| panic!("poisoned rwlock: {e}")),
        }
    }

    /// Acquire the exclusive write lock, blocking.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self
                .inner
                .write()
                .unwrap_or_else(|e| panic!("poisoned rwlock: {e}")),
        }
    }

    /// Try to acquire a read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(sync::TryLockError::WouldBlock) => None,
            Err(sync::TryLockError::Poisoned(e)) => panic!("poisoned rwlock: {e}"),
        }
    }

    /// Try to acquire the write lock without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(sync::TryLockError::WouldBlock) => None,
            Err(sync::TryLockError::Poisoned(e)) => panic!("poisoned rwlock: {e}"),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|e| panic!("poisoned rwlock: {e}"))
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Guard for [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Guard for [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of [`Condvar::wait_for`].
pub struct WaitTimeoutResult {
    inner: StdWaitTimeoutResult,
}

impl WaitTimeoutResult {
    /// Did the wait end by timeout (rather than notification)?
    pub fn timed_out(&self) -> bool {
        self.inner.timed_out()
    }
}

/// A condition variable usable with this module's [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically release the guard's mutex and block until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(|e| panic!("poisoned mutex: {e}"));
        guard.inner = Some(inner);
    }

    /// Like [`Self::wait`] with an upper bound on the blocking time.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present");
        let (inner, res) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|e| panic!("poisoned mutex: {e}"));
        guard.inner = Some(inner);
        WaitTimeoutResult { inner: res }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_many_readers_one_writer() {
        let l = RwLock::new(0u32);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 0);
            assert!(l.try_write().is_none());
        }
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_for(&mut g, Duration::from_millis(5)).timed_out());
    }
}
