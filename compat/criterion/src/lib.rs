//! Offline stand-in for the `criterion` crate (see `compat/README.md`).
//!
//! Provides the harness surface the `benches/` targets use —
//! [`Criterion`], [`Bencher::iter`]/[`Bencher::iter_batched`],
//! [`criterion_group!`]/[`criterion_main!`] — with a plain
//! warmup-then-measure loop reporting the mean time per iteration. No
//! statistics, plots, or outlier analysis; numbers are comparable
//! across runs on the same machine, which is what the experiment docs
//! use them for.
//!
//! `cargo test` runs `harness = false` bench binaries with `--test`; in
//! that mode each benchmark executes one iteration as a smoke check, so
//! test runs stay fast.

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup (accepted and ignored: every
/// batch is one routine call here).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

#[derive(Clone, Copy)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    /// `--test` mode: run each benchmark once, skip timing.
    smoke: bool,
}

/// The benchmark driver.
pub struct Criterion {
    settings: Settings,
}

impl Default for Criterion {
    fn default() -> Self {
        let smoke = std::env::args().any(|a| a == "--test");
        Criterion {
            settings: Settings {
                sample_size: 100,
                measurement_time: Duration::from_secs(5),
                warm_up_time: Duration::from_secs(3),
                smoke,
            },
        }
    }
}

impl Criterion {
    /// Samples per benchmark (scales the measurement loop).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.settings.sample_size = n;
        self
    }

    /// Wall-clock budget for the measurement loop.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.settings.measurement_time = d;
        self
    }

    /// Wall-clock budget for the warmup loop.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.settings.warm_up_time = d;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(self.settings, name, &mut f);
        self
    }

    /// Open a named group; benchmarks report as `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            group: name.to_string(),
        }
    }
}

/// See [`Criterion::benchmark_group`].
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.group, name);
        run_bench(self.criterion.settings, &full, &mut f);
        self
    }

    /// Finish the group (required by the real API; nothing to flush
    /// here).
    pub fn finish(self) {}
}

fn run_bench(settings: Settings, name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    if settings.smoke {
        let mut b = Bencher {
            mode: Mode::Smoke,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        println!("{name}: smoke ok");
        return;
    }
    // Warmup: repeat until the warmup budget is spent.
    let start = Instant::now();
    while start.elapsed() < settings.warm_up_time {
        let mut b = Bencher {
            mode: Mode::Timed { per_call: 1 },
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
    }
    // Measure: split the budget over sample_size calls, growing the
    // per-call iteration count to fill each slice.
    let slice = settings.measurement_time / settings.sample_size.max(1) as u32;
    let mut per_call = 1u64;
    let mut total = Duration::ZERO;
    let mut iters = 0u64;
    for _ in 0..settings.sample_size {
        let mut b = Bencher {
            mode: Mode::Timed { per_call },
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        total += b.total;
        iters += b.iters;
        if b.iters > 0 && b.total < slice {
            let per_iter = b.total.as_nanos().max(1) as u64 / b.iters.max(1);
            per_call = (slice.as_nanos() as u64 / per_iter.max(1)).clamp(1, 1 << 24);
        }
    }
    let mean_ns = total.as_nanos() as f64 / iters.max(1) as f64;
    println!("{name}: mean {} / iter ({iters} iters)", fmt_ns(mean_ns));
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else {
        format!("{:.2} ms", ns / 1_000_000.0)
    }
}

enum Mode {
    Smoke,
    Timed { per_call: u64 },
}

/// Passed to each benchmark closure; call [`Self::iter`] or
/// [`Self::iter_batched`] exactly once per invocation.
pub struct Bencher {
    mode: Mode,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `routine` back-to-back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let n = match self.mode {
            Mode::Smoke => 1,
            Mode::Timed { per_call } => per_call,
        };
        let start = Instant::now();
        for _ in 0..n {
            std::hint::black_box(routine());
        }
        self.total += start.elapsed();
        self.iters += n;
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let n = match self.mode {
            Mode::Smoke => 1,
            Mode::Timed { per_call } => per_call,
        };
        for _ in 0..n {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.total += start.elapsed();
        }
        self.iters += n;
    }
}

/// Define a bench group function from config + target functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define `main` running the given bench groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut calls = 0u64;
        c.bench_function("noop", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
        let mut group = c.benchmark_group("g");
        group.bench_function("batched", |b| {
            b.iter_batched(|| 2u64, |x| x * 2, BatchSize::SmallInput)
        });
        group.finish();
    }
}
