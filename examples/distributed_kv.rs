//! The distributed extendible hash file as a small replicated KV store:
//! three directory replicas, three bucket-manager sites, concurrent
//! clients, and a look at the message traffic and replica convergence.
//!
//! ```sh
//! cargo run -p ceh-harness --example distributed_kv
//! ```

use std::sync::Arc;
use std::time::Duration;

use ceh_dist::{Cluster, ClusterConfig};
use ceh_net::LatencyModel;
use ceh_types::{HashFileConfig, Key, Value};

fn main() -> ceh_types::Result<()> {
    let cluster = Arc::new(Cluster::start(ClusterConfig {
        dir_managers: 3,
        bucket_managers: 3,
        file: HashFileConfig::tiny().with_bucket_capacity(8),
        page_quota: Some(24), // force some splits to land on other sites
        latency: LatencyModel::jittered(Duration::from_micros(20), Duration::from_micros(200), 42),
        data_dir: None,
        ..Default::default()
    })?);

    println!("cluster: 3 directory replicas, 3 bucket sites, jittered network\n");

    // Concurrent clients, each talking to the replicas round-robin.
    let workers: Vec<_> = (0..4u64)
        .map(|t| {
            let cluster = Arc::clone(&cluster);
            std::thread::spawn(move || {
                let client = cluster.client();
                for i in 0..500u64 {
                    let k = t * 1000 + i;
                    client.insert(Key(k), Value(k * 10)).unwrap();
                }
                // Read everything back through (possibly stale) replicas.
                for i in 0..500u64 {
                    let k = t * 1000 + i;
                    assert_eq!(client.find(Key(k)).unwrap(), Some(Value(k * 10)));
                }
                // Churn: delete half.
                for i in (0..500u64).step_by(2) {
                    client.delete(Key(t * 1000 + i)).unwrap();
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }

    println!("4 clients x (500 inserts + 500 finds + 250 deletes) complete");
    assert!(
        cluster.quiesce(Duration::from_secs(30)),
        "cluster must go idle"
    );
    println!("cluster quiescent: no in-flight requests, no unacked copyupdates");

    assert!(cluster.replicas_converged());
    println!("all 3 directory replicas converged to identical contents");

    println!("\nlive records: {}", cluster.total_records()?);
    println!(
        "tombstones remaining after GC: {}",
        cluster.tombstone_count()?
    );
    println!("pages per site: {:?}", cluster.pages_per_site());

    println!("\nmessage traffic by class (Figure 11 taxonomy):");
    for (class, count) in cluster.msg_stats().sorted() {
        println!("  {class:<18} {count:>8}");
    }

    match Arc::try_unwrap(cluster) {
        Ok(c) => c.shutdown(),
        Err(_) => unreachable!("all workers joined"),
    }
    println!("\nshutdown clean");
    Ok(())
}
