//! Quickstart: a concurrent extendible hash file in a dozen lines.
//!
//! ```sh
//! cargo run -p ceh-harness --example quickstart
//! ```

use std::sync::Arc;

use ceh_core::{ConcurrentHashFile, Solution2};
use ceh_types::{HashFileConfig, Key, Value};

fn main() -> ceh_types::Result<()> {
    // A hash file with realistic 4 KiB-page buckets (~250 records each).
    let file = Arc::new(Solution2::new(HashFileConfig::realistic())?);

    // Concurrent use from plain threads: the file is the paper's shared
    // structure; every operation does its own ρ/α/ξ locking internally.
    let writers: Vec<_> = (0..4u64)
        .map(|t| {
            let file = Arc::clone(&file);
            std::thread::spawn(move || {
                for i in 0..25_000u64 {
                    let k = t * 25_000 + i;
                    file.insert(Key(k), Value(k * 2)).unwrap();
                }
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    println!("inserted {} records", file.len());

    // Point lookups.
    assert_eq!(file.find(Key(12_345))?, Some(Value(24_690)));
    assert_eq!(file.find(Key(999_999_999))?, None);

    // Deletes shrink the structure back down (merges + directory halving).
    for k in 0..50_000u64 {
        file.delete(Key(k))?;
    }
    println!("after deletes: {} records", file.len());

    // The structure self-reports what happened.
    let stats = file.core().stats().snapshot();
    println!(
        "splits: {}, merges: {}, directory doublings: {}, halvings: {}",
        stats.splits, stats.merges, stats.doublings, stats.halvings
    );
    println!(
        "directory depth: {}, buckets at full depth: {}",
        file.core().dir().depth(),
        file.core().dir().depthcount()
    );

    // And it can verify itself.
    ceh_core::invariants::check_concurrent_file(file.core())?;
    println!("all structural invariants hold");
    Ok(())
}
