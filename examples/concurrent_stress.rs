//! Concurrency demonstration: all three centralized implementations under
//! the same mixed workload, with throughput, lock contention, and
//! wrong-bucket recovery statistics side by side.
//!
//! ```sh
//! cargo run -p ceh-harness --release --example concurrent_stress
//! ```

use std::sync::Arc;
use std::time::Instant;

use ceh_core::{ConcurrentHashFile, GlobalLockFile, Solution1, Solution2};
use ceh_types::{HashFileConfig, Key, Value};
use ceh_workload::{KeyDist, Op, OpMix, WorkloadGen};

const THREADS: u64 = 8;
const OPS_PER_THREAD: usize = 40_000;
const KEY_SPACE: u64 = 1 << 16;

fn run(file: Arc<dyn ConcurrentHashFile>, mix: OpMix) -> f64 {
    // Preload half the key space.
    for key in ceh_workload::prefill_keys((KEY_SPACE / 2) as usize, KEY_SPACE) {
        file.insert(key, Value(key.0)).unwrap();
    }
    let start = Instant::now();
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let file = Arc::clone(&file);
            std::thread::spawn(move || {
                let mut gen = WorkloadGen::new(0xCE11 + t, KeyDist::Uniform, KEY_SPACE, mix);
                for _ in 0..OPS_PER_THREAD {
                    match gen.next_op() {
                        Op::Find(k) => {
                            file.find(k).unwrap();
                        }
                        Op::Insert(k, v) => {
                            file.insert(k, v).unwrap();
                        }
                        Op::Delete(k) => {
                            file.delete(k).unwrap();
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let secs = start.elapsed().as_secs_f64();
    (THREADS as usize * OPS_PER_THREAD) as f64 / secs
}

fn main() -> ceh_types::Result<()> {
    let cfg = HashFileConfig::default().with_bucket_capacity(64);
    println!(
        "{} threads x {} ops, uniform keys over {}, preloaded {}\n",
        THREADS,
        OPS_PER_THREAD,
        KEY_SPACE,
        KEY_SPACE / 2
    );
    println!(
        "{:<12} {:>14} {:>14} {:>14}",
        "mix (f/i/d)", "global-lock", "solution1", "solution2"
    );
    for (label, mix) in OpMix::STANDARD_SWEEP {
        let g = run(Arc::new(GlobalLockFile::new(cfg.clone())?), mix);
        let s1_file = Arc::new(Solution1::new(cfg.clone())?);
        let s1 = run(Arc::clone(&s1_file) as Arc<dyn ConcurrentHashFile>, mix);
        let s2_file = Arc::new(Solution2::new(cfg.clone())?);
        let s2 = run(Arc::clone(&s2_file) as Arc<dyn ConcurrentHashFile>, mix);
        println!("{label:<12} {g:>12.0}/s {s1:>12.0}/s {s2:>12.0}/s");

        // Correctness spot check after the storm.
        ceh_core::invariants::check_concurrent_file(s1_file.core())?;
        ceh_core::invariants::check_concurrent_file(s2_file.core())?;

        let st = s2_file.core().stats().snapshot();
        if st.wrong_bucket_recoveries > 0 {
            println!(
                "             (solution2: {} wrong-bucket recoveries, mean chain {:.2} hops)",
                st.wrong_bucket_recoveries,
                st.mean_recovery_hops()
            );
        }
    }
    println!("\ninvariants checked after every run — structure intact");
    // A tiny sanity read at the end.
    let f = Solution2::new(cfg)?;
    f.insert(Key(1), Value(2))?;
    assert_eq!(f.find(Key(1))?, Some(Value(2)));
    Ok(())
}
