//! Replay of the paper's structure figures, printed in the same
//! directory-and-buckets notation.
//!
//! * Figure 1 — a sequential extendible hash file at depth 2;
//! * Figure 2 — how inserts split buckets and double the directory, and
//!   how deletes merge and halve;
//! * Figures 3–4 — the concurrent structure's `next` links and how a
//!   split re-threads them.
//!
//! Uses the identity pseudokey function so keys land exactly where the
//! paper's "…101" examples say they do.
//!
//! ```sh
//! cargo run -p ceh-harness --example figures_walkthrough
//! ```

use std::sync::Arc;

use ceh_core::{invariants, ConcurrentHashFile, Solution1};
use ceh_locks::LockManager;
use ceh_sequential::SequentialHashFile;
use ceh_storage::{PageStore, PageStoreConfig};
use ceh_types::bucket::Bucket;
use ceh_types::{identity_pseudokey, HashFileConfig, Key, Value};

fn sequential_file(capacity: usize) -> SequentialHashFile {
    let cfg = HashFileConfig::tiny().with_bucket_capacity(capacity);
    let store = PageStore::new_shared(PageStoreConfig {
        page_size: Bucket::page_size_for(capacity),
        ..Default::default()
    });
    SequentialHashFile::with_store(cfg, store, identity_pseudokey).unwrap()
}

fn main() -> ceh_types::Result<()> {
    println!("== Figure 1: sequential extendible hash file ==\n");
    let mut f = sequential_file(3);
    // Keys chosen by their low bits, like the paper's pseudokey suffixes.
    for k in [0b000u64, 0b100, 0b010, 0b001, 0b101, 0b011, 0b111, 0b110] {
        f.insert(Key(k), Value(k))?;
    }
    println!("{}", f.snapshot()?.render());

    println!("== Figure 2: updates split, double, merge, halve ==\n");
    let before_depth = f.depth();
    // Fill one bucket until it splits and the directory doubles.
    let mut k = 0b1000u64;
    while f.depth() == before_depth {
        f.insert(Key(k), Value(k))?;
        k += 0b1000;
    }
    println!("after inserts forced a split at full depth (directory doubled):\n");
    println!("{}", f.snapshot()?.render());

    // Delete everything in one bucket family until a merge halves it back.
    let peak = f.depth();
    let keys: Vec<Key> = f.snapshot()?.all_keys();
    for key in keys {
        f.delete(key)?;
        if f.depth() < peak {
            break;
        }
    }
    println!("after deletes merged partners (directory halved):\n");
    println!("{}", f.snapshot()?.render());
    f.check_invariants()?;

    println!("== Figure 3: the concurrent structure's next links ==\n");
    let store = PageStore::new_shared(PageStoreConfig {
        page_size: Bucket::page_size_for(3),
        ..Default::default()
    });
    let core = ceh_core::FileCore::with_parts(
        HashFileConfig::tiny().with_bucket_capacity(3),
        store,
        Arc::new(LockManager::default()),
        identity_pseudokey,
    )?;
    let file = Solution1::from_core(core);
    for kk in [0b000u64, 0b100, 0b010, 0b001, 0b101, 0b011, 0b111, 0b110] {
        file.insert(Key(kk), Value(kk))?;
    }
    let snap = invariants::snapshot_core(file.core())?;
    println!("{}", snap.render());
    println!("next chain (bit-reversed commonbits order):");
    let mut page = snap.entries[0];
    loop {
        let b = &snap.buckets[&page];
        print!(
            "  {page} (commonbits {:0w$b})",
            b.commonbits,
            w = b.localdepth.max(1) as usize
        );
        if b.next.is_null() {
            println!(" -> ∅");
            break;
        }
        println!(" -> {}", b.next);
        page = b.next;
    }

    println!("\n== Figure 4: a split re-threads the chain ==\n");
    let target = snap.entries[0];
    let before = &snap.buckets[&target];
    println!(
        "before: bucket {target} (commonbits {:b}) -> next {}",
        before.commonbits, before.next
    );
    // Insert keys that land in that bucket until it splits.
    let mut kk = 0b10000u64 | before.commonbits;
    let splits_before = file.core().stats().snapshot().splits;
    while file.core().stats().snapshot().splits == splits_before {
        file.insert(Key(kk), Value(kk))?;
        kk += 1 << 10;
    }
    let snap2 = invariants::snapshot_core(file.core())?;
    let after = &snap2.buckets[&target];
    println!(
        "after:  bucket {target} (commonbits {:b}) -> next {} (the new bucket), \
         whose next is {} (the old successor)",
        after.commonbits, after.next, snap2.buckets[&after.next].next
    );
    invariants::check_concurrent_file(file.core())?;
    println!("\nall structural invariants hold");
    Ok(())
}
