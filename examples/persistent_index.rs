//! A durable extendible hash index: file-backed pages plus recovery.
//!
//! The directory is volatile by design — buckets persist everything
//! needed to rebuild it (localdepth, commonbits, next links), so
//! "booting" the index is a single scan.
//!
//! ```sh
//! cargo run -p ceh-harness --example persistent_index
//! ```

use std::sync::Arc;

use ceh_core::{invariants, ConcurrentHashFile, FileCore, Solution2};
use ceh_locks::LockManager;
use ceh_storage::{PageStore, PageStoreConfig};
use ceh_types::bucket::Bucket;
use ceh_types::{hash_key, HashFileConfig, Key, Value};

fn main() -> ceh_types::Result<()> {
    let cfg = HashFileConfig::default().with_bucket_capacity(32);
    let store_cfg = PageStoreConfig {
        page_size: Bucket::page_size_for(cfg.bucket_capacity),
        initial_pages: 0,
        ..Default::default()
    };
    let dir = std::env::temp_dir().join(format!("ceh-example-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("index.ceh");

    // ---- Session 1: create, load, shut down. ----
    {
        let store = Arc::new(PageStore::create_file(&path, store_cfg.clone())?);
        let core = FileCore::with_parts(
            cfg.clone(),
            store,
            Arc::new(LockManager::default()),
            hash_key,
        )?;
        let file = Arc::new(Solution2::from_core(core));
        let writers: Vec<_> = (0..4u64)
            .map(|t| {
                let file = Arc::clone(&file);
                std::thread::spawn(move || {
                    for i in 0..5_000u64 {
                        file.insert(Key(t * 5_000 + i), Value(i * 3)).unwrap();
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        println!(
            "session 1: inserted {} records into {} (pages on disk: {})",
            file.len(),
            path.display(),
            file.core().store().allocated_pages()
        );
    } // everything dropped — "process exit"

    // ---- Session 2: reopen, recover, verify, keep working. ----
    let store = Arc::new(PageStore::open_file(&path, store_cfg)?);
    let t0 = std::time::Instant::now();
    let core = FileCore::recover(cfg, store, Arc::new(LockManager::default()), hash_key)?;
    let file = Solution2::from_core(core);
    println!(
        "session 2: recovered {} records, directory depth {}, in {:.1} ms",
        file.len(),
        file.core().dir().depth(),
        t0.elapsed().as_secs_f64() * 1000.0
    );
    assert_eq!(file.len(), 20_000);
    assert_eq!(
        file.find(Key(12_345))?,
        Some(Value((12_345u64 % 5_000) * 3))
    );
    invariants::check_concurrent_file(file.core())?;
    println!("all structural invariants hold after recovery");

    // The recovered index is fully operational.
    for k in 0..1_000u64 {
        file.delete(Key(k))?;
    }
    file.insert(Key(999_999), Value(1))?;
    println!("post-recovery mutations fine: {} records", file.len());

    std::fs::remove_dir_all(&dir).expect("cleanup");
    Ok(())
}
